"""Benchmark: Fig. 11 — impact of peer dynamics (churn) on credit skewness.

Regenerates the three churn sweeps: fixed overlay size, fixed mean
lifespan and fixed arrival rate.
"""

from conftest import run_once


def test_fig11_churn(benchmark):
    result = run_once(benchmark, "fig11")

    # Sub-figure (1): dynamic overlays are less skewed than the static one.
    table1 = result.table("Fig. 11(1)")
    rows1 = {row["setting"]: row for row in table1}
    static_gini = rows1["static topology"]["stabilized_gini"]
    dynamic_ginis = [
        row["stabilized_gini"] for label, row in rows1.items() if label != "static topology"
    ]
    assert all(gini < static_gini for gini in dynamic_ginis)

    # Sub-figure (2): the arrival rate has only a modest effect on the skew.
    table2 = result.table("Fig. 11(2)")
    ginis2 = [row["stabilized_gini"] for row in table2]
    assert max(ginis2) - min(ginis2) < 0.2

    # Sub-figure (3): longer lifespans allow more condensation.
    table3 = result.table("Fig. 11(3)")
    rows3 = sorted(table3.rows, key=lambda row: row["mean_lifespan"])
    ginis3 = [row["stabilized_gini"] for row in rows3]
    assert ginis3[-1] >= ginis3[0]
