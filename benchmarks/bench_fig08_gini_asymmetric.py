"""Benchmark: Fig. 8 — Gini-index evolution under asymmetric utilization.

Regenerates the Gini-over-time curves for average wealths c = 50, 100, 200
with heterogeneous (topology-driven) utilizations.
"""

from conftest import run_once


def test_fig08_gini_asymmetric(benchmark):
    result = run_once(benchmark, "fig8")
    table = result.table()
    rows = sorted(table.rows, key=lambda row: row["average_wealth_c"])
    ginis = [row["stabilized_gini"] for row in rows]
    # Shape checks: curves converge, the skew is substantial (condensation),
    # and the stabilized Gini does not decrease with the average wealth.
    assert all(row["converged"] for row in rows)
    assert all(g > 0.5 for g in ginis)
    assert all(later >= earlier - 0.05 for earlier, later in zip(ginis, ginis[1:]))
