"""Benchmark: Figs. 5-6 — convergence of the credit distribution over time.

Regenerates the sorted wealth profiles of the early (still spreading) and
late (converged) stages of a long symmetric-utilization run.
"""

from conftest import run_once


def test_fig05_06_convergence(benchmark):
    result = run_once(benchmark, "fig5_6")
    table = result.table()
    rows = {row["stage"]: row for row in table}
    early = rows["early (Fig. 5)"]
    late = rows["late (Fig. 6)"]
    # Shape check: early profiles differ from one another much more than
    # late profiles do (the distribution converges).
    assert early["mean_profile_distance"] > late["mean_profile_distance"]
    assert late["num_profiles"] >= 2
