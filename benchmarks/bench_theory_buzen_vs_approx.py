"""Benchmark/ablation: exact Buzen marginals vs the paper's Eq. (6) approximation.

Compares the exact closed-Jackson marginal wealth distribution (Buzen's
convolution algorithm) against the paper's multinomial/binomial
approximation, for a moderate heterogeneous network, and times the exact
computation.
"""

import numpy as np

from repro.core.metrics import gini_from_pmf
from repro.queueing.approximations import multinomial_marginal_pmf
from repro.queueing.closed import ClosedJacksonNetwork
from repro.utils.records import ResultTable


def test_buzen_vs_multinomial_approximation(benchmark):
    num_queues = 40
    total_jobs = 400
    rng = np.random.default_rng(11)
    utilizations = 0.5 + 0.5 * rng.random(num_queues)
    utilizations[0] = 1.0

    def exact_marginals():
        network = ClosedJacksonNetwork(utilizations, total_jobs)
        return [network.marginal_pmf(i) for i in (0, num_queues // 2, num_queues - 1)]

    exact = benchmark(exact_marginals)
    approx = [
        multinomial_marginal_pmf(utilizations, i, total_jobs)
        for i in (0, num_queues // 2, num_queues - 1)
    ]

    table = ResultTable(title="Exact (Buzen) vs Eq. (6) approximation — marginal wealth Gini")
    for label, exact_pmf, approx_pmf in zip(("max-u peer", "mid peer", "last peer"), exact, approx):
        exact_mean = float(np.dot(np.arange(len(exact_pmf)), exact_pmf))
        approx_mean = float(np.dot(np.arange(len(approx_pmf)), approx_pmf))
        table.add_row(
            peer=label,
            exact_mean_wealth=exact_mean,
            approx_mean_wealth=approx_mean,
            exact_gini=gini_from_pmf(exact_pmf),
            approx_gini=gini_from_pmf(approx_pmf),
        )
    print()
    print(table.format())

    # Both are proper distributions; the exact marginal is at least as skewed
    # as the approximation for the maximal-utilization peer (condensation is
    # underestimated by Eq. 6).
    for pmf in exact + approx:
        assert abs(float(np.sum(pmf)) - 1.0) < 1e-6
    assert gini_from_pmf(exact[0]) >= gini_from_pmf(approx[0]) - 0.05
