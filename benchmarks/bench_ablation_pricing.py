"""Ablation benchmark: pricing schemes and credit condensation (Sec. V-C).

Runs the transaction-level market with uniform, per-peer heterogeneous and
per-chunk Poisson pricing on the same overlay and compares the stabilized
Gini index — the paper's qualitative claim is that non-uniform pricing
raises the risk of condensation.
"""

import numpy as np

from conftest import BENCH_SEED
from repro.core.pricing import PerPeerFlatPricing, PoissonPricing, UniformPricing
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.utils.records import ResultTable
from repro.utils.rng import make_rng


def _run_with_pricing(pricing, seed: int):
    config = MarketSimConfig(
        num_peers=150,
        initial_credits=50.0,
        horizon=3000.0,
        step=2.0,
        utilization=UtilizationMode.SYMMETRIC,
        spending_rate_noise=0.02,
        pricing=pricing,
        sample_interval=100.0,
        seed=seed,
    )
    return CreditMarketSimulator.run_config(config)


def test_pricing_ablation(benchmark):
    rng = make_rng(BENCH_SEED, "pricing-ablation")
    seller_prices = {peer: 1.0 + float(rng.poisson(0.5)) for peer in range(150)}
    schemes = {
        "uniform (1 credit/chunk)": UniformPricing(1.0),
        "per-peer Poisson prices": PerPeerFlatPricing(seller_prices),
        "per-chunk Poisson prices": PoissonPricing(mean_price=1.5, min_price=1.0, seed=BENCH_SEED),
    }

    def run_all():
        return {label: _run_with_pricing(pricing, BENCH_SEED) for label, pricing in schemes.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = ResultTable(title="Pricing ablation — stabilized Gini per pricing scheme")
    for label, result in results.items():
        table.add_row(
            pricing=label,
            stabilized_gini=result.stabilized_gini,
            mean_spending_rate=float(np.mean(result.spending_rates)),
        )
    print()
    print(table.format())

    uniform_gini = results["uniform (1 credit/chunk)"].stabilized_gini
    heterogeneous_gini = results["per-peer Poisson prices"].stabilized_gini
    # Non-uniform per-seller pricing must not reduce the skew relative to
    # uniform pricing (Sec. V-C: it creates asymmetric utilizations).
    assert heterogeneous_gini >= uniform_gini - 0.05
