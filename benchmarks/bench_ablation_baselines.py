"""Ablation benchmark: credit market vs the related-work baselines.

Runs the scrip-system, credit-network, tit-for-tat and money-exchange
baselines on comparable populations and prints their headline metrics next
to the credit market's, so the paper's positioning claims can be checked:

* the scrip system degrades when the total currency is too large
  (Friedman et al.);
* credit-network liquidity improves with credit capacity (Dandekar et al.);
* tit-for-tat starves free riders (barter works for file sharing);
* random-exchange economies condense toward Gini 0.5 or higher.
"""

from conftest import BENCH_SEED
from repro.baselines import (
    CreditNetwork,
    ScripSystem,
    TitForTatSwarm,
    simulate_money_exchange,
)
from repro.overlay.generators import erdos_renyi_topology, scale_free_topology
from repro.utils.records import ResultTable


def test_baseline_comparison(benchmark):
    def run_all():
        outcomes = {}
        scrip_low = ScripSystem(num_agents=150, average_scrip=2.0, satiation_point=10.0, seed=BENCH_SEED)
        scrip_mid = ScripSystem(num_agents=150, average_scrip=6.0, satiation_point=10.0, seed=BENCH_SEED)
        scrip_high = ScripSystem(num_agents=150, average_scrip=30.0, satiation_point=10.0, seed=BENCH_SEED)
        outcomes["scrip_low"] = scrip_low.run(num_requests=20000)
        outcomes["scrip_mid"] = scrip_mid.run(num_requests=20000)
        outcomes["scrip_high"] = scrip_high.run(num_requests=20000)

        topo = erdos_renyi_topology(100, mean_degree=10, seed=BENCH_SEED)
        outcomes["credit_net_cap1"] = CreditNetwork(topo, credit_capacity=1.0, seed=BENCH_SEED).run(5000)
        outcomes["credit_net_cap4"] = CreditNetwork(topo, credit_capacity=4.0, seed=BENCH_SEED).run(5000)

        swarm_topology = scale_free_topology(120, seed=BENCH_SEED)
        swarm = TitForTatSwarm(
            swarm_topology, num_chunks=800, free_rider_fraction=0.2, seed=BENCH_SEED
        )
        outcomes["titfortat"] = swarm.run(num_rounds=100)

        outcomes["money_uniform"] = simulate_money_exchange(
            num_agents=300, num_exchanges=100_000, rule="uniform", seed=BENCH_SEED
        )
        outcomes["money_savings"] = simulate_money_exchange(
            num_agents=300, num_exchanges=100_000, rule="savings", savings_fraction=0.7,
            seed=BENCH_SEED,
        )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = ResultTable(title="Baseline comparison — headline metrics")
    for level in ("low", "mid", "high"):
        result = outcomes[f"scrip_{level}"]
        table.add_row(
            baseline=f"scrip system ({level} currency)",
            metric="request success rate",
            value=result.success_rate,
            gini=result.final_gini,
        )
    for cap in (1, 4):
        result = outcomes[f"credit_net_cap{cap}"]
        table.add_row(
            baseline=f"credit network (capacity {cap})",
            metric="payment success rate",
            value=result.success_rate,
            gini=result.final_gini,
        )
    tft = outcomes["titfortat"]
    table.add_row(
        baseline="tit-for-tat swarm (20% free riders)",
        metric="free-rider vs average download rate",
        value=float(tft.free_rider_rate / max(tft.download_rates.mean(), 1e-9)),
        gini=tft.download_gini,
    )
    for rule in ("uniform", "savings"):
        result = outcomes[f"money_{rule}"]
        table.add_row(
            baseline=f"money exchange ({rule})",
            metric="final wealth Gini",
            value=result.final_gini,
            gini=result.final_gini,
        )
    print()
    print(table.format())

    # Friedman et al.: a mid-sized currency outperforms both extremes.
    assert outcomes["scrip_mid"].success_rate >= outcomes["scrip_high"].success_rate
    assert outcomes["scrip_mid"].success_rate >= outcomes["scrip_low"].success_rate
    # Dandekar et al.: more credit capacity means more liquidity.
    assert outcomes["credit_net_cap4"].success_rate >= outcomes["credit_net_cap1"].success_rate
    # Tit-for-tat starves free riders relative to cooperators.
    assert outcomes["titfortat"].free_rider_rate <= outcomes["titfortat"].download_rates.mean()
    # Random-exchange economies are substantially unequal at equilibrium,
    # and savings reduce the inequality.
    assert outcomes["money_uniform"].final_gini > 0.4
    assert outcomes["money_savings"].final_gini < outcomes["money_uniform"].final_gini
