"""Benchmark: Fig. 2 — Lorenz curves of the equilibrium wealth marginal.

Regenerates the Lorenz curves / Gini indices for the paper's three (M, N)
combinations, from both the literal Eq. (8) approximation and the exact
closed-Jackson marginal.
"""

from conftest import run_once


def test_fig02_lorenz_curves(benchmark):
    result = run_once(benchmark, "fig2")
    table = result.table()
    rows = sorted(table.rows, key=lambda row: row["average_wealth_c"])
    # Shape checks: the exact equilibrium marginal is substantially skewed
    # (near the exponential value 0.5) for every combination, and always at
    # least as skewed as the Eq. (8) binomial approximation, whose skewness
    # collapses as the average wealth grows.
    for row in rows:
        assert 0.4 < row["gini_exact"] <= 0.75
        assert row["gini_exact"] >= row["gini_eq8"]
    eq8 = [row["gini_eq8"] for row in rows]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(eq8, eq8[1:]))
    # Every Lorenz curve starts at (0, 0) and ends at (1, 1).
    for series in result.series:
        assert series.y[0] == 0.0
        assert abs(series.y[-1] - 1.0) < 1e-6
