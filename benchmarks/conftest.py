"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
``default`` reproduction scale and prints the resulting rows, so running

    pytest benchmarks/ --benchmark-only

produces both timing data and the reproduced numbers.  Each experiment is
executed exactly once per benchmark (``pedantic`` mode) because individual
runs take seconds to minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult, Scale

BENCH_SCALE = Scale.DEFAULT
BENCH_SEED = 7


def run_once(benchmark, experiment_id: str, scale: str = BENCH_SCALE) -> ExperimentResult:
    """Run ``experiment_id`` exactly once under the benchmark timer and print it."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": scale, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    return result


@pytest.fixture
def bench_seed() -> int:
    """Seed used by every benchmark run."""
    return BENCH_SEED
