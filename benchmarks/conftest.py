"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
``default`` reproduction scale and prints the resulting rows, so running

    pytest benchmarks/ --benchmark-only

produces both timing data and the reproduced numbers.  Each experiment is
executed exactly once per benchmark (``pedantic`` mode) because individual
runs take seconds to minutes.

The figure benchmarks run through the ``repro.runner`` orchestrator with a
persistent artifact cache (``benchmarks/.artifact-cache`` by default): the
first suite run simulates and commits every figure, and re-runs on
unchanged code restore the identical results from the cache instead of
re-simulating.  Each benchmark prints its sweep summary (``N executed, M
from cache``) next to the timing, because a warm-cache "timing" measures
JSON restore rather than simulation.  Point the ``REPRO_BENCH_CACHE``
environment variable at a different directory to relocate the cache, or
set it to the empty string to force fresh simulation.

Seed note: the orchestrator derives each shard's seed from ``(BENCH_SEED,
experiment id, config, replication)``, so the realised seed differs from
the pre-orchestrator suite (which passed ``seed=7`` straight to the
runner) — reproduced numbers changed once at the switchover and are
deterministic since.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

from repro.experiments.common import ExperimentResult, Scale
from repro.runner import ArtifactCache, SweepSpec, run_sweep

BENCH_SCALE = Scale.DEFAULT
BENCH_SEED = 7

#: Environment variable overriding the benchmark artifact-cache directory
#: (empty string disables caching entirely).
BENCH_CACHE_ENV = "REPRO_BENCH_CACHE"
DEFAULT_CACHE_DIR = Path(__file__).resolve().parent / ".artifact-cache"


def bench_cache() -> Optional[ArtifactCache]:
    """The artifact cache shared by every benchmark run (None when disabled)."""
    location = os.environ.get(BENCH_CACHE_ENV)
    if location == "":
        return None
    return ArtifactCache(location or DEFAULT_CACHE_DIR)


def run_once(benchmark, experiment_id: str, scale: str = BENCH_SCALE) -> ExperimentResult:
    """Run ``experiment_id`` once through the sweep orchestrator under the timer.

    The run is an empty-grid, single-replication sweep: it executes the
    whole registered experiment, but through :func:`repro.runner.run_sweep`
    so the result is committed to (and on re-runs restored from) the shared
    artifact cache.  Cached or fresh, the printed tables are byte-identical
    — the payload passes through the same JSON round-trip either way.
    """
    spec = SweepSpec(
        experiment_id, replications=1, base_seed=BENCH_SEED, scale=Scale(scale).value
    )
    cache = bench_cache()
    reports = []

    def execute() -> ExperimentResult:
        report = run_sweep(spec, jobs=1, cache=cache)
        reports.append(report)
        return report.shards[0].result()

    result = benchmark.pedantic(execute, rounds=1, iterations=1)
    print()
    # A warm-cache timing measures JSON restore, not simulation — say which
    # one this was so cross-run timing comparisons aren't silently skewed.
    print(reports[-1].describe())
    print(result.format())
    return result


@pytest.fixture
def bench_seed() -> int:
    """Seed used by every benchmark run."""
    return BENCH_SEED
