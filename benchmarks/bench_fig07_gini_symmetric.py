"""Benchmark: Fig. 7 — Gini-index evolution under (near-)symmetric utilization.

Regenerates the Gini-over-time curves for average wealths c = 50, 100, 200
with the symmetric-utilization configuration.
"""

from conftest import run_once


def test_fig07_gini_symmetric(benchmark):
    result = run_once(benchmark, "fig7")
    table = result.table()
    rows = sorted(table.rows, key=lambda row: row["average_wealth_c"])
    # Shape checks: every run converges, and the stabilized Gini does not
    # decrease as the average wealth grows (paper: larger c, larger Gini).
    assert all(row["converged"] for row in rows)
    ginis = [row["stabilized_gini"] for row in rows]
    assert all(later >= earlier - 0.05 for earlier, later in zip(ginis, ginis[1:]))
