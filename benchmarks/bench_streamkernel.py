"""Benchmark: streaming-kernel tick throughput, loop vs vectorized.

Times ``StreamingMarketSimulator.advance_rounds`` (construction excluded)
for the per-peer **loop** kernel — the per-peer/per-chunk scheduling walk
that was the pre-batching hot path — and the batched **vectorized**
kernel at several populations, verifies the two produce bit-identical end
states, and records the numbers to ``BENCH_streamkernel.json`` at the
repo root.

Two profiles share one recording format:

* the default (full) profile measures 100 / 500 / 1000 peers — the
  paper's population range — and is what the committed baseline holds;
* ``REPRO_BENCH_STREAMKERNEL=smoke`` measures only the small populations;
  CI runs it on every PR and ``check_bench_regression.py`` compares the
  overlapping populations against the committed baseline (>30% throughput
  regression of *either* kernel fails).

``REPRO_BENCH_STREAMKERNEL_OUT`` redirects the output file (CI writes to
a scratch path so the committed baseline stays pristine).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.p2psim import StreamingMarketSimulator, StreamingSimConfig

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streamkernel.json"

#: (num_peers, simulated ticks) per profile.  Ticks shrink with the
#: population so every measurement stays in wall-clock seconds.  The smoke
#: profile is a strict prefix of the full one — identical (peers, ticks)
#: pairs — so CI's smoke numbers compare like-for-like against the
#: committed full-profile baseline.
PROFILES = {
    "full": [(100, 200), (500, 60), (1000, 30)],
    "smoke": [(100, 200), (500, 60)],
}

KERNELS = ("loop", "vectorized")

#: Timing repeats per kernel (best-of): the gated vectorized kernel gets
#: extra repeats because its runs are cheap and CI runners are noisy.
REPEATS = {"loop": 2, "vectorized": 4}


def _config(num_peers: int, ticks: int, kernel: str) -> StreamingSimConfig:
    return StreamingSimConfig(
        num_peers=num_peers,
        initial_credits=100.0,
        horizon=float(ticks),
        sample_interval=float(ticks),  # one warm-up sample, one final
        kernel=kernel,
        seed=1,
    )


def _state_fingerprint(simulator: StreamingMarketSimulator) -> tuple:
    return (
        simulator._balance.tobytes(),
        simulator._spent_win.tobytes(),
        simulator._earned_win.tobytes(),
        simulator._uploads_total.tobytes(),
        simulator.chunks_delivered,
    )


def _measure(num_peers: int, ticks: int, kernel: str) -> dict:
    """Best-of-``REPEATS[kernel]`` timing of one (population, kernel) cell."""
    best = None
    for _ in range(REPEATS[kernel]):
        simulator = StreamingMarketSimulator(_config(num_peers, ticks, kernel))
        started = time.perf_counter()
        simulator.advance_rounds(ticks)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best["seconds"]:
            best = {
                "seconds": elapsed,
                "ticks_per_second": ticks / elapsed,
                "chunks": simulator.chunks_delivered,
                "fingerprint": _state_fingerprint(simulator),
            }
    return best


def test_streamkernel_throughput():
    profile = os.environ.get("REPRO_BENCH_STREAMKERNEL", "full")
    if profile not in PROFILES:
        raise SystemExit(
            f"unknown REPRO_BENCH_STREAMKERNEL profile {profile!r}; "
            f"known: {', '.join(PROFILES)}"
        )
    populations = []
    for num_peers, ticks in PROFILES[profile]:
        measured = {kernel: _measure(num_peers, ticks, kernel) for kernel in KERNELS}
        # The two kernels must tell the same story before their timings are
        # comparable: identical balances, counters and delivery totals.
        assert (
            measured["loop"]["fingerprint"] == measured["vectorized"]["fingerprint"]
        ), f"kernels diverged at {num_peers} peers"
        populations.append(
            {
                "num_peers": num_peers,
                "ticks": ticks,
                "chunks": measured["vectorized"]["chunks"],
                "loop_ticks_per_second": round(
                    measured["loop"]["ticks_per_second"], 2
                ),
                "vectorized_ticks_per_second": round(
                    measured["vectorized"]["ticks_per_second"], 2
                ),
                "speedup": round(
                    measured["vectorized"]["ticks_per_second"]
                    / measured["loop"]["ticks_per_second"],
                    3,
                ),
            }
        )

    record = {
        "profile": profile,
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels_byte_identical": True,
        "populations": populations,
    }
    output = Path(os.environ.get("REPRO_BENCH_STREAMKERNEL_OUT") or OUTPUT_PATH)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(record, indent=2))
