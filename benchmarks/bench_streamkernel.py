"""Benchmark: streaming-kernel tick throughput, loop vs vectorized.

Times ``StreamingMarketSimulator.advance_rounds`` (construction excluded)
for the per-peer **loop** kernel — the per-peer/per-chunk scheduling walk
that was the pre-batching hot path — and the batched **vectorized**
kernel at several populations, verifies the two produce bit-identical end
states, and records the numbers to ``BENCH_streamkernel.json`` at the
repo root.

Two profiles share one recording format:

* the default (full) profile measures 100 / 500 / 1000 peers — the
  paper's population range — with both kernels, plus a vectorized-only
  population-scaling axis at 10k / 100k peers (the edge-segment kernel's
  large-swarm headroom; the loop kernel is Python-bound and skipped
  there) and is what the committed baseline holds;
* ``REPRO_BENCH_STREAMKERNEL=smoke`` measures only the small populations
  plus the 10k scaling cell; CI runs it on every PR and
  ``check_bench_regression.py`` compares the overlapping populations
  against the committed baseline (>30% throughput regression of *either*
  kernel fails).

``REPRO_BENCH_STREAMKERNEL_OUT`` redirects the output file (CI writes to
a scratch path so the committed baseline stays pristine).

``REPRO_BENCH_TELEMETRY=1`` times every run under an *enabled*
:class:`~repro.obs.emitter.MetricsEmitter` draining into a
:class:`~repro.obs.sinks.MemorySink` (fresh per repeat), with a paired
disabled-emitter run interleaved repeat-by-repeat in the same process
(so machine load drift cancels out of the comparison) and recorded as
``disabled_*_per_second`` next to the instrumented numbers; the paired
runs must also end bit-identical — telemetry is strictly observational.
CI feeds the resulting ``"telemetry": true`` recording to
``check_telemetry_overhead.py`` to bound the observation cost (>5%
throughput drop fails).
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.obs import MemorySink, MetricsEmitter, use_emitter
from repro.p2psim import KernelOptions, StreamingMarketSimulator, StreamingSimConfig

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streamkernel.json"

#: (num_peers, simulated ticks) per profile.  Ticks shrink with the
#: population so every measurement stays in wall-clock seconds.  The smoke
#: profile is a strict prefix of the full one — identical (peers, ticks)
#: pairs — so CI's smoke numbers compare like-for-like against the
#: committed full-profile baseline.
PROFILES = {
    "full": [(100, 200), (500, 60), (1000, 30)],
    "smoke": [(100, 200), (500, 60)],
}

#: Vectorized-only population-scaling cells ``(num_peers, ticks)``.  The
#: loop kernel walks peers and window cells in Python and is skipped at
#: these sizes; cross-kernel identity is covered by the paired populations
#: above.  The smoke cell is identical to the full profile's, so CI smoke
#: numbers compare like-for-like against the committed baseline.
SCALING = {
    "full": [(10_000, 10), (100_000, 3)],
    "smoke": [(10_000, 10)],
}

KERNELS = ("loop", "vectorized")

#: Timing repeats per kernel (best-of): the gated vectorized kernel gets
#: extra repeats because its runs are cheap and CI runners are noisy.
REPEATS = {"loop": 2, "vectorized": 4}

#: Repeats floor in telemetry mode: the 5% paired overhead gate needs a
#: much tighter best-of estimate than the 30% cross-run baseline gate, so
#: both sides of every pair are measured at least this many times.
TELEMETRY_REPEATS = 5


def _config(num_peers: int, ticks: int, kernel: str) -> StreamingSimConfig:
    return StreamingSimConfig(
        num_peers=num_peers,
        initial_credits=100.0,
        horizon=float(ticks),
        sample_interval=float(ticks),  # one warm-up sample, one final
        options=KernelOptions(kernel=kernel),
        seed=1,
    )


def _state_fingerprint(simulator: StreamingMarketSimulator) -> tuple:
    return (
        simulator._balance.tobytes(),
        simulator._spent_win.tobytes(),
        simulator._earned_win.tobytes(),
        simulator._uploads_total.tobytes(),
        simulator.chunks_delivered,
    )


def _telemetry_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0")


def _telemetry_scope():
    """Per-repeat emitter scope: enabled + fresh MemorySink, or a no-op."""
    if _telemetry_enabled():
        return use_emitter(MetricsEmitter(sinks=[MemorySink()]))
    return contextlib.nullcontext()


def _timed_run(num_peers: int, ticks: int, kernel: str, scope) -> dict:
    simulator = StreamingMarketSimulator(_config(num_peers, ticks, kernel))
    with scope:
        started = time.perf_counter()
        simulator.advance_rounds(ticks)
        elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "ticks_per_second": ticks / elapsed,
        "chunks": simulator.chunks_delivered,
        "fingerprint": _state_fingerprint(simulator),
    }


def _measure(num_peers: int, ticks: int, kernel: str) -> dict:
    """Best-of-``REPEATS[kernel]`` timing of one (population, kernel) cell.

    In telemetry mode every instrumented repeat is paired with a
    disabled-emitter repeat in the same process; the best disabled timing
    lands in ``disabled_ticks_per_second`` and the paired end states are
    asserted bit-identical (enabling the emitter must observe the run,
    never steer it).
    """
    telemetry = _telemetry_enabled()
    repeats = max(REPEATS[kernel], TELEMETRY_REPEATS) if telemetry else REPEATS[kernel]
    best = None
    best_disabled = None
    for _ in range(repeats):
        if telemetry:
            run = _timed_run(num_peers, ticks, kernel, contextlib.nullcontext())
            if best_disabled is None or run["seconds"] < best_disabled["seconds"]:
                best_disabled = run
        run = _timed_run(num_peers, ticks, kernel, _telemetry_scope())
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    if telemetry:
        assert best["fingerprint"] == best_disabled["fingerprint"], (
            f"telemetry changed the {kernel} kernel's end state at {num_peers} peers"
        )
        best["disabled_ticks_per_second"] = best_disabled["ticks_per_second"]
    return best


def test_streamkernel_throughput():
    profile = os.environ.get("REPRO_BENCH_STREAMKERNEL", "full")
    if profile not in PROFILES:
        raise SystemExit(
            f"unknown REPRO_BENCH_STREAMKERNEL profile {profile!r}; "
            f"known: {', '.join(PROFILES)}"
        )
    populations = []
    for num_peers, ticks in PROFILES[profile]:
        measured = {kernel: _measure(num_peers, ticks, kernel) for kernel in KERNELS}
        # The two kernels must tell the same story before their timings are
        # comparable: identical balances, counters and delivery totals.
        assert (
            measured["loop"]["fingerprint"] == measured["vectorized"]["fingerprint"]
        ), f"kernels diverged at {num_peers} peers"
        entry = {
            "num_peers": num_peers,
            "ticks": ticks,
            "chunks": measured["vectorized"]["chunks"],
            "loop_ticks_per_second": round(
                measured["loop"]["ticks_per_second"], 2
            ),
            "vectorized_ticks_per_second": round(
                measured["vectorized"]["ticks_per_second"], 2
            ),
            "speedup": round(
                measured["vectorized"]["ticks_per_second"]
                / measured["loop"]["ticks_per_second"],
                3,
            ),
        }
        if _telemetry_enabled():
            entry["disabled_loop_ticks_per_second"] = round(
                measured["loop"]["disabled_ticks_per_second"], 2
            )
            entry["disabled_vectorized_ticks_per_second"] = round(
                measured["vectorized"]["disabled_ticks_per_second"], 2
            )
        populations.append(entry)

    for num_peers, ticks in SCALING[profile]:
        best = None
        for _ in range(REPEATS["vectorized"]):
            run = _timed_run(num_peers, ticks, "vectorized", contextlib.nullcontext())
            if best is None or run["seconds"] < best["seconds"]:
                best = run
        populations.append(
            {
                "num_peers": num_peers,
                "ticks": ticks,
                "chunks": best["chunks"],
                "vectorized_ticks_per_second": round(best["ticks_per_second"], 2),
            }
        )

    record = {
        "profile": profile,
        "telemetry": _telemetry_enabled(),
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels_byte_identical": True,
        "populations": populations,
    }
    output = Path(os.environ.get("REPRO_BENCH_STREAMKERNEL_OUT") or OUTPUT_PATH)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(record, indent=2))
