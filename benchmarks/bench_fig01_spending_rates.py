"""Benchmark: Fig. 1 — credit spending-rate distributions with/without condensation.

Regenerates the paper's motivating contrast: a non-uniformly priced,
credit-rich swarm condenses (high spending-rate Gini, depressed spending),
a uniformly priced, modestly endowed swarm stays balanced (low Gini).
"""

from conftest import run_once


def test_fig01_spending_rates(benchmark):
    result = run_once(benchmark, "fig1")
    table = result.table()
    rows = {row["case"]: row for row in table}
    condensed = rows["condensed (non-uniform prices)"]
    healthy = rows["healthy (uniform prices)"]
    # Shape check: the condensed case must show a markedly more skewed
    # spending-rate profile than the healthy case (paper: 0.9 vs 0.1).
    assert condensed["spending_rate_gini"] > healthy["spending_rate_gini"]
    assert condensed["wealth_gini"] > healthy["wealth_gini"]
