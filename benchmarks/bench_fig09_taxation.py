"""Benchmark: Fig. 9 — the effect of taxation on credit-distribution skewness.

Regenerates the no-tax baseline against the four (rate, threshold)
combinations the paper studies.
"""

from conftest import run_once


def test_fig09_taxation(benchmark):
    result = run_once(benchmark, "fig9")
    table = result.table()
    rows = {row["taxation"]: row for row in table}
    baseline = rows["no taxation"]["stabilized_gini"]
    taxed = {label: row["stabilized_gini"] for label, row in rows.items() if label != "no taxation"}
    # Observation 1: taxation inhibits the skewness relative to no taxation.
    assert all(gini < baseline for gini in taxed.values())
    # Observation 2: at a given rate, a higher threshold is at least as effective.
    if "rate=0.1 thres.=50" in taxed and "rate=0.1 thres.=80" in taxed:
        assert taxed["rate=0.1 thres.=80"] <= taxed["rate=0.1 thres.=50"] + 0.05
    if "rate=0.2 thres.=50" in taxed and "rate=0.2 thres.=80" in taxed:
        assert taxed["rate=0.2 thres.=80"] <= taxed["rate=0.2 thres.=50"] + 0.05
