"""Benchmark: Fig. 4 — content-exchange efficiency 1 - Q{B_i = 0} vs average wealth c.

Regenerates the exponential saturation curve of Eq. (9) together with its
finite-N and exact-Jackson counterparts.
"""

from conftest import run_once


def test_fig04_efficiency(benchmark):
    result = run_once(benchmark, "fig4")
    table = result.table()
    rows = sorted(table.rows, key=lambda row: row["average_wealth_c"])
    eq9 = [row["efficiency_eq9"] for row in rows]
    # Shape checks: efficiency increases monotonically in c and saturates toward 1.
    assert all(later >= earlier for earlier, later in zip(eq9, eq9[1:]))
    assert eq9[-1] > 0.99
    # The Eq. 9 approximation tracks the exact finite-N expression closely.
    for row in rows:
        assert abs(row["efficiency_eq9"] - row["efficiency_finite_N"]) < 0.05
