"""Benchmark: Fig. 3 — Gini index vs average wealth c for several network sizes.

Regenerates the increasing, saturating Gini-vs-c curves of the paper
(equilibrium of the Table I queueing network under uniform pricing), plus
the asymmetric-utilization upper bound.
"""

from conftest import run_once


def test_fig03_gini_vs_wealth(benchmark):
    result = run_once(benchmark, "fig3")
    for series in result.series:
        # Shape check: Gini grows (weakly) with the average wealth c and
        # saturates below 1 for every network size.
        assert series.y[-1] >= series.y[0] - 0.02
        assert series.y[-1] < 1.0
    table = result.table()
    # The heterogeneous (scale-free) market is always at least as skewed as
    # the paper's literal Eq. (8) approximation at the same (N, c), and the
    # Eq. (8) Gini shrinks with c while the headline Gini saturates high.
    for row in table:
        assert row["gini"] >= row["gini_eq8_approx"] - 0.05
        assert 0.0 <= row["gini_symmetric_composition"] <= 1.0
