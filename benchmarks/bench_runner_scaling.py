"""Benchmark: `repro.runner` worker-scaling and cache effectiveness.

Runs the same fig11 churn sweep three ways — one worker, N workers, and a
warm-cache re-run — verifies the aggregate tables are byte-identical in
all three modes, and records the wall-clock numbers to ``BENCH_runner.json``
next to this file.

Note: on a single-CPU container the parallel speedup is nominal (the
point of the recording is to track it across environments); the cache
speedup is large everywhere.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runner import (
    ArtifactCache,
    ParamGrid,
    SweepSpec,
    aggregate_sweep,
    default_jobs,
    run_sweep,
)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"


def _spec() -> SweepSpec:
    return SweepSpec(
        "fig11",
        grid=ParamGrid({"mean_lifespan": [250.0, 400.0], "rate_factor": [1.0, 2.0]}),
        replications=2,
        base_seed=7,
        scale="smoke",
        name="runner-scaling",
    )


def test_runner_scaling(tmp_path):
    jobs = max(2, default_jobs())

    serial = run_sweep(_spec(), jobs=1)
    parallel = run_sweep(_spec(), jobs=jobs)

    cache = ArtifactCache(tmp_path / "cache")
    run_sweep(_spec(), jobs=jobs, cache=cache)
    warm = run_sweep(_spec(), jobs=jobs, cache=cache)

    serial_csv = aggregate_sweep(serial).to_csv()
    assert aggregate_sweep(parallel).to_csv() == serial_csv
    assert aggregate_sweep(warm).to_csv() == serial_csv
    assert warm.executed == 0

    record = {
        "sweep": _spec().describe(),
        "shards": len(serial.shards),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "seconds_jobs1": round(serial.duration, 4),
        "seconds_jobsN": round(parallel.duration, 4),
        "seconds_warm_cache": round(warm.duration, 4),
        "parallel_speedup": round(serial.duration / max(parallel.duration, 1e-9), 3),
        "cache_speedup": round(serial.duration / max(warm.duration, 1e-9), 3),
        "byte_identical": True,
    }
    OUTPUT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(record, indent=2))
