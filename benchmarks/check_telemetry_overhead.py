"""Telemetry-overhead gate: instrumented vs disabled-emitter throughput.

Usage::

    python benchmarks/check_telemetry_overhead.py TELEMETRY.json [more.json ...]
        [--tolerance 0.05] [--floor-us 25]

Reads one or more kernel-benchmark recordings measured with
``REPRO_BENCH_TELEMETRY=1``.  In that mode the benchmark interleaves an
instrumented (enabled emitter + MemorySink) and a disabled-emitter run
repeat-by-repeat in the same process — so machine load drift largely
cancels — and records both: each population entry holds the instrumented
``*_per_second`` throughputs next to their ``disabled_*_per_second``
baselines.

A metric fails the gate (exit code 1) when its instrumented throughput
drops more than ``tolerance`` (default 5%, ``REPRO_TELEMETRY_TOLERANCE``
env override) below its paired disabled baseline **and** the implied
absolute cost exceeds ``floor-us`` microseconds per round/tick (default
25, ``REPRO_TELEMETRY_FLOOR_US`` env override).  The absolute floor is
what keeps the gate honest on the fastest cells: telemetry costs a
couple of microseconds per round, so on a 50 µs round the 5% line sits
*below* the timing noise of any shared runner — there, only a drop that
is also large in absolute terms (a genuinely regressed emitter hot
path, an accidental per-round allocation storm) can fail the gate.  On
millisecond-scale rounds 5% is hundreds of microseconds, the floor is
trivially exceeded by any real regression, and the gate reduces to the
plain relative comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark recording {path}: {error}")


def compare(record: dict, tolerance: float, floor_us: float, label: str) -> int:
    """Print one recording's comparison table; return the number of overages."""
    if not record.get("telemetry"):
        raise SystemExit(
            f"{label} is not tagged 'telemetry': true — "
            "was it measured with REPRO_BENCH_TELEMETRY=1?"
        )
    overages = 0
    compared = 0
    print(
        f"{label}: telemetry-overhead gate "
        f"(tolerance {tolerance:.0%}, absolute floor {floor_us:.0f}us/round)"
    )
    for entry in record.get("populations") or []:
        num_peers = int(entry["num_peers"])
        for metric in sorted(entry):
            if not metric.startswith("disabled_"):
                continue
            instrumented_metric = metric[len("disabled_"):]
            if instrumented_metric not in entry:
                continue
            compared += 1
            measured = float(entry[instrumented_metric])
            base = float(entry[metric])
            relative_floor = (1.0 - tolerance) * base
            overhead_us = (1.0 / measured - 1.0 / base) * 1e6
            failed = measured < relative_floor and overhead_us > floor_us
            verdict = "OVERHEAD" if failed else "ok"
            if failed:
                overages += 1
            unit = instrumented_metric.rsplit("_per_second", 1)[0].split("_")[-1] + "/s"
            print(
                f"  {num_peers:>5} peers {instrumented_metric.split('_')[0]:>10}: "
                f"{measured:>10.1f} {unit} instrumented "
                f"(disabled {base:.1f}, {overhead_us:+.1f}us/round) {verdict}"
            )
    if not compared:
        raise SystemExit(
            f"{label} holds no disabled_*/instrumented metric pairs to compare"
        )
    return overages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "recordings",
        type=Path,
        nargs="+",
        help="REPRO_BENCH_TELEMETRY=1 recordings (paired measurements)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_TELEMETRY_TOLERANCE", "0.05")),
        help="allowed fractional throughput drop (default: %(default)s)",
    )
    parser.add_argument(
        "--floor-us",
        type=float,
        default=float(os.environ.get("REPRO_TELEMETRY_FLOOR_US", "25")),
        help=(
            "implied per-round overhead (microseconds) a failing metric must "
            "also exceed (default: %(default)s)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")
    if args.floor_us < 0:
        parser.error("floor-us must be non-negative")
    overages = 0
    for path in args.recordings:
        overages += compare(_load(path), args.tolerance, args.floor_us, str(path))
    if overages:
        print(
            f"{overages} metric(s) lost more than the allowed throughput to telemetry",
            file=sys.stderr,
        )
        return 1
    print("instrumented throughput within tolerance of the paired disabled-emitter runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
