"""Benchmark: spending-kernel step throughput, loop vs vectorized.

Times ``CreditMarketSimulator.advance_rounds`` (construction excluded)
for the per-spender **loop** kernel — the pre-vectorization hot path —
and the batched **vectorized** kernel at several populations, verifies
the two produce bit-identical end states, and records the numbers to
``BENCH_simkernel.json`` at the repo root.

Two profiles share one recording format:

* the default (full) profile measures 100 / 500 / 1000 peers — the
  paper's population range — and is what the committed baseline holds;
* ``REPRO_BENCH_SIMKERNEL=smoke`` measures only the small populations
  with short horizons; CI runs it on every PR and
  ``check_bench_regression.py`` compares the overlapping populations
  against the committed baseline (>30% throughput regression fails).

``REPRO_BENCH_SIMKERNEL_OUT`` redirects the output file (CI writes to a
scratch path so the committed baseline stays pristine).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.p2psim import CreditMarketSimulator, MarketSimConfig, UtilizationMode

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simkernel.json"

#: (num_peers, simulated rounds) per profile.  Rounds shrink with the
#: population so every measurement stays in wall-clock seconds.  The smoke
#: profile is a strict prefix of the full one — identical (peers, rounds)
#: pairs — so CI's smoke numbers compare like-for-like against the
#: committed full-profile baseline.
PROFILES = {
    "full": [(100, 400), (500, 120), (1000, 60)],
    "smoke": [(100, 400), (500, 120)],
}

KERNELS = ("loop", "vectorized")

#: Timing repeats per kernel (best-of): the gated vectorized kernel gets
#: extra repeats because its runs are cheap and CI runners are noisy.
REPEATS = {"loop": 1, "vectorized": 3}


def _config(num_peers: int, rounds: int, kernel: str) -> MarketSimConfig:
    return MarketSimConfig(
        num_peers=num_peers,
        initial_credits=100.0,
        horizon=float(rounds),
        step=1.0,
        utilization=UtilizationMode.ASYMMETRIC,
        sample_interval=float(rounds),  # one warm-up sample, one final
        kernel=kernel,
        seed=1,
    )


def _state_fingerprint(simulator: CreditMarketSimulator) -> tuple:
    return (
        simulator._balance.tobytes(),
        simulator._spent.tobytes(),
        simulator._earned.tobytes(),
        simulator.total_transfers,
    )


def _measure(num_peers: int, rounds: int, kernel: str) -> dict:
    """Best-of-``REPEATS[kernel]`` timing of one (population, kernel) cell."""
    best = None
    for _ in range(REPEATS[kernel]):
        simulator = CreditMarketSimulator(_config(num_peers, rounds, kernel))
        started = time.perf_counter()
        simulator.advance_rounds(rounds)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best["seconds"]:
            best = {
                "seconds": elapsed,
                "steps_per_second": rounds / elapsed,
                "transfers": simulator.total_transfers,
                "fingerprint": _state_fingerprint(simulator),
            }
    return best


def test_simkernel_throughput():
    profile = os.environ.get("REPRO_BENCH_SIMKERNEL", "full")
    if profile not in PROFILES:
        raise SystemExit(
            f"unknown REPRO_BENCH_SIMKERNEL profile {profile!r}; "
            f"known: {', '.join(PROFILES)}"
        )
    populations = []
    for num_peers, rounds in PROFILES[profile]:
        measured = {kernel: _measure(num_peers, rounds, kernel) for kernel in KERNELS}
        # The two kernels must tell the same story before their timings are
        # comparable: identical balances, counters and transfer totals.
        assert (
            measured["loop"]["fingerprint"] == measured["vectorized"]["fingerprint"]
        ), f"kernels diverged at {num_peers} peers"
        populations.append(
            {
                "num_peers": num_peers,
                "rounds": rounds,
                "transfers": measured["vectorized"]["transfers"],
                "loop_steps_per_second": round(measured["loop"]["steps_per_second"], 2),
                "vectorized_steps_per_second": round(
                    measured["vectorized"]["steps_per_second"], 2
                ),
                "speedup": round(
                    measured["vectorized"]["steps_per_second"]
                    / measured["loop"]["steps_per_second"],
                    3,
                ),
            }
        )

    record = {
        "profile": profile,
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels_byte_identical": True,
        "populations": populations,
    }
    output = Path(os.environ.get("REPRO_BENCH_SIMKERNEL_OUT") or OUTPUT_PATH)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(record, indent=2))
