"""Benchmark: spending-kernel step throughput, loop vs vectorized.

Times ``CreditMarketSimulator.advance_rounds`` (construction excluded)
for the per-spender **loop** kernel — the pre-vectorization hot path —
and the batched **vectorized** kernel at several populations, verifies
the two produce bit-identical end states, and records the numbers to
``BENCH_simkernel.json`` at the repo root.

Two profiles share one recording format:

* the default (full) profile measures 100 / 500 / 1000 peers — the
  paper's population range — with both kernels, plus a vectorized-only
  population-scaling axis at 10k / 100k / 1M peers (the segmented-CSR
  kernel's million-peer headroom; the loop kernel is Python-bound and
  skipped there) and is what the committed baseline holds.  Each scaling
  cell is additionally timed under spatial sharding (shards 2 and 4,
  thread backend) and the sharded end states are asserted bit-identical
  to the monolithic run; the throughputs land as
  ``sharded{2,4}_steps_per_second`` on the same population entry.  On a
  single-core runner the sharded numbers sit near 1x — the cells exist
  to gate the sharded path's overhead and to show real scaling on
  multi-core hardware;
* ``REPRO_BENCH_SIMKERNEL=smoke`` measures only the small populations
  with short horizons plus the 10k scaling cell; CI runs it on every PR
  and ``check_bench_regression.py`` compares the overlapping populations
  against the committed baseline (>30% throughput regression fails).

``REPRO_BENCH_SIMKERNEL_OUT`` redirects the output file (CI writes to a
scratch path so the committed baseline stays pristine).

``REPRO_BENCH_TELEMETRY=1`` times every run under an *enabled*
:class:`~repro.obs.emitter.MetricsEmitter` draining into a
:class:`~repro.obs.sinks.MemorySink` (fresh per repeat), with a paired
disabled-emitter run interleaved repeat-by-repeat in the same process
(so machine load drift cancels out of the comparison) and recorded as
``disabled_*_per_second`` next to the instrumented numbers; the paired
runs must also end bit-identical — telemetry is strictly observational.
CI feeds the resulting ``"telemetry": true`` recording to
``check_telemetry_overhead.py`` to bound the observation cost (>5%
throughput drop fails).
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.obs import MemorySink, MetricsEmitter, use_emitter
from repro.p2psim import CreditMarketSimulator, KernelOptions, MarketSimConfig, UtilizationMode

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simkernel.json"

#: (num_peers, simulated rounds) per profile.  Rounds shrink with the
#: population so every measurement stays in wall-clock seconds.  The smoke
#: profile is a strict prefix of the full one — identical (peers, rounds)
#: pairs — so CI's smoke numbers compare like-for-like against the
#: committed full-profile baseline.
PROFILES = {
    "full": [(100, 400), (500, 120), (1000, 60)],
    "smoke": [(100, 400), (500, 120)],
}

#: Vectorized-only population-scaling cells ``(num_peers, rounds)``.  The
#: loop kernel walks spenders in Python and is skipped at these sizes;
#: cross-kernel identity is covered by the paired populations above.  The
#: smoke cell is identical to the full profile's, so CI smoke numbers
#: compare like-for-like against the committed baseline.
SCALING = {
    "full": [(10_000, 40), (100_000, 10), (1_000_000, 2)],
    "smoke": [(10_000, 40)],
}

KERNELS = ("loop", "vectorized")

#: Shard counts timed on every scaling cell.  4 matches CI's determinism
#: job (shards=1 vs shards=4 byte-identity); 2 bounds the fixed
#: per-shard overhead.
SHARD_COUNTS = (2, 4)

#: Timing repeats per kernel (best-of): the gated vectorized kernel gets
#: extra repeats because its runs are cheap and CI runners are noisy.
REPEATS = {"loop": 1, "vectorized": 3}

#: Repeats floor in telemetry mode: the 5% paired overhead gate needs a
#: much tighter best-of estimate than the 30% cross-run baseline gate, so
#: both sides of every pair are measured at least this many times.
TELEMETRY_REPEATS = 7


def _config(
    num_peers: int, rounds: int, kernel: str, shards: int | None = None
) -> MarketSimConfig:
    if shards is None:
        options = KernelOptions(kernel=kernel)
    else:
        options = KernelOptions(kernel=kernel, shards=shards, shard_backend="thread")
    return MarketSimConfig(
        num_peers=num_peers,
        initial_credits=100.0,
        horizon=float(rounds),
        step=1.0,
        utilization=UtilizationMode.ASYMMETRIC,
        sample_interval=float(rounds),  # one warm-up sample, one final
        options=options,
        seed=1,
    )


def _state_fingerprint(simulator: CreditMarketSimulator) -> tuple:
    return (
        simulator._balance.tobytes(),
        simulator._spent.tobytes(),
        simulator._earned.tobytes(),
        simulator.total_transfers,
    )


def _telemetry_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0")


def _telemetry_scope():
    """Per-repeat emitter scope: enabled + fresh MemorySink, or a no-op."""
    if _telemetry_enabled():
        return use_emitter(MetricsEmitter(sinks=[MemorySink()]))
    return contextlib.nullcontext()


def _timed_run(
    num_peers: int, rounds: int, kernel: str, scope, shards: int | None = None
) -> dict:
    simulator = CreditMarketSimulator(_config(num_peers, rounds, kernel, shards))
    with scope:
        started = time.perf_counter()
        simulator.advance_rounds(rounds)
        elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "steps_per_second": rounds / elapsed,
        "transfers": simulator.total_transfers,
        "fingerprint": _state_fingerprint(simulator),
    }


def _measure(num_peers: int, rounds: int, kernel: str) -> dict:
    """Best-of-``REPEATS[kernel]`` timing of one (population, kernel) cell.

    In telemetry mode every instrumented repeat is paired with a
    disabled-emitter repeat in the same process; the best disabled timing
    lands in ``disabled_steps_per_second`` and the paired end states are
    asserted bit-identical (enabling the emitter must observe the run,
    never steer it).
    """
    telemetry = _telemetry_enabled()
    repeats = max(REPEATS[kernel], TELEMETRY_REPEATS) if telemetry else REPEATS[kernel]
    best = None
    best_disabled = None
    for _ in range(repeats):
        if telemetry:
            run = _timed_run(num_peers, rounds, kernel, contextlib.nullcontext())
            if best_disabled is None or run["seconds"] < best_disabled["seconds"]:
                best_disabled = run
        run = _timed_run(num_peers, rounds, kernel, _telemetry_scope())
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    if telemetry:
        assert best["fingerprint"] == best_disabled["fingerprint"], (
            f"telemetry changed the {kernel} kernel's end state at {num_peers} peers"
        )
        best["disabled_steps_per_second"] = best_disabled["steps_per_second"]
    return best


def test_simkernel_throughput():
    profile = os.environ.get("REPRO_BENCH_SIMKERNEL", "full")
    if profile not in PROFILES:
        raise SystemExit(
            f"unknown REPRO_BENCH_SIMKERNEL profile {profile!r}; "
            f"known: {', '.join(PROFILES)}"
        )
    populations = []
    for num_peers, rounds in PROFILES[profile]:
        measured = {kernel: _measure(num_peers, rounds, kernel) for kernel in KERNELS}
        # The two kernels must tell the same story before their timings are
        # comparable: identical balances, counters and transfer totals.
        assert (
            measured["loop"]["fingerprint"] == measured["vectorized"]["fingerprint"]
        ), f"kernels diverged at {num_peers} peers"
        entry = {
            "num_peers": num_peers,
            "rounds": rounds,
            "transfers": measured["vectorized"]["transfers"],
            "loop_steps_per_second": round(measured["loop"]["steps_per_second"], 2),
            "vectorized_steps_per_second": round(
                measured["vectorized"]["steps_per_second"], 2
            ),
            "speedup": round(
                measured["vectorized"]["steps_per_second"]
                / measured["loop"]["steps_per_second"],
                3,
            ),
        }
        if _telemetry_enabled():
            entry["disabled_loop_steps_per_second"] = round(
                measured["loop"]["disabled_steps_per_second"], 2
            )
            entry["disabled_vectorized_steps_per_second"] = round(
                measured["vectorized"]["disabled_steps_per_second"], 2
            )
        populations.append(entry)

    for num_peers, rounds in SCALING[profile]:
        # Single repeat at the million-peer cell: its construction alone
        # dominates the best-of budget and the 30% gate has headroom.
        repeats = 1 if num_peers >= 500_000 else REPEATS["vectorized"]

        def _best_vectorized(shards: int | None) -> dict:
            best = None
            for _ in range(repeats):
                run = _timed_run(
                    num_peers, rounds, "vectorized", contextlib.nullcontext(), shards
                )
                if best is None or run["seconds"] < best["seconds"]:
                    best = run
            return best

        best = _best_vectorized(None)
        entry = {
            "num_peers": num_peers,
            "rounds": rounds,
            "transfers": best["transfers"],
            "vectorized_steps_per_second": round(best["steps_per_second"], 2),
        }
        for shards in SHARD_COUNTS:
            sharded = _best_vectorized(shards)
            # Sharding is pure execution policy: the sharded end state must
            # be bit-identical to the monolithic run before its timing means
            # anything.
            assert sharded["fingerprint"] == best["fingerprint"], (
                f"sharded run diverged at {num_peers} peers, shards={shards}"
            )
            entry[f"sharded{shards}_steps_per_second"] = round(
                sharded["steps_per_second"], 2
            )
        entry["shard_speedup_4x"] = round(
            entry["sharded4_steps_per_second"] / entry["vectorized_steps_per_second"], 3
        )
        populations.append(entry)

    record = {
        "profile": profile,
        "telemetry": _telemetry_enabled(),
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels_byte_identical": True,
        "populations": populations,
    }
    output = Path(os.environ.get("REPRO_BENCH_SIMKERNEL_OUT") or OUTPUT_PATH)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(record, indent=2))
