"""Benchmark: Lemma 1 and the condensation threshold (Theorems 2-3).

Times the analytical pipeline on a paper-sized market (1000 peers): solving
the traffic equations on a scale-free overlay, computing the normalized
utilizations, the condensation threshold T of Eq. (4) and the full
condensation diagnosis.
"""

import numpy as np

from conftest import BENCH_SEED
from repro.core.condensation import diagnose_condensation
from repro.core.market import CreditMarket
from repro.overlay.generators import scale_free_topology
from repro.queueing.traffic import solve_traffic_equations


def test_traffic_equations_scale_free(benchmark):
    """Solve the traffic equations of a 1000-peer scale-free market."""
    topology = scale_free_topology(1000, seed=BENCH_SEED)
    market = CreditMarket(topology, initial_credits=100.0)

    def solve():
        return solve_traffic_equations(market.routing_matrix)

    solution = benchmark(solve)
    # Lemma 1: a positive solution with negligible residual always exists.
    assert solution.residual < 1e-6
    assert np.all(solution.arrival_rates > 0)


def test_condensation_diagnosis(benchmark):
    """Full condensation diagnosis (threshold T, fugacity, expected wealth)."""
    topology = scale_free_topology(1000, seed=BENCH_SEED)
    market = CreditMarket(topology, initial_credits=100.0)
    utilizations = market.equilibrium().utilizations

    def diagnose():
        return diagnose_condensation(utilizations, average_wealth=100.0)

    report = benchmark(diagnose)
    assert report.threshold > 0
    assert report.expected_wealth.shape == utilizations.shape
    # The expected wealth profile accounts for (approximately) all credits.
    assert abs(report.expected_wealth.sum() - 100.0 * len(utilizations)) / (
        100.0 * len(utilizations)
    ) < 0.05
