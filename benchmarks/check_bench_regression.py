"""Benchmark-regression gate: compare a fresh kernel benchmark to the baseline.

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json [BASELINE.json]
        [--tolerance 0.30]

Reads two ``BENCH_simkernel.json``-format recordings (the baseline
defaults to the committed ``BENCH_simkernel.json`` at the repo root) and
compares the **vectorized** kernel's step throughput for every population
the two recordings share.  A population whose current throughput falls
more than ``tolerance`` (default 30%, ``REPRO_BENCH_TOLERANCE`` env
override) below the baseline fails the gate with exit code 1.

The absolute numbers move with the hardware the gate runs on, which is
why the tolerance is wide: the gate exists to catch the order-of-magnitude
regressions (an accidentally de-vectorized hot path, a per-step rebuild of
the routing pack), not single-digit jitter.  As a hardware-independent
backstop the gate also checks the vectorized/loop ``speedup`` ratio (both
sides measured in the same run, so machine speed cancels): falling below
half the baseline ratio fails regardless of absolute throughput.  The
freshly measured JSON is uploaded as a CI artifact either way, so genuine
trends stay auditable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_simkernel.json"
GATED_METRIC = "vectorized_steps_per_second"

#: The speedup ratio may drop to this fraction of the baseline before the
#: backstop fires.  Deliberately coarse: load skews the loop and vectorized
#: timings differently (±35% ratio swings observed on a busy single core),
#: while a de-vectorization regression collapses the ratio toward 1x.
SPEEDUP_FLOOR_FRACTION = 0.5


def _load(path: Path) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark recording {path}: {error}")


def _by_population(record: dict) -> dict:
    populations = record.get("populations") or []
    return {int(entry["num_peers"]): entry for entry in populations}


def compare(current: dict, baseline: dict, tolerance: float) -> int:
    """Print the comparison table; return the number of regressions."""
    current_by_pop = _by_population(current)
    baseline_by_pop = _by_population(baseline)
    shared = sorted(set(current_by_pop) & set(baseline_by_pop))
    if not shared:
        raise SystemExit(
            "the two recordings share no populations — nothing to compare "
            f"(current: {sorted(current_by_pop)}, baseline: {sorted(baseline_by_pop)})"
        )
    regressions = 0
    print(f"benchmark-regression gate (tolerance {tolerance:.0%}, metric {GATED_METRIC})")
    for num_peers in shared:
        measured = float(current_by_pop[num_peers][GATED_METRIC])
        reference = float(baseline_by_pop[num_peers][GATED_METRIC])
        floor = (1.0 - tolerance) * reference
        verdict = "ok" if measured >= floor else "REGRESSION"
        if measured < floor:
            regressions += 1
        print(
            f"  {num_peers:>5} peers: {measured:>10.1f} steps/s "
            f"(baseline {reference:.1f}, floor {floor:.1f}) {verdict}"
        )
        speedup = float(current_by_pop[num_peers].get("speedup", 0.0))
        speedup_ref = float(baseline_by_pop[num_peers].get("speedup", 0.0))
        speedup_floor = SPEEDUP_FLOOR_FRACTION * speedup_ref
        if speedup_ref and speedup < speedup_floor:
            regressions += 1
            print(
                f"  {num_peers:>5} peers: speedup {speedup:.2f}x fell below "
                f"{speedup_floor:.2f}x (half of baseline {speedup_ref:.2f}x) REGRESSION"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured recording")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help="committed baseline recording (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional throughput drop (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")
    regressions = compare(_load(args.current), _load(args.baseline), args.tolerance)
    if regressions:
        print(f"{regressions} population(s) regressed beyond tolerance", file=sys.stderr)
        return 1
    print("throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
