"""Benchmark-regression gate: compare a fresh kernel benchmark to the baseline.

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json [BASELINE.json]
        [--tolerance 0.30] [--metrics vectorized_steps_per_second,...]

Reads two kernel-benchmark recordings (``BENCH_simkernel.json`` or
``BENCH_streamkernel.json`` format; the baseline defaults to the committed
``BENCH_simkernel.json`` at the repo root) and compares each gated
throughput metric for every population the two recordings share.  By
default both the **vectorized** and the **loop** kernel baselines are
gated — a de-optimised loop baseline would silently inflate the reported
speedups — with metric names resolved against whichever of the two
recording formats is being compared.  A population whose current
throughput falls more than ``tolerance`` (default 30%,
``REPRO_BENCH_TOLERANCE`` env override) below the baseline for any gated
metric fails the gate with exit code 1.

The absolute numbers move with the hardware the gate runs on, which is
why the tolerance is wide: the gate exists to catch the order-of-magnitude
regressions (an accidentally de-vectorized hot path, a per-step rebuild of
the routing pack), not single-digit jitter.  As a hardware-independent
backstop the gate also checks the vectorized/loop ``speedup`` ratio (both
sides measured in the same run, so machine speed cancels): falling below
half the baseline ratio fails regardless of absolute throughput.  The
freshly measured JSON is uploaded as a CI artifact either way, so genuine
trends stay auditable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_simkernel.json"

#: Default gated metrics: both kernels of both recording formats
#: (``*_steps_per_second`` for the market benchmark,
#: ``*_ticks_per_second`` for the streaming one).  Metrics absent from the
#: recordings being compared are skipped, so the shared default covers
#: either format.
GATED_METRICS = (
    "vectorized_steps_per_second",
    "loop_steps_per_second",
    "vectorized_ticks_per_second",
    "loop_ticks_per_second",
    "sharded2_steps_per_second",
    "sharded4_steps_per_second",
)

#: The speedup ratio may drop to this fraction of the baseline before the
#: backstop fires.  Deliberately coarse: load skews the loop and vectorized
#: timings differently (±35% ratio swings observed on a busy single core),
#: while a de-vectorization regression collapses the ratio toward 1x.
SPEEDUP_FLOOR_FRACTION = 0.5


def _load(path: Path) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark recording {path}: {error}")


def _by_population(record: dict) -> dict:
    populations = record.get("populations") or []
    return {int(entry["num_peers"]): entry for entry in populations}


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    metrics: tuple = GATED_METRICS,
) -> int:
    """Print the comparison table; return the number of regressions."""
    current_by_pop = _by_population(current)
    baseline_by_pop = _by_population(baseline)
    shared = sorted(set(current_by_pop) & set(baseline_by_pop))
    if not shared:
        raise SystemExit(
            "the two recordings share no populations — nothing to compare "
            f"(current: {sorted(current_by_pop)}, baseline: {sorted(baseline_by_pop)})"
        )
    gated = [
        metric
        for metric in metrics
        if any(metric in current_by_pop[pop] and metric in baseline_by_pop[pop] for pop in shared)
    ]
    if not gated:
        raise SystemExit(
            f"none of the gated metrics {list(metrics)} appear in both recordings"
        )
    regressions = 0
    print(
        f"benchmark-regression gate (tolerance {tolerance:.0%}, "
        f"metrics {', '.join(gated)})"
    )
    for num_peers in shared:
        for metric in gated:
            if metric not in current_by_pop[num_peers] or metric not in baseline_by_pop[num_peers]:
                continue
            measured = float(current_by_pop[num_peers][metric])
            reference = float(baseline_by_pop[num_peers][metric])
            floor = (1.0 - tolerance) * reference
            verdict = "ok" if measured >= floor else "REGRESSION"
            if measured < floor:
                regressions += 1
            unit = metric.rsplit("_per_second", 1)[0].split("_")[-1] + "/s"
            print(
                f"  {num_peers:>5} peers {metric.split('_')[0]:>10}: "
                f"{measured:>10.1f} {unit} "
                f"(baseline {reference:.1f}, floor {floor:.1f}) {verdict}"
            )
        speedup = float(current_by_pop[num_peers].get("speedup", 0.0))
        speedup_ref = float(baseline_by_pop[num_peers].get("speedup", 0.0))
        speedup_floor = SPEEDUP_FLOOR_FRACTION * speedup_ref
        if speedup_ref and speedup < speedup_floor:
            regressions += 1
            print(
                f"  {num_peers:>5} peers: speedup {speedup:.2f}x fell below "
                f"{speedup_floor:.2f}x (half of baseline {speedup_ref:.2f}x) REGRESSION"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured recording")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help="committed baseline recording (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional throughput drop (default: %(default)s)",
    )
    parser.add_argument(
        "--metrics",
        default=",".join(GATED_METRICS),
        help=(
            "comma-separated per-population metrics to gate; metrics absent "
            "from the recordings are skipped (default: %(default)s)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")
    metrics = tuple(name.strip() for name in args.metrics.split(",") if name.strip())
    if not metrics:
        parser.error("--metrics must name at least one metric")
    regressions = compare(
        _load(args.current), _load(args.baseline), args.tolerance, metrics
    )
    if regressions:
        print(f"{regressions} population(s) regressed beyond tolerance", file=sys.stderr)
        return 1
    print("throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
