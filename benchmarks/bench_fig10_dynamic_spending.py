"""Benchmark: Fig. 10 — static vs dynamic (wealth-proportional) spending rates.

Regenerates the comparison showing that letting rich peers spend faster
mitigates credit condensation.
"""

from conftest import run_once


def test_fig10_dynamic_spending(benchmark):
    result = run_once(benchmark, "fig10")
    table = result.table()
    rows = {row["spending_policy"]: row for row in table}
    # Shape check: dynamic adjustment lowers the stabilized Gini index.
    assert rows["with adjustment"]["stabilized_gini"] < rows["without adjustment"]["stabilized_gini"]
