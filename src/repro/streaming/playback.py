"""Playback accounting: continuity, startup delay and missed chunks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.streaming.chunks import BufferMap

__all__ = ["PlaybackStats", "PlaybackBuffer"]


@dataclass
class PlaybackStats:
    """Aggregate playback-quality statistics for one peer."""

    chunks_played: int = 0
    chunks_missed: int = 0
    startup_delay: Optional[float] = None
    stall_events: int = 0

    @property
    def continuity(self) -> float:
        """Fraction of due chunks that were actually held at their deadline.

        Returns 1.0 before any chunk has come due (vacuous continuity).
        """
        total = self.chunks_played + self.chunks_missed
        if total == 0:
            return 1.0
        return self.chunks_played / total


@dataclass
class PlaybackBuffer:
    """Drives playback against a buffer map and records continuity.

    The buffer starts playback once ``startup_chunks`` consecutive chunks
    from the join point are available (or when forced), then consumes one
    chunk per ``1 / playback_rate`` seconds.  A missing chunk at its deadline
    counts as a miss (skipped, live-streaming semantics) rather than a stall,
    matching the paper's live-streaming setting where late chunks are useless.

    Attributes
    ----------
    playback_rate:
        Chunks consumed per second once playback has started.
    startup_chunks:
        Number of contiguous chunks required before playback starts.
    join_index:
        First chunk index this viewer is interested in.
    """

    playback_rate: float = 1.0
    startup_chunks: int = 10
    join_index: int = 0
    stats: PlaybackStats = field(default_factory=PlaybackStats)

    def __post_init__(self) -> None:
        if self.playback_rate <= 0:
            raise ValueError("playback_rate must be positive")
        if self.startup_chunks < 0:
            raise ValueError("startup_chunks must be non-negative")
        self._started = False
        self._join_time: Optional[float] = None
        self._next_index = int(self.join_index)
        self._last_advance_time: Optional[float] = None

    # ------------------------------------------------------------------ queries

    @property
    def started(self) -> bool:
        """Whether playback has started."""
        return self._started

    @property
    def playback_point(self) -> int:
        """Index of the next chunk due for playback."""
        return self._next_index

    # ------------------------------------------------------------------ driving

    def note_join(self, time: float) -> None:
        """Record the wall-clock join time (for startup-delay measurement)."""
        if self._join_time is None:
            self._join_time = float(time)

    def maybe_start(self, buffer_map: BufferMap, time: float) -> bool:
        """Start playback if enough contiguous chunks are buffered; return started state."""
        if self._started:
            return True
        if self._join_time is None:
            self._join_time = float(time)
        if buffer_map.contiguous_from(self._next_index) >= self.startup_chunks:
            self._started = True
            self._last_advance_time = float(time)
            self.stats.startup_delay = float(time) - self._join_time
        return self._started

    def advance(self, buffer_map: BufferMap, time: float) -> List[int]:
        """Advance playback to ``time``, consuming every chunk that has come due.

        Returns the list of chunk indices that were due but missing (misses).
        """
        if not self._started:
            self.maybe_start(buffer_map, time)
            return []
        assert self._last_advance_time is not None
        elapsed = float(time) - self._last_advance_time
        if elapsed <= 0:
            return []
        due = int(elapsed * self.playback_rate)
        if due <= 0:
            return []
        missed: List[int] = []
        for _ in range(due):
            index = self._next_index
            if index in buffer_map:
                self.stats.chunks_played += 1
            else:
                self.stats.chunks_missed += 1
                missed.append(index)
            self._next_index += 1
        if missed:
            self.stats.stall_events += 1
        self._last_advance_time += due / self.playback_rate
        return missed
