"""The streaming source: emits the live chunk stream at a fixed rate."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simulation.process import PeriodicProcess
from repro.streaming.chunks import Chunk, ChunkStore
from repro.utils.validation import check_positive

__all__ = ["StreamSource"]


class StreamSource(PeriodicProcess):
    """Emits one chunk every ``1 / chunk_rate`` seconds.

    The source keeps its own :class:`~repro.streaming.chunks.ChunkStore` so
    peers can always pull recent chunks from it (it plays the role of the
    origin server / seed of the live channel), and notifies subscribers of
    each newly emitted chunk so they can update availability indexes.

    Parameters
    ----------
    chunk_rate:
        Chunks emitted per second; the streaming rate ``r`` of Sec. V-C.
    chunk_size_bytes:
        Payload size recorded on each chunk.
    window_size:
        Buffer-map window retained by the source.
    """

    def __init__(
        self,
        chunk_rate: float = 1.0,
        chunk_size_bytes: int = 64_000,
        window_size: int = 512,
        name: str = "source",
    ) -> None:
        check_positive(chunk_rate, "chunk_rate")
        super().__init__(interval=1.0 / chunk_rate, name=name)
        self.chunk_rate = float(chunk_rate)
        self.chunk_size_bytes = int(chunk_size_bytes)
        self.store = ChunkStore(window_size=window_size)
        self._next_index = 0
        self._subscribers: List[Callable[[Chunk], None]] = []

    # ------------------------------------------------------------------ subscriptions

    def subscribe(self, callback: Callable[[Chunk], None]) -> None:
        """Register a callback invoked with every newly emitted chunk."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------ queries

    @property
    def chunks_emitted(self) -> int:
        """Total number of chunks emitted so far."""
        return self._next_index

    @property
    def latest_index(self) -> int:
        """Index of the most recently emitted chunk (-1 before the first emission)."""
        return self._next_index - 1

    def playback_point(self, startup_delay_chunks: int = 10) -> int:
        """The chunk index live viewers should currently be playing.

        Viewers lag the live edge by ``startup_delay_chunks`` to absorb
        delivery jitter; negative values (before enough chunks exist) clamp
        to 0.
        """
        return max(0, self.latest_index - int(startup_delay_chunks))

    def has_chunk(self, index: int) -> bool:
        """Whether the source still holds chunk ``index`` in its window."""
        return self.store.has(index)

    def get_chunk(self, index: int) -> Optional[Chunk]:
        """Return chunk ``index`` if the source still holds it."""
        return self.store.get(index)

    # ------------------------------------------------------------------ emission

    def tick(self) -> None:
        chunk = Chunk(
            index=self._next_index,
            size_bytes=self.chunk_size_bytes,
            origin_time=self.now,
        )
        self._next_index += 1
        self.store.insert(chunk)
        for callback in self._subscribers:
            callback(chunk)

    def emit_backlog(self, count: int) -> List[Chunk]:
        """Synchronously emit ``count`` chunks (used to pre-fill buffers at t=0)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        emitted = []
        for _ in range(count):
            chunk = Chunk(
                index=self._next_index,
                size_bytes=self.chunk_size_bytes,
                origin_time=0.0,
            )
            self._next_index += 1
            self.store.insert(chunk)
            emitted.append(chunk)
            for callback in self._subscribers:
                callback(chunk)
        return emitted
