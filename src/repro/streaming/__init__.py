"""Mesh-pull P2P live-streaming substrate (UUSee-like protocol core).

The paper's simulation study (Sec. VI) runs a mesh-based P2P live-streaming
protocol "similar to that of UUSee": the source emits a chunk stream at a
fixed rate, peers advertise buffer maps to their neighbours and pull missing
chunks from neighbours that hold them, and playback proceeds at the stream
rate behind a start-up delay.  This package provides the protocol mechanics
(chunks, buffer maps, chunk scheduling, playback accounting); credit
settlement on top of chunk transfers lives in :mod:`repro.p2psim`.

Status: **reference implementation.**  The production streaming simulator
(:class:`~repro.p2psim.streaming_sim.StreamingMarketSimulator`) no longer
drives these objects per event — it re-implements the same round
semantics as batched array kernels over the whole swarm.  The classes
here remain the object-per-peer, event-at-a-time statement of the
protocol the kernels are modelled on (and the substrate for
protocol-level experiments that don't need swarm scale); their tests pin
the behaviours the batched kernels mirror.
"""

from repro.streaming.chunks import BufferMap, Chunk, ChunkStore
from repro.streaming.source import StreamSource
from repro.streaming.scheduler import (
    ChunkRequest,
    ChunkScheduler,
    PlaybackDrivenScheduler,
    RarestFirstScheduler,
)
from repro.streaming.playback import PlaybackBuffer, PlaybackStats

__all__ = [
    "Chunk",
    "BufferMap",
    "ChunkStore",
    "StreamSource",
    "ChunkRequest",
    "ChunkScheduler",
    "RarestFirstScheduler",
    "PlaybackDrivenScheduler",
    "PlaybackBuffer",
    "PlaybackStats",
]
