"""Chunk-request scheduling for mesh-pull streaming.

A scheduler decides, given the requesting peer's buffer map and the
advertised buffer maps of its neighbours, which missing chunks to request
from which neighbour in the next scheduling round.  Two classic policies are
provided:

* :class:`RarestFirstScheduler` — prefer chunks held by the fewest
  neighbours (maximises chunk diversity, BitTorrent-style);
* :class:`PlaybackDrivenScheduler` — prefer chunks closest to the playback
  deadline (latency-sensitive live streaming, UUSee-style).

Both break ties among capable suppliers by price (cheapest first) and then
randomly, which is where the credit market couples into chunk scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.streaming.chunks import BufferMap

__all__ = [
    "ChunkRequest",
    "ChunkScheduler",
    "RarestFirstScheduler",
    "PlaybackDrivenScheduler",
]


@dataclass(frozen=True)
class ChunkRequest:
    """A scheduled request: fetch ``chunk_index`` from ``supplier_id`` at ``price``."""

    chunk_index: int
    supplier_id: int
    price: float


PriceLookup = Callable[[int, int], float]
"""Callable mapping ``(supplier_id, chunk_index)`` to the supplier's asking price."""

LoadLookup = Callable[[int], float]
"""Callable mapping ``supplier_id`` to its current upload load (for load balancing)."""


class ChunkScheduler:
    """Base class for chunk-request schedulers.

    Parameters
    ----------
    max_requests_per_round:
        Cap on the number of requests returned by one call to
        :meth:`schedule` (models per-round download concurrency).
    rng:
        Randomness source for tie-breaking; a fresh default generator is
        used when omitted (deterministic runs should always pass one).
    supplier_choice:
        ``"availability"`` (default) picks a supplier uniformly at random
        among the neighbours advertising the chunk — the paper's rule that
        "credit transfer probabilities to neighbors are decided by their
        data chunks availability".  ``"least-loaded"`` prefers the supplier
        that has uploaded the least so far (requires a ``load_lookup`` at
        scheduling time), modelling the upload-load balancing of deployed
        mesh-pull systems.  ``"cheapest"`` price-shops and picks the
        cheapest supplier (random tie-break).
    """

    SUPPLIER_CHOICES = ("availability", "least-loaded", "cheapest")

    def __init__(
        self,
        max_requests_per_round: int = 4,
        rng: Optional[np.random.Generator] = None,
        supplier_choice: str = "availability",
    ) -> None:
        if max_requests_per_round < 1:
            raise ValueError("max_requests_per_round must be at least 1")
        if supplier_choice not in self.SUPPLIER_CHOICES:
            raise ValueError(f"supplier_choice must be one of {self.SUPPLIER_CHOICES}")
        self.max_requests_per_round = int(max_requests_per_round)
        self.supplier_choice = supplier_choice
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ API

    def schedule(
        self,
        own_map: BufferMap,
        neighbor_maps: Mapping[int, BufferMap],
        want_range: Sequence[int],
        price_lookup: Optional[PriceLookup] = None,
        budget: Optional[float] = None,
        load_lookup: Optional[LoadLookup] = None,
    ) -> List[ChunkRequest]:
        """Plan this round's chunk requests.

        Parameters
        ----------
        own_map:
            The requesting peer's buffer map.
        neighbor_maps:
            Advertised buffer maps keyed by neighbour id.
        want_range:
            Candidate chunk indices the peer would like (e.g. the window
            between playback point and live edge), in ascending order.
        price_lookup:
            Optional ``(supplier, chunk) -> price``; defaults to a price of
            zero (pure protocol behaviour without a market).
        budget:
            Optional credit budget; requests stop once the cumulative price
            would exceed it (this is how an impoverished peer is throttled,
            the central mechanism behind the paper's Fig. 1).
        load_lookup:
            Optional ``supplier -> current load``; required by the
            ``"least-loaded"`` supplier-choice policy and ignored otherwise.

        Returns
        -------
        list of ChunkRequest
            At most ``max_requests_per_round`` requests, one per chunk, each
            naming a supplier that advertises the chunk.
        """
        missing = [index for index in want_range if index not in own_map]
        if not missing:
            return []
        suppliers_by_chunk = self._suppliers_by_chunk(missing, neighbor_maps)
        candidates = [index for index in missing if suppliers_by_chunk.get(index)]
        if not candidates:
            return []
        ordered = self._order_candidates(candidates, suppliers_by_chunk)

        requests: List[ChunkRequest] = []
        spent = 0.0
        for chunk_index in ordered:
            if len(requests) >= self.max_requests_per_round:
                break
            supplier, price = self._pick_supplier(
                chunk_index, suppliers_by_chunk[chunk_index], price_lookup, load_lookup
            )
            if budget is not None and spent + price > budget + 1e-12:
                continue
            requests.append(ChunkRequest(chunk_index=chunk_index, supplier_id=supplier, price=price))
            spent += price
        return requests

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _suppliers_by_chunk(
        missing: Sequence[int], neighbor_maps: Mapping[int, BufferMap]
    ) -> Dict[int, List[int]]:
        suppliers: Dict[int, List[int]] = {}
        for neighbor_id, buffer_map in neighbor_maps.items():
            for chunk_index in missing:
                if chunk_index in buffer_map:
                    suppliers.setdefault(chunk_index, []).append(neighbor_id)
        return suppliers

    def _pick_supplier(
        self,
        chunk_index: int,
        suppliers: Sequence[int],
        price_lookup: Optional[PriceLookup],
        load_lookup: Optional[LoadLookup] = None,
    ) -> tuple:
        def price_of(supplier: int) -> float:
            return 0.0 if price_lookup is None else float(price_lookup(supplier, chunk_index))

        if self.supplier_choice == "least-loaded" and load_lookup is not None:
            loads = {supplier: float(load_lookup(supplier)) for supplier in suppliers}
            least = min(loads.values())
            candidates = [s for s, load in loads.items() if load <= least + 1e-12]
            chosen = candidates[int(self._rng.integers(len(candidates)))]
            return chosen, price_of(chosen)
        if self.supplier_choice == "cheapest" and price_lookup is not None:
            prices = {supplier: price_of(supplier) for supplier in suppliers}
            cheapest = min(prices.values())
            candidates = [s for s, p in prices.items() if p <= cheapest + 1e-12]
            chosen = candidates[int(self._rng.integers(len(candidates)))]
            return chosen, prices[chosen]
        chosen = suppliers[int(self._rng.integers(len(suppliers)))]
        return chosen, price_of(chosen)

    def _order_candidates(
        self, candidates: Sequence[int], suppliers_by_chunk: Mapping[int, Sequence[int]]
    ) -> List[int]:
        """Order candidate chunks by policy preference; subclasses override."""
        raise NotImplementedError


class RarestFirstScheduler(ChunkScheduler):
    """Request the chunks held by the fewest neighbours first."""

    def _order_candidates(
        self, candidates: Sequence[int], suppliers_by_chunk: Mapping[int, Sequence[int]]
    ) -> List[int]:
        shuffled = list(candidates)
        self._rng.shuffle(shuffled)
        return sorted(shuffled, key=lambda index: (len(suppliers_by_chunk[index]), index))


class PlaybackDrivenScheduler(ChunkScheduler):
    """Request the chunks closest to the playback deadline first (live streaming)."""

    def _order_candidates(
        self, candidates: Sequence[int], suppliers_by_chunk: Mapping[int, Sequence[int]]
    ) -> List[int]:
        return sorted(candidates)
