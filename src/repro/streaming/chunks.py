"""Chunk, buffer-map and chunk-store primitives for the streaming substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

__all__ = ["Chunk", "BufferMap", "ChunkStore"]


@dataclass(frozen=True)
class Chunk:
    """A unit of streamed content.

    Attributes
    ----------
    index:
        Position of the chunk in the stream (0-based, monotonically
        increasing with playback time).
    size_bytes:
        Payload size; only used by bandwidth accounting.
    origin_time:
        Simulation time at which the source emitted the chunk.
    """

    index: int
    size_bytes: int = 64_000
    origin_time: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"chunk index must be non-negative, got {self.index}")
        if self.size_bytes <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size_bytes}")


class BufferMap:
    """The set of chunk indices a peer currently holds, within a sliding window.

    A buffer map is what peers advertise to neighbours in mesh-pull
    streaming.  The window limits memory: chunks older than
    ``window_size`` positions behind the highest held index are evicted.
    """

    def __init__(self, window_size: int = 256) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be at least 1, got {window_size}")
        self.window_size = int(window_size)
        self._held: Set[int] = set()
        self._highest = -1

    # ------------------------------------------------------------------ mutation

    def add(self, index: int) -> bool:
        """Record possession of chunk ``index``; returns False if already held."""
        index = int(index)
        if index < 0:
            raise ValueError("chunk index must be non-negative")
        if index in self._held:
            return False
        self._held.add(index)
        if index > self._highest:
            self._highest = index
        self._evict()
        return True

    def discard(self, index: int) -> None:
        """Forget chunk ``index`` if held."""
        self._held.discard(int(index))

    def _evict(self) -> None:
        floor = self._highest - self.window_size + 1
        if floor <= 0:
            return
        stale = [index for index in self._held if index < floor]
        for index in stale:
            self._held.discard(index)

    # ------------------------------------------------------------------ queries

    def __contains__(self, index: int) -> bool:
        return int(index) in self._held

    def __len__(self) -> int:
        return len(self._held)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._held))

    @property
    def highest_index(self) -> int:
        """Highest chunk index ever held (-1 when empty)."""
        return self._highest

    def holdings(self) -> FrozenSet[int]:
        """Frozen snapshot of held chunk indices."""
        return frozenset(self._held)

    def missing_in_range(self, start: int, stop: int) -> List[int]:
        """Chunk indices in ``[start, stop)`` that are not held, ascending."""
        return [index for index in range(max(0, int(start)), int(stop)) if index not in self._held]

    def contiguous_from(self, start: int) -> int:
        """Number of consecutively-held chunks starting at ``start``."""
        count = 0
        index = int(start)
        while index in self._held:
            count += 1
            index += 1
        return count


class ChunkStore:
    """Chunk payload storage for one peer: a buffer map plus chunk metadata."""

    def __init__(self, window_size: int = 256) -> None:
        self.buffer_map = BufferMap(window_size=window_size)
        self._chunks: Dict[int, Chunk] = {}
        self.received_count = 0
        self.duplicate_count = 0

    def insert(self, chunk: Chunk) -> bool:
        """Store ``chunk``; returns False (and counts a duplicate) if already held."""
        if chunk.index in self.buffer_map:
            self.duplicate_count += 1
            return False
        self.buffer_map.add(chunk.index)
        self._chunks[chunk.index] = chunk
        self.received_count += 1
        self._sync_payloads()
        return True

    def _sync_payloads(self) -> None:
        held = self.buffer_map.holdings()
        stale = [index for index in self._chunks if index not in held]
        for index in stale:
            del self._chunks[index]

    def get(self, index: int) -> Optional[Chunk]:
        """Return the stored chunk at ``index`` or None."""
        return self._chunks.get(int(index))

    def has(self, index: int) -> bool:
        """Whether chunk ``index`` is currently held."""
        return int(index) in self.buffer_map

    def indices(self) -> List[int]:
        """Sorted list of held chunk indices."""
        return sorted(self.buffer_map.holdings())

    def bulk_insert(self, chunks: Iterable[Chunk]) -> int:
        """Insert many chunks; returns the number actually stored (non-duplicates)."""
        stored = 0
        for chunk in chunks:
            if self.insert(chunk):
                stored += 1
        return stored

    def __len__(self) -> int:
        return len(self.buffer_map)
