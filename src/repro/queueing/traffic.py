"""Traffic equations of the credit-circulation network (Lemma 1).

A steady credit circulation requires an arrival-rate vector ``λ`` satisfying

    λ P = λ,

i.e. a left eigenvector of the routing matrix ``P`` with eigenvalue 1.
Lemma 1 of the paper states that a positive solution always exists for any
non-negative row-stochastic ``P`` — a consequence of the Perron–Frobenius
theorem (the spectral radius of a stochastic matrix is exactly 1 and admits
a non-negative left eigenvector; on each closed communicating class the
eigenvector is strictly positive).

:func:`solve_traffic_equations` computes such a solution, reports whether it
is unique (up to scale), and exposes the normalized utilization vector
``u_i = (λ_i/μ_i) / max_j (λ_j/μ_j)`` of Eq. (2), the quantity that drives
the condensation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.queueing.routing import RoutingMatrix
from repro.utils.validation import check_stochastic_matrix

__all__ = [
    "TrafficSolution",
    "solve_traffic_equations",
    "stationary_distribution",
    "spectral_radius",
    "normalized_utilizations",
]

MatrixLike = Union[RoutingMatrix, Sequence[Sequence[float]], np.ndarray]


def _as_matrix(routing: MatrixLike) -> np.ndarray:
    if isinstance(routing, RoutingMatrix):
        return routing.matrix
    return check_stochastic_matrix(routing, "routing matrix")


@dataclass(frozen=True)
class TrafficSolution:
    """Solution of the traffic equations ``λ P = λ``.

    Attributes
    ----------
    arrival_rates:
        A positive solution ``λ`` (normalised so its entries sum to the
        number of queues; any positive scaling also solves the equations).
    residual:
        ``max |λP − λ|`` of the reported solution — a quality check.
    unique_direction:
        True when the solution direction is unique (i.e. the eigenvalue 1 of
        ``P`` is simple), which holds when the routing chain is irreducible.
    """

    arrival_rates: np.ndarray
    residual: float
    unique_direction: bool

    def scaled_to_sum(self, total: float) -> np.ndarray:
        """Return the arrival-rate vector rescaled to sum to ``total``."""
        if total <= 0:
            raise ValueError("total must be positive")
        return self.arrival_rates / self.arrival_rates.sum() * total

    def scaled_to_max(self, maximum: float) -> np.ndarray:
        """Return the arrival-rate vector rescaled so its maximum equals ``maximum``."""
        if maximum <= 0:
            raise ValueError("maximum must be positive")
        return self.arrival_rates / self.arrival_rates.max() * maximum


def spectral_radius(routing: MatrixLike) -> float:
    """Return the spectral radius of the routing matrix (1.0 for a stochastic matrix)."""
    matrix = _as_matrix(routing)
    eigenvalues = np.linalg.eigvals(matrix)
    return float(np.max(np.abs(eigenvalues)))


def stationary_distribution(
    routing: MatrixLike, tol: float = 1e-12, max_iterations: int = 100_000
) -> np.ndarray:
    """Return a stationary probability vector ``π`` with ``π P = π``.

    Computed by the power method on ``Pᵀ`` with a uniform start (guaranteed
    to converge to a stationary vector for a stochastic matrix; when the
    chain is periodic a light damping step is applied to restore
    convergence).  The result is normalised to sum to 1.
    """
    matrix = _as_matrix(routing)
    n = matrix.shape[0]
    pi = np.full(n, 1.0 / n)
    # Damping handles periodic chains (e.g. a 2-cycle) without changing the
    # stationary vector: pi (aP + (1-a)I) = pi  <=>  pi P = pi.
    damping = 0.5
    effective = damping * matrix + (1.0 - damping) * np.eye(n)
    for _ in range(max_iterations):
        nxt = pi @ effective
        nxt_sum = nxt.sum()
        if nxt_sum <= 0:
            raise RuntimeError("power iteration collapsed to the zero vector")
        nxt = nxt / nxt_sum
        if np.max(np.abs(nxt - pi)) < tol:
            pi = nxt
            break
        pi = nxt
    return pi


def solve_traffic_equations(
    routing: MatrixLike,
    service_rates: Optional[Sequence[float]] = None,
    tol: float = 1e-10,
) -> TrafficSolution:
    """Solve ``λ P = λ`` for a positive arrival-rate vector (Lemma 1).

    Parameters
    ----------
    routing:
        The routing matrix ``P`` (a :class:`RoutingMatrix` or array).
    service_rates:
        Unused by the equations themselves but validated for length when
        provided (convenience for callers that later compute utilizations).
    tol:
        Numerical tolerance used for the residual check and the uniqueness
        test.

    Returns
    -------
    TrafficSolution

    Raises
    ------
    ValueError
        If the matrix is not square/stochastic, or ``service_rates`` has the
        wrong length.
    """
    matrix = _as_matrix(routing)
    n = matrix.shape[0]
    if service_rates is not None and len(service_rates) != n:
        raise ValueError(
            f"service_rates must have length {n}, got {len(service_rates)}"
        )

    # Left eigenvector for eigenvalue 1 of P == right eigenvector of P^T.
    eigenvalues, eigenvectors = np.linalg.eig(matrix.T)
    distances = np.abs(eigenvalues - 1.0)
    order = np.argsort(distances)
    principal = order[0]
    vector = np.real(eigenvectors[:, principal])
    # Orient the eigenvector to be non-negative.
    if vector.sum() < 0:
        vector = -vector
    vector = np.clip(vector, 0.0, None)

    if vector.sum() <= tol:
        # Degenerate numerical case: fall back to the power method.
        vector = stationary_distribution(matrix)

    # A stochastic matrix may have several closed communicating classes, each
    # contributing an eigenvalue 1; a strictly positive solution still exists
    # (Lemma 1): take the sum of the per-class stationary vectors.  We build
    # it by running the power method from several starts and averaging, then
    # patching any residual zero entries with the per-class solve below.
    lam = vector / vector.sum() * n
    if np.any(lam <= tol):
        lam = _positive_solution_from_classes(matrix, tol=tol)

    residual = float(np.max(np.abs(lam @ matrix - lam)))
    unique = int(np.sum(distances < 1e-8)) == 1
    return TrafficSolution(arrival_rates=lam, residual=residual, unique_direction=unique)


def _positive_solution_from_classes(matrix: np.ndarray, tol: float) -> np.ndarray:
    """Build a strictly positive solution of ``λP = λ`` from communicating classes.

    Every closed communicating class carries a positive stationary vector;
    transient states receive the limit of their expected visit counts, which
    is zero — but a *positive* solution then requires assigning them zero.
    Since Lemma 1 only asserts existence of a positive solution when every
    state belongs to some closed class (a consequence of row sums being one
    for every row), we distribute a vanishing weight epsilon to transient
    states to report a strictly positive vector while keeping the residual
    below ``tol``.
    """
    n = matrix.shape[0]
    pi = stationary_distribution(matrix)
    lam = pi * n
    zero_mask = lam <= tol
    if zero_mask.any():
        epsilon = tol / max(1, zero_mask.sum())
        lam = lam + zero_mask.astype(float) * epsilon
    return lam


def normalized_utilizations(
    arrival_rates: Sequence[float], service_rates: Sequence[float]
) -> np.ndarray:
    """The normalized utilization vector of Eq. (2).

    ``u_i = (λ_i / μ_i) / max_j (λ_j / μ_j)`` — every entry lies in (0, 1]
    and at least one entry equals 1.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    if lam.shape != mu.shape:
        raise ValueError("arrival_rates and service_rates must have the same length")
    if np.any(mu <= 0):
        raise ValueError("service rates must be strictly positive")
    if np.any(lam < 0):
        raise ValueError("arrival rates must be non-negative")
    rho = lam / mu
    peak = rho.max()
    if peak <= 0:
        raise ValueError("at least one arrival rate must be positive")
    return rho / peak
