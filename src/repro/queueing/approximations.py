"""The paper's multinomial approximation of the wealth marginal (Eqs. 5–8).

Sec. V-B1 approximates the normalisation constant of the product-form
distribution by dropping the occupancy-dependent multinomial coefficients
(Eq. 5), which yields a *binomial* marginal for each peer's wealth:

    Q{B_i = b}  =  C(M, b) * p_i^b * (1 - p_i)^(M - b),
    p_i = u_i / sum_j u_j                                  (Eq. 6)

and, under symmetric utilization ``u_i = 1`` for all peers (Eqs. 7–8):

    Q{B_i = b}  =  C(M, b) * (1/N)^b * ((N-1)/N)^(M - b).

The approximation corresponds to distributing the ``M`` credits over peers
independently and uniformly at random in proportion to utilization — i.e.
to a *grand-canonical* view of the market — and is what Figs. 2–4 of the
paper are computed from.  The exact closed-network marginal is available in
:class:`repro.queueing.closed.ClosedJacksonNetwork` for comparison
(``benchmarks/bench_theory_buzen_vs_approx.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

__all__ = [
    "multinomial_marginal_pmf",
    "symmetric_marginal_pmf",
    "symmetric_zero_probability",
    "approximate_mean_wealth",
]


def multinomial_marginal_pmf(
    utilizations: Sequence[float], queue: int, total_jobs: int
) -> np.ndarray:
    """The paper's approximate marginal PMF of peer ``queue``'s wealth (Eq. 6).

    Parameters
    ----------
    utilizations:
        The normalized utilization vector ``u`` (any positive scaling works).
    queue:
        Index of the peer whose wealth distribution is returned.
    total_jobs:
        Total credits ``M``.

    Returns
    -------
    numpy.ndarray
        PMF over wealth values ``0..M`` (length ``M + 1``).
    """
    util = np.asarray(utilizations, dtype=float)
    if util.ndim != 1 or util.size == 0:
        raise ValueError("utilizations must be a non-empty one-dimensional sequence")
    if np.any(util <= 0):
        raise ValueError("utilizations must be strictly positive")
    if not 0 <= int(queue) < util.size:
        raise IndexError(f"queue index out of range: {queue}")
    total_jobs = int(total_jobs)
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    success = float(util[int(queue)] / util.sum())
    support = np.arange(total_jobs + 1)
    return stats.binom.pmf(support, total_jobs, success)


def symmetric_marginal_pmf(num_queues: int, total_jobs: int) -> np.ndarray:
    """The symmetric-utilization marginal PMF of Eq. (8): Binomial(M, 1/N)."""
    num_queues = int(num_queues)
    total_jobs = int(total_jobs)
    if num_queues < 1:
        raise ValueError("num_queues must be at least 1")
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    support = np.arange(total_jobs + 1)
    return stats.binom.pmf(support, total_jobs, 1.0 / num_queues)


def symmetric_zero_probability(num_queues: int, total_jobs: int) -> float:
    """``Q{B_i = 0} = ((N-1)/N)^M`` under symmetric utilization (used in Eq. 9)."""
    num_queues = int(num_queues)
    total_jobs = int(total_jobs)
    if num_queues < 1:
        raise ValueError("num_queues must be at least 1")
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    if num_queues == 1:
        return 1.0 if total_jobs == 0 else 0.0
    return float(((num_queues - 1) / num_queues) ** total_jobs)


def approximate_mean_wealth(utilizations: Sequence[float], total_jobs: int) -> np.ndarray:
    """Expected wealth of every peer under the multinomial approximation.

    ``E[B_i] = M * u_i / sum_j u_j`` — a useful sanity check against the
    exact values from Buzen's algorithm.
    """
    util = np.asarray(utilizations, dtype=float)
    if np.any(util <= 0):
        raise ValueError("utilizations must be strictly positive")
    return float(int(total_jobs)) * util / util.sum()
