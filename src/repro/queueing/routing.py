"""The credit transfer probability matrix ``P`` (routing matrix).

``P[i, j]`` is the fraction of peer *i*'s credit expenditure that flows to
neighbour *j* — equivalently, the probability that a job finishing service
at queue *i* routes to queue *j* (Table I of the paper).  Rows sum to one;
``P[i, i] > 0`` models a peer reserving a fraction of its credits from
trading (Sec. III-B2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, check_stochastic_matrix

__all__ = ["RoutingMatrix"]


class RoutingMatrix:
    """A row-stochastic credit routing matrix over ``n`` peers.

    Construct directly from an array, or use the classmethod constructors to
    derive a matrix from an overlay topology and trading preferences.
    """

    def __init__(self, matrix: Sequence[Sequence[float]]) -> None:
        self._matrix = check_stochastic_matrix(matrix, "routing matrix")

    # ------------------------------------------------------------------ basic accessors

    @property
    def matrix(self) -> np.ndarray:
        """The underlying (copy-safe) row-stochastic ndarray."""
        return self._matrix.copy()

    @property
    def size(self) -> int:
        """Number of peers/queues."""
        return self._matrix.shape[0]

    def probability(self, source: int, target: int) -> float:
        """Return ``P[source, target]``."""
        return float(self._matrix[source, target])

    def row(self, source: int) -> np.ndarray:
        """Return the routing distribution out of ``source``."""
        return self._matrix[source].copy()

    def self_loop_fractions(self) -> np.ndarray:
        """The diagonal of ``P`` — the credit fraction each peer reserves."""
        return np.diag(self._matrix).copy()

    def is_irreducible(self) -> bool:
        """Whether the routing chain is irreducible (single communicating class).

        Irreducibility guarantees a *unique* (up to scale) positive solution
        of the traffic equations; Lemma 1 itself needs only non-negativity
        and row sums of one.
        """
        n = self.size
        reachable = np.eye(n, dtype=bool)
        adjacency = self._matrix > 0
        frontier = adjacency.copy()
        for _ in range(n):
            new = reachable | (reachable @ frontier)
            if np.array_equal(new, reachable):
                break
            reachable = new
        return bool(reachable.all())

    def __repr__(self) -> str:
        return f"RoutingMatrix(size={self.size})"

    # ------------------------------------------------------------------ constructors

    @classmethod
    def uniform_over_neighbors(
        cls,
        topology: OverlayTopology,
        reserve_fraction: float = 0.0,
        order: Optional[Sequence[int]] = None,
    ) -> "RoutingMatrix":
        """Uniform routing: each peer splits its spending equally over its neighbours.

        This is the streaming / uniform-pricing case of Sec. V-C, where a
        peer has no reason to prefer one neighbour over another:
        ``p_ij = (1 - p_ii) / (N_i)`` for each of its ``N_i`` neighbours.

        Parameters
        ----------
        topology:
            The overlay; peers with no neighbours route everything to
            themselves (their column would otherwise be undefined).
        reserve_fraction:
            The self-loop probability ``p_ii`` (identical for every peer).
        order:
            Peer ordering defining matrix indices; defaults to sorted ids.
        """
        reserve = check_fraction(reserve_fraction, "reserve_fraction")
        order = list(order) if order is not None else topology.peers()
        index = {peer: i for i, peer in enumerate(order)}
        n = len(order)
        matrix = np.zeros((n, n))
        for peer in order:
            i = index[peer]
            neighbors = [p for p in topology.neighbors(peer) if p in index]
            if not neighbors:
                matrix[i, i] = 1.0
                continue
            matrix[i, i] = reserve
            share = (1.0 - reserve) / len(neighbors)
            for neighbor in neighbors:
                matrix[i, index[neighbor]] = share
        return cls(matrix)

    @classmethod
    def weighted_over_neighbors(
        cls,
        topology: OverlayTopology,
        weights: Mapping[int, float],
        reserve_fraction: float = 0.0,
        order: Optional[Sequence[int]] = None,
    ) -> "RoutingMatrix":
        """Routing proportional to per-neighbour attractiveness weights.

        ``weights[j]`` is the attractiveness of buying from peer *j* (e.g.
        its chunk availability × 1/price); peer *i* splits its spending over
        its neighbours proportionally to their weights.  Zero-weight
        neighbour sets fall back to uniform routing.
        """
        reserve = check_fraction(reserve_fraction, "reserve_fraction")
        order = list(order) if order is not None else topology.peers()
        index = {peer: i for i, peer in enumerate(order)}
        n = len(order)
        matrix = np.zeros((n, n))
        for peer in order:
            i = index[peer]
            neighbors = [p for p in topology.neighbors(peer) if p in index]
            if not neighbors:
                matrix[i, i] = 1.0
                continue
            matrix[i, i] = reserve
            raw = np.array([max(0.0, float(weights.get(p, 0.0))) for p in neighbors])
            if raw.sum() <= 0:
                raw = np.ones(len(neighbors))
            raw = raw / raw.sum() * (1.0 - reserve)
            for neighbor, share in zip(neighbors, raw):
                matrix[i, index[neighbor]] = share
        return cls(matrix)

    @classmethod
    def from_purchase_rates(
        cls,
        purchase_rates: Sequence[Sequence[float]],
    ) -> "RoutingMatrix":
        """Build ``P`` from raw purchase (credit expenditure) rates.

        ``purchase_rates[i][j]`` is the rate at which peer *i* pays credits
        to peer *j* (``r_ji * s_j`` in the notation of Sec. V-C).  Each row is
        normalised; all-zero rows become a self loop.
        """
        rates = np.asarray(purchase_rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise ValueError("purchase_rates must be a square matrix")
        if np.any(rates < 0):
            raise ValueError("purchase_rates must be non-negative")
        n = rates.shape[0]
        matrix = np.zeros((n, n))
        for i in range(n):
            total = rates[i].sum()
            if total <= 0:
                matrix[i, i] = 1.0
            else:
                matrix[i] = rates[i] / total
        return cls(matrix)

    @classmethod
    def random_stochastic(
        cls,
        size: int,
        density: float = 1.0,
        reserve_fraction: float = 0.0,
        seed: Optional[int] = None,
    ) -> "RoutingMatrix":
        """A random row-stochastic matrix (for property tests and stress experiments).

        Parameters
        ----------
        size:
            Number of peers.
        density:
            Expected fraction of non-zero off-diagonal entries per row.
        reserve_fraction:
            Self-loop probability applied to every row.
        seed:
            RNG seed.
        """
        if size < 1:
            raise ValueError("size must be at least 1")
        density = check_fraction(density, "density")
        reserve = check_fraction(reserve_fraction, "reserve_fraction")
        rng = make_rng(seed, "random-stochastic")
        matrix = np.zeros((size, size))
        for i in range(size):
            mask = rng.random(size) < density
            mask[i] = False
            if not mask.any():
                # guarantee at least one outgoing edge (to a random other peer, if any)
                if size > 1:
                    j = int(rng.integers(size - 1))
                    j = j if j < i else j + 1
                    mask[j] = True
            raw = rng.random(size) * mask
            total = raw.sum()
            if total <= 0:
                matrix[i, i] = 1.0
                continue
            matrix[i] = raw / total * (1.0 - reserve)
            matrix[i, i] += reserve
        return cls(matrix)

    # ------------------------------------------------------------------ derived matrices

    def with_reserve_fraction(self, reserve_fraction: float) -> "RoutingMatrix":
        """Return a copy whose off-diagonal mass is scaled to make room for ``p_ii``."""
        reserve = check_fraction(reserve_fraction, "reserve_fraction")
        matrix = self._matrix.copy()
        n = self.size
        for i in range(n):
            off_diag = matrix[i].sum() - matrix[i, i]
            if off_diag <= 0:
                matrix[i] = 0.0
                matrix[i, i] = 1.0
                continue
            scale = (1.0 - reserve) / off_diag
            matrix[i] *= scale
            matrix[i, i] = reserve
        return RoutingMatrix(matrix)

    def restricted_to(self, indices: Sequence[int]) -> "RoutingMatrix":
        """Return the routing matrix restricted to ``indices`` (rows renormalised)."""
        idx = list(indices)
        sub = self._matrix[np.ix_(idx, idx)]
        n = len(idx)
        matrix = np.zeros((n, n))
        for i in range(n):
            total = sub[i].sum()
            if total <= 0:
                matrix[i, i] = 1.0
            else:
                matrix[i] = sub[i] / total
        return RoutingMatrix(matrix)

    def to_dict(self) -> Dict[str, object]:
        """Serialisable representation (size + nested list)."""
        return {"size": self.size, "matrix": self._matrix.tolist()}
