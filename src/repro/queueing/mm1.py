"""Single-queue building blocks: M/M/1 and M/M/1/K.

These closed-form models back-stop tests of the network classes (an open
Jackson network with one queue must agree with M/M/1) and provide the
per-peer view used in documentation examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["MM1Queue", "MM1KQueue"]


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue with Poisson arrivals ``λ`` and exponential service ``μ``."""

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")

    @property
    def utilization(self) -> float:
        """``ρ = λ / μ``."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether ``ρ < 1``."""
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise ValueError("the M/M/1 queue is unstable (rho >= 1)")

    @property
    def mean_queue_length(self) -> float:
        """Expected number in system ``ρ / (1 − ρ)``."""
        self._require_stable()
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_waiting_time(self) -> float:
        """Expected time in system ``1 / (μ − λ)``."""
        self._require_stable()
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def idle_probability(self) -> float:
        """``P(empty) = 1 − ρ``."""
        self._require_stable()
        return 1.0 - self.utilization

    def queue_length_pmf(self, max_jobs: int) -> np.ndarray:
        """Geometric PMF of the number in system, truncated at ``max_jobs``."""
        self._require_stable()
        rho = self.utilization
        support = np.arange(int(max_jobs) + 1)
        return (1.0 - rho) * rho**support

    def tail_probability(self, threshold: int) -> float:
        """``P(queue length >= threshold) = ρ^threshold``."""
        self._require_stable()
        threshold = int(threshold)
        if threshold <= 0:
            return 1.0
        return float(self.utilization**threshold)


@dataclass(frozen=True)
class MM1KQueue:
    """An M/M/1/K queue (finite buffer of K jobs, arrivals beyond K are lost)."""

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        if int(self.capacity) < 1:
            raise ValueError("capacity must be at least 1")

    @property
    def utilization(self) -> float:
        """Offered load ``ρ = λ / μ`` (may exceed 1 for a finite buffer)."""
        return self.arrival_rate / self.service_rate

    def queue_length_pmf(self) -> np.ndarray:
        """Exact PMF of the number in system over ``0..K``."""
        rho = self.utilization
        k = int(self.capacity)
        support = np.arange(k + 1)
        if np.isclose(rho, 1.0):
            return np.full(k + 1, 1.0 / (k + 1))
        weights = rho**support
        return weights / weights.sum()

    @property
    def blocking_probability(self) -> float:
        """Probability an arriving job finds the buffer full and is lost."""
        return float(self.queue_length_pmf()[-1])

    @property
    def mean_queue_length(self) -> float:
        """Expected number in system."""
        pmf = self.queue_length_pmf()
        return float(np.dot(np.arange(len(pmf)), pmf))

    @property
    def effective_throughput(self) -> float:
        """Rate of jobs actually served: ``λ (1 − P_block)``."""
        return self.arrival_rate * (1.0 - self.blocking_probability)
