"""Exact mean value analysis (MVA) for closed Jackson networks.

MVA computes mean queue lengths and throughputs of a closed product-form
network *without* evaluating the normalisation constant, by the recursion
(Reiser & Lavenberg):

    W_i(m) = (1 + L_i(m - 1)) / mu_i
    X(m)   = m / sum_i e_i W_i(m)
    L_i(m) = X(m) e_i W_i(m)

where ``e_i`` are visit ratios (any solution of ``e P = e``), ``m`` runs
from 1 to the population ``M``.  The module serves as an independent
cross-check of the convolution-based results in
:class:`repro.queueing.closed.ClosedJacksonNetwork`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["mva_mean_queue_lengths", "mva_throughputs", "mva_full"]


def _validate(visit_ratios: Sequence[float], service_rates: Sequence[float], population: int):
    e = np.asarray(visit_ratios, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    if e.ndim != 1 or e.size == 0:
        raise ValueError("visit_ratios must be a non-empty one-dimensional sequence")
    if e.shape != mu.shape:
        raise ValueError("visit_ratios and service_rates must have the same length")
    if np.any(e < 0) or e.sum() <= 0:
        raise ValueError("visit_ratios must be non-negative with a positive sum")
    if np.any(mu <= 0):
        raise ValueError("service_rates must be strictly positive")
    if int(population) < 0:
        raise ValueError("population must be non-negative")
    return e, mu, int(population)


def mva_full(
    visit_ratios: Sequence[float],
    service_rates: Sequence[float],
    population: int,
) -> Tuple[np.ndarray, float]:
    """Run exact MVA and return ``(mean queue lengths, network throughput)``.

    The network throughput is reported in the reference units of the visit
    ratios: queue *i*'s own throughput is ``X * e_i``.
    """
    e, mu, m_total = _validate(visit_ratios, service_rates, population)
    lengths = np.zeros_like(e)
    throughput = 0.0
    for m in range(1, m_total + 1):
        waits = (1.0 + lengths) / mu
        denom = float(np.dot(e, waits))
        throughput = m / denom
        lengths = throughput * e * waits
    return lengths, float(throughput)


def mva_mean_queue_lengths(
    visit_ratios: Sequence[float],
    service_rates: Sequence[float],
    population: int,
) -> np.ndarray:
    """Mean queue length (expected wealth) of every queue at the given population."""
    lengths, _ = mva_full(visit_ratios, service_rates, population)
    return lengths


def mva_throughputs(
    visit_ratios: Sequence[float],
    service_rates: Sequence[float],
    population: int,
) -> np.ndarray:
    """Per-queue throughput ``X * e_i`` at the given population."""
    e, _, _ = _validate(visit_ratios, service_rates, population)
    _, network_throughput = mva_full(visit_ratios, service_rates, population)
    return network_throughput * e
