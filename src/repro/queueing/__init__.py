"""Jackson queueing-network analytics.

This package implements the analytical machinery of Secs. III–V of the
paper:

* :class:`~repro.queueing.routing.RoutingMatrix` — the credit transfer
  probability matrix ``P`` (row-stochastic), with constructors from overlay
  topologies and trading preferences;
* :mod:`~repro.queueing.traffic` — the traffic equations ``λP = λ``
  (Lemma 1: a positive solution always exists, by Perron–Frobenius);
* :class:`~repro.queueing.closed.ClosedJacksonNetwork` — product-form
  equilibrium of a closed network (Eq. 3), exact normalisation constant via
  Buzen's convolution algorithm, exact marginal queue-length distributions
  and moments, and exact Gini/Lorenz statistics of the wealth distribution;
* :mod:`~repro.queueing.approximations` — the paper's multinomial
  approximation of the marginal PMF (Eqs. 5–8) used in Figs. 2–4;
* :class:`~repro.queueing.open_network.OpenJacksonNetwork` — open Jackson
  networks used for the churn discussion (Sec. VI-E);
* :mod:`~repro.queueing.mva` — exact mean value analysis as an independent
  cross-check of the convolution results;
* :mod:`~repro.queueing.mm1` — single-queue M/M/1 / M/M/1/K building blocks.
"""

from repro.queueing.routing import RoutingMatrix
from repro.queueing.traffic import (
    TrafficSolution,
    solve_traffic_equations,
    spectral_radius,
    stationary_distribution,
)
from repro.queueing.closed import ClosedJacksonNetwork
from repro.queueing.open_network import OpenJacksonNetwork, OpenQueueResult
from repro.queueing.approximations import (
    multinomial_marginal_pmf,
    symmetric_marginal_pmf,
    symmetric_zero_probability,
)
from repro.queueing.mva import mva_mean_queue_lengths, mva_throughputs
from repro.queueing.mm1 import MM1Queue, MM1KQueue

__all__ = [
    "RoutingMatrix",
    "TrafficSolution",
    "solve_traffic_equations",
    "stationary_distribution",
    "spectral_radius",
    "ClosedJacksonNetwork",
    "OpenJacksonNetwork",
    "OpenQueueResult",
    "multinomial_marginal_pmf",
    "symmetric_marginal_pmf",
    "symmetric_zero_probability",
    "mva_mean_queue_lengths",
    "mva_throughputs",
    "MM1Queue",
    "MM1KQueue",
]
