"""Open Jackson networks (external arrivals and departures).

Sec. VI-E of the paper models a dynamic P2P overlay — peers join with fresh
credits and leave taking their credits away — as an *open* Jackson network.
In an open network the traffic equations become

    λ = α + λ P,

where ``α`` is the external arrival-rate vector, and each queue behaves as
an independent M/M/1 queue with utilization ``ρ_i = λ_i / μ_i`` provided
``ρ_i < 1`` for every queue (the stability condition).  At equilibrium
queue lengths are geometrically distributed, so the expected wealth profile
and its inequality statistics follow in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.queueing.routing import RoutingMatrix

__all__ = ["OpenQueueResult", "OpenJacksonNetwork"]

MatrixLike = Union[RoutingMatrix, Sequence[Sequence[float]], np.ndarray]


@dataclass(frozen=True)
class OpenQueueResult:
    """Per-queue equilibrium quantities of an open Jackson network."""

    arrival_rate: float
    service_rate: float
    utilization: float
    stable: bool
    mean_queue_length: float
    idle_probability: float


class OpenJacksonNetwork:
    """An open Jackson network with external arrivals, routing and departures.

    Parameters
    ----------
    routing:
        Sub-stochastic routing matrix ``P``: ``P[i, j]`` is the probability a
        job leaving queue *i* moves to queue *j*; ``1 - sum_j P[i, j]`` is
        the probability it leaves the network (the peer departing with its
        credit).  Strictly stochastic rows are allowed but then no credit
        ever exits through that queue.
    external_arrivals:
        External arrival rate ``α_i`` into each queue (credits minted when a
        peer joins).
    service_rates:
        Service (spending) rates ``μ_i``.
    """

    def __init__(
        self,
        routing: MatrixLike,
        external_arrivals: Sequence[float],
        service_rates: Sequence[float],
    ) -> None:
        if isinstance(routing, RoutingMatrix):
            matrix = routing.matrix
        else:
            matrix = np.asarray(routing, dtype=float)
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise ValueError("routing must be a square matrix")
            if np.any(matrix < 0):
                raise ValueError("routing must be non-negative")
            row_sums = matrix.sum(axis=1)
            if np.any(row_sums > 1.0 + 1e-9):
                raise ValueError("routing rows must sum to at most 1 in an open network")
        self._p = matrix
        self._alpha = np.asarray(external_arrivals, dtype=float)
        self._mu = np.asarray(service_rates, dtype=float)
        n = self._p.shape[0]
        if self._alpha.shape != (n,) or self._mu.shape != (n,):
            raise ValueError("external_arrivals and service_rates must match the routing size")
        if np.any(self._alpha < 0):
            raise ValueError("external arrival rates must be non-negative")
        if np.any(self._mu <= 0):
            raise ValueError("service rates must be strictly positive")
        self._lambda = self._solve_traffic()

    # ------------------------------------------------------------------ traffic

    def _solve_traffic(self) -> np.ndarray:
        """Solve ``λ = α + λ P`` i.e. ``λ (I - P) = α``."""
        n = self._p.shape[0]
        identity = np.eye(n)
        try:
            lam = np.linalg.solve((identity - self._p).T, self._alpha)
        except np.linalg.LinAlgError as error:
            raise ValueError(
                "the open-network traffic equations are singular; the routing "
                "matrix must allow every job to eventually leave the network"
            ) from error
        if np.any(lam < -1e-9):
            raise ValueError("traffic equations produced negative arrival rates")
        return np.clip(lam, 0.0, None)

    # ------------------------------------------------------------------ accessors

    @property
    def num_queues(self) -> int:
        """Number of queues ``N``."""
        return int(self._p.shape[0])

    @property
    def arrival_rates(self) -> np.ndarray:
        """Total (external + routed) arrival rate at each queue."""
        return self._lambda.copy()

    @property
    def service_rates(self) -> np.ndarray:
        """Service (spending) rates ``μ``."""
        return self._mu.copy()

    @property
    def utilizations(self) -> np.ndarray:
        """Utilization ``ρ_i = λ_i / μ_i`` of each queue."""
        return self._lambda / self._mu

    def is_stable(self) -> bool:
        """Whether every queue satisfies ``ρ_i < 1`` (finite expected wealth everywhere)."""
        return bool(np.all(self.utilizations < 1.0))

    def unstable_queues(self) -> np.ndarray:
        """Indices of queues with ``ρ_i >= 1`` — the peers whose wealth diverges."""
        return np.flatnonzero(self.utilizations >= 1.0)

    # ------------------------------------------------------------------ equilibrium

    def queue_result(self, queue: int) -> OpenQueueResult:
        """Equilibrium summary of one queue (M/M/1 formulas)."""
        queue = int(queue)
        rho = float(self.utilizations[queue])
        stable = rho < 1.0
        mean_length = rho / (1.0 - rho) if stable else float("inf")
        idle = 1.0 - rho if stable else 0.0
        return OpenQueueResult(
            arrival_rate=float(self._lambda[queue]),
            service_rate=float(self._mu[queue]),
            utilization=rho,
            stable=stable,
            mean_queue_length=mean_length,
            idle_probability=idle,
        )

    def mean_queue_lengths(self) -> np.ndarray:
        """Expected wealth per peer (``inf`` for unstable queues)."""
        rho = self.utilizations
        with np.errstate(divide="ignore"):
            lengths = np.where(rho < 1.0, rho / (1.0 - rho), np.inf)
        return lengths

    def marginal_pmf(self, queue: int, max_jobs: int) -> np.ndarray:
        """Geometric queue-length PMF of ``queue`` truncated at ``max_jobs``."""
        rho = float(self.utilizations[int(queue)])
        if rho >= 1.0:
            raise ValueError("queue is unstable; its equilibrium distribution does not exist")
        support = np.arange(int(max_jobs) + 1)
        pmf = (1.0 - rho) * rho**support
        return pmf

    def total_throughput(self) -> float:
        """Aggregate external departure rate at equilibrium (equals total external arrivals)."""
        return float(self._alpha.sum())

    def expected_total_wealth(self) -> float:
        """Expected total credits in the network at equilibrium (``inf`` if unstable)."""
        lengths = self.mean_queue_lengths()
        return float(lengths.sum())
