"""Closed Jackson networks: product-form equilibrium and exact statistics.

A closed Jackson network with ``N`` single-server queues and ``M``
circulating jobs models the paper's credit market (Table I): ``M`` is the
total amount of credits, a queue's length ``B_i`` is peer *i*'s wealth, and
the product-form equilibrium (Eq. 3)

    Q{B_1 = b_1, ..., B_N = b_N} = (1 / Z_M) * prod_i u_i^{b_i}

is fully characterised by the normalized utilizations ``u_i`` and the
normalisation constant ``Z_M`` (the partition function ``G(M)``).

This module computes ``G`` with Buzen's convolution algorithm in log space
(so networks with tens of thousands of credits neither overflow nor
underflow), from which exact marginal queue-length distributions, means,
idle probabilities, throughputs and Lorenz/Gini statistics of the expected
wealth profile follow.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.queueing.routing import RoutingMatrix
from repro.queueing.traffic import normalized_utilizations, solve_traffic_equations

__all__ = ["ClosedJacksonNetwork"]


def _log_diff_exp(log_a: float, log_b: float) -> float:
    """Return ``log(exp(log_a) - exp(log_b))`` assuming ``log_a >= log_b``."""
    if log_b == -np.inf:
        return log_a
    delta = log_b - log_a
    if delta >= 0.0:
        # Equal (or numerically crossed): the difference is ~0.
        return -np.inf
    return log_a + np.log1p(-np.exp(delta))


class ClosedJacksonNetwork:
    """A closed Jackson queueing network (single-server queues, M circulating jobs).

    Parameters
    ----------
    utilizations:
        Relative utilizations of the queues.  Any positive scaling works
        because the product-form distribution only depends on ratios; the
        constructor renormalises so the maximum is 1 (Eq. 2 of the paper).
    total_jobs:
        Number of circulating jobs ``M`` (total credits in the market).

    Examples
    --------
    >>> network = ClosedJacksonNetwork([1.0, 1.0], total_jobs=3)
    >>> [round(p, 4) for p in network.marginal_pmf(0)]
    [0.25, 0.25, 0.25, 0.25]
    """

    def __init__(self, utilizations: Sequence[float], total_jobs: int) -> None:
        util = np.asarray(utilizations, dtype=float)
        if util.ndim != 1 or util.size == 0:
            raise ValueError("utilizations must be a non-empty one-dimensional sequence")
        if np.any(util <= 0):
            raise ValueError("utilizations must be strictly positive")
        if int(total_jobs) < 0:
            raise ValueError("total_jobs must be non-negative")
        self._u = util / util.max()
        self._m = int(total_jobs)
        self._log_g = self._buzen_log_partition(self._u, self._m)

    # ------------------------------------------------------------------ constructors

    @classmethod
    def from_rates(
        cls,
        arrival_rates: Sequence[float],
        service_rates: Sequence[float],
        total_jobs: int,
    ) -> "ClosedJacksonNetwork":
        """Build the network from arrival (earning) and service (spending) rates."""
        util = normalized_utilizations(arrival_rates, service_rates)
        util = np.clip(util, 1e-300, None)  # guard against exactly-zero arrival rates
        return cls(util, total_jobs)

    @classmethod
    def from_routing(
        cls,
        routing: Union[RoutingMatrix, Sequence[Sequence[float]]],
        service_rates: Sequence[float],
        total_jobs: int,
    ) -> "ClosedJacksonNetwork":
        """Build the network by solving the traffic equations on ``routing`` first."""
        solution = solve_traffic_equations(routing)
        return cls.from_rates(solution.arrival_rates, service_rates, total_jobs)

    # ------------------------------------------------------------------ basic accessors

    @property
    def num_queues(self) -> int:
        """Number of queues (peers) ``N``."""
        return int(self._u.size)

    @property
    def total_jobs(self) -> int:
        """Number of circulating jobs (total credits) ``M``."""
        return self._m

    @property
    def utilizations(self) -> np.ndarray:
        """Normalized utilization vector ``u`` (max entry equals 1)."""
        return self._u.copy()

    @property
    def average_wealth(self) -> float:
        """Average jobs per queue ``c = M / N``."""
        return self._m / self.num_queues

    @property
    def log_partition_function(self) -> float:
        """``log G(M)`` — the log normalisation constant ``Z_M`` of Eq. (3)."""
        return float(self._log_g[self._m])

    def log_partition_at(self, jobs: int) -> float:
        """``log G(m)`` for any population ``m`` between 0 and M."""
        jobs = int(jobs)
        if jobs < 0:
            return -np.inf
        if jobs > self._m:
            raise ValueError(f"jobs must be at most {self._m}, got {jobs}")
        return float(self._log_g[jobs])

    # ------------------------------------------------------------------ partition function

    @staticmethod
    def _buzen_log_partition(utilizations: np.ndarray, total_jobs: int) -> np.ndarray:
        """Buzen's convolution algorithm in log space.

        Returns the array ``log G(0..M)`` for the full network.
        """
        log_u = np.log(utilizations)
        log_g = np.full(total_jobs + 1, -np.inf)
        log_g[0] = 0.0
        for log_ui in log_u:
            for m in range(1, total_jobs + 1):
                log_g[m] = np.logaddexp(log_g[m], log_ui + log_g[m - 1])
        return log_g

    # ------------------------------------------------------------------ joint distribution

    def log_joint_probability(self, occupancy: Sequence[int]) -> float:
        """``log Q{B_1 = b_1, ..., B_N = b_N}`` for a full occupancy vector (Eq. 3)."""
        occ = np.asarray(occupancy, dtype=int)
        if occ.size != self.num_queues:
            raise ValueError(f"occupancy must have length {self.num_queues}")
        if np.any(occ < 0):
            raise ValueError("occupancies must be non-negative")
        if occ.sum() != self._m:
            return -np.inf
        return float(np.sum(occ * np.log(self._u)) - self._log_g[self._m])

    def joint_probability(self, occupancy: Sequence[int]) -> float:
        """``Q{B_1 = b_1, ..., B_N = b_N}`` (Eq. 3); zero if the occupancies don't sum to M."""
        return float(np.exp(self.log_joint_probability(occupancy)))

    # ------------------------------------------------------------------ marginals

    def tail_probability(self, queue: int, threshold: int) -> float:
        """``P(B_queue >= threshold)`` — exact, via ``u_i^k G(M-k) / G(M)``."""
        threshold = int(threshold)
        if threshold <= 0:
            return 1.0
        if threshold > self._m:
            return 0.0
        log_u = np.log(self._u[queue])
        log_tail = threshold * log_u + self._log_g[self._m - threshold] - self._log_g[self._m]
        return float(np.exp(min(log_tail, 0.0)))

    def marginal_pmf(self, queue: int) -> np.ndarray:
        """Exact marginal distribution ``P(B_queue = k)`` for ``k = 0..M``."""
        queue = int(queue)
        if not 0 <= queue < self.num_queues:
            raise IndexError(f"queue index out of range: {queue}")
        log_u = np.log(self._u[queue])
        pmf = np.zeros(self._m + 1)
        for k in range(self._m + 1):
            log_high = self._log_g[self._m - k]
            log_low = log_u + self._log_g[self._m - k - 1] if k < self._m else -np.inf
            log_term = _log_diff_exp(log_high, log_low)
            if log_term == -np.inf:
                pmf[k] = 0.0
            else:
                pmf[k] = np.exp(k * log_u + log_term - self._log_g[self._m])
        # Numerical cleanup: clip tiny negatives and renormalise.
        pmf = np.clip(pmf, 0.0, None)
        total = pmf.sum()
        if total > 0:
            pmf /= total
        return pmf

    def idle_probability(self, queue: int) -> float:
        """``P(B_queue = 0)`` — the bankruptcy probability of the peer."""
        return 1.0 - self.tail_probability(queue, 1)

    def idle_probabilities(self) -> np.ndarray:
        """Bankruptcy probabilities of every queue."""
        return np.array([self.idle_probability(i) for i in range(self.num_queues)])

    def mean_queue_length(self, queue: int) -> float:
        """``E[B_queue]`` — expected wealth of the peer, via the tail-sum formula."""
        queue = int(queue)
        log_u = np.log(self._u[queue])
        log_terms = np.array(
            [
                k * log_u + self._log_g[self._m - k] - self._log_g[self._m]
                for k in range(1, self._m + 1)
            ]
        )
        if log_terms.size == 0:
            return 0.0
        peak = log_terms.max()
        return float(np.exp(peak) * np.sum(np.exp(log_terms - peak)))

    def mean_queue_lengths(self) -> np.ndarray:
        """Expected wealth of every peer; the entries sum to M."""
        return np.array([self.mean_queue_length(i) for i in range(self.num_queues)])

    def queue_length_variance(self, queue: int) -> float:
        """Variance of ``B_queue`` (computed from the exact marginal PMF)."""
        pmf = self.marginal_pmf(queue)
        support = np.arange(self._m + 1)
        mean = float((support * pmf).sum())
        second = float((support**2 * pmf).sum())
        return max(0.0, second - mean * mean)

    # ------------------------------------------------------------------ throughput / activity

    def relative_throughput(self, queue: int) -> float:
        """Effective service completion rate of the queue, relative to ``μ_i``.

        This is ``P(B_queue > 0)`` — the fraction of time the peer is able
        to spend credits; multiplying by the peer's ``μ_i`` gives the actual
        credit departure rate of Eq. (9).
        """
        return self.tail_probability(queue, 1)

    def relative_throughputs(self) -> np.ndarray:
        """``P(B_i > 0)`` for every queue."""
        return np.array([self.relative_throughput(i) for i in range(self.num_queues)])

    # ------------------------------------------------------------------ inequality of expected wealth

    def expected_wealth_gini(self) -> float:
        """Gini index of the vector of expected wealths ``E[B_i]``.

        This measures the *systematic* skew created by heterogeneous
        utilizations; the Gini of a random wealth sample also includes
        stochastic spread and is computed in :mod:`repro.core.metrics`.
        """
        from repro.core.metrics import gini_index  # local import to avoid a cycle

        return gini_index(self.mean_queue_lengths())

    def sample_occupancy(
        self, rng: Optional[np.random.Generator] = None, num_samples: int = 1
    ) -> np.ndarray:
        """Draw occupancy vectors from the product-form equilibrium (Eq. 3).

        Sampling uses the standard sequential conditional decomposition:
        queue 1's wealth is drawn from its exact marginal for the full
        population, queue 2's from the network with queue 1 removed and the
        remaining jobs, and so on.  The returned array has shape
        ``(num_samples, N)`` and every row sums to ``M``.
        """
        rng = rng if rng is not None else np.random.default_rng()
        samples = np.zeros((int(num_samples), self.num_queues), dtype=int)
        for s in range(int(num_samples)):
            remaining_jobs = self._m
            remaining_util = list(self._u)
            for position in range(self.num_queues):
                if position == self.num_queues - 1:
                    samples[s, position] = remaining_jobs
                    break
                if remaining_jobs == 0:
                    break
                sub_network = ClosedJacksonNetwork(remaining_util, remaining_jobs)
                pmf = sub_network.marginal_pmf(0)
                draw = int(rng.choice(len(pmf), p=pmf))
                samples[s, position] = draw
                remaining_jobs -= draw
                remaining_util = remaining_util[1:]
        return samples

    def __repr__(self) -> str:
        return (
            f"ClosedJacksonNetwork(num_queues={self.num_queues}, "
            f"total_jobs={self.total_jobs})"
        )
