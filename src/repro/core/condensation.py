"""Condensation analysis: threshold ``T``, Theorems 2–3 and Eq. (9).

Asymptotic criterion (Sec. V-A).  Let ``u_i`` be the normalized utilizations
of Eq. (2) and ``f(w)`` their limiting density on [0, 1] as the network
grows.  The threshold constant of Eq. (4) is

    T = lim_{z → 1⁻} ∫₀¹ w / (1 − z w) · f(w) dw .

If the average peer wealth ``c = M / N`` satisfies ``c ≤ T`` no peer's
expected wealth diverges (Theorem 2); if ``c > T`` at least one peer's
expected wealth grows without bound (Theorem 3) — wealth condensation.
Under symmetric utilization (all ``u_i`` equal) the threshold is infinite
and condensation never occurs (Corollary).

The mechanism is the same as Bose–Einstein-type condensation in zero-range
processes: in the grand-canonical view each peer's expected wealth is
``z u_i / (1 − z u_i)`` for a fugacity ``z`` chosen so expected wealths sum
to ``M``; once the non-maximal peers saturate (``z → 1``) any additional
wealth has nowhere to go but the maximal-utilization peers.

For *finite* networks this module also solves for the fugacity numerically,
yielding grand-canonical estimates of every peer's expected wealth and of
the bankruptcy probabilities, and implements the content-exchange
efficiency formula of Eq. (9), ``1 − e^{−c}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import integrate, optimize

__all__ = [
    "condensation_threshold",
    "condensation_threshold_from_density",
    "is_symmetric_utilization",
    "solve_fugacity",
    "grand_canonical_wealth",
    "exchange_efficiency",
    "exact_exchange_efficiency",
    "CondensationReport",
    "diagnose_condensation",
]

DensityFunction = Callable[[float], float]


def _as_utilizations(utilizations: Sequence[float]) -> np.ndarray:
    arr = np.asarray(utilizations, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("utilizations must be a non-empty one-dimensional sequence")
    if np.any(arr <= 0):
        raise ValueError("utilizations must be strictly positive")
    peak = arr.max()
    if peak <= 0:
        raise ValueError("at least one utilization must be positive")
    return arr / peak


def is_symmetric_utilization(utilizations: Sequence[float], rtol: float = 1e-6) -> bool:
    """Whether all normalized utilizations are (numerically) equal (the Corollary case)."""
    arr = _as_utilizations(utilizations)
    return bool(np.allclose(arr, arr[0], rtol=rtol, atol=rtol))


def condensation_threshold(
    utilizations: Sequence[float],
    saturation_tolerance: float = 1e-9,
) -> float:
    """The threshold ``T`` of Eq. (4) from an empirical utilization sample.

    For a finite sample the limit in Eq. (4) is evaluated as the per-peer
    average of ``u_i / (1 − u_i)`` over the *non-maximal* peers: the peers
    with ``u_i = 1`` (within ``saturation_tolerance``) are the candidate
    condensate sites whose capacity is unbounded and therefore excluded from
    the background capacity.  Returns ``inf`` when every peer is maximal
    (symmetric utilization — the Corollary).

    Parameters
    ----------
    utilizations:
        Utilization values ``λ_i / μ_i`` (normalised internally so the
        maximum is 1, per Eq. (2)).
    saturation_tolerance:
        Values above ``1 − saturation_tolerance`` count as maximal.
    """
    arr = _as_utilizations(utilizations)
    background = arr[arr < 1.0 - saturation_tolerance]
    if background.size == 0:
        return math.inf
    contributions = background / (1.0 - background)
    return float(contributions.sum() / arr.size)


def condensation_threshold_from_density(
    density: DensityFunction,
    singular_exponent_probe: float = 1e-6,
) -> float:
    """The threshold ``T`` of Eq. (4) from a continuous utilization density ``f``.

    Numerically evaluates ``∫₀¹ w f(w) / (1 − w) dw``.  The integral is
    improper at ``w = 1``; when ``f(1) > 0`` it diverges and the function
    returns ``inf`` (detected by probing the mass near 1 against the probe
    exponent), otherwise an adaptive quadrature value is returned.

    Parameters
    ----------
    density:
        Probability density of the limiting utilization distribution on
        ``[0, 1]`` (it need not be exactly normalised; Eq. (4) uses it as
        given).
    singular_exponent_probe:
        Width of the neighbourhood of 1 used to decide divergence.
    """
    eps = float(singular_exponent_probe)
    near_one = float(density(1.0 - eps / 2.0))
    if near_one * eps > 0 and near_one > 0:
        # If f stays bounded away from 0 near w=1 the integrand ~ f(1)/(1-w),
        # whose integral diverges logarithmically.
        probe_inner = float(density(1.0 - eps))
        probe_outer = float(density(1.0 - math.sqrt(eps)))
        if min(probe_inner, probe_outer) > 0:
            # Estimate the local exponent alpha in f(w) ≈ C (1-w)^alpha.
            alpha = (math.log(probe_inner) - math.log(probe_outer)) / (
                math.log(eps) - 0.5 * math.log(eps)
            )
            if alpha <= 0.0:
                return math.inf

    def integrand(w: float) -> float:
        if w >= 1.0:
            return 0.0
        return w * float(density(w)) / (1.0 - w)

    value, _error = integrate.quad(integrand, 0.0, 1.0, points=[1.0 - eps], limit=200)
    if not math.isfinite(value) or value > 1e12:
        return math.inf
    return float(value)


# ---------------------------------------------------------------------- grand-canonical view


def solve_fugacity(utilizations: Sequence[float], total_credits: float) -> float:
    """Solve for the fugacity ``z`` such that ``Σ_i z u_i / (1 − z u_i) = M``.

    Returns a value in ``(0, 1)`` when the constraint can be met with every
    peer's expected wealth finite, and exactly ``1.0`` when it cannot (the
    condensation regime, where the surplus piles on the maximal peers).
    """
    arr = _as_utilizations(utilizations)
    total_credits = float(total_credits)
    if total_credits < 0:
        raise ValueError("total_credits must be non-negative")
    if total_credits == 0:
        return 0.0
    background = arr[arr < 1.0 - 1e-12]
    saturated_count = arr.size - background.size

    def expected_total(z: float) -> float:
        return float(np.sum(z * arr / (1.0 - z * arr + 1e-300)))

    # If even with z arbitrarily close to 1 the background cannot absorb M
    # (and there are saturated sites to absorb the surplus), report z = 1.
    if saturated_count > 0:
        background_capacity = (
            float(np.sum(background / (1.0 - background))) if background.size else 0.0
        )
        if total_credits >= background_capacity + saturated_count * 1e12:
            return 1.0
    upper = 1.0 - 1e-12
    if expected_total(upper) < total_credits:
        return 1.0
    solution = optimize.brentq(
        lambda z: expected_total(z) - total_credits, 0.0, upper, xtol=1e-14
    )
    return float(solution)


def grand_canonical_wealth(
    utilizations: Sequence[float], total_credits: float
) -> np.ndarray:
    """Grand-canonical estimate of every peer's expected wealth.

    ``E[B_i] ≈ z u_i / (1 − z u_i)`` with the fugacity from
    :func:`solve_fugacity`; in the condensation regime (``z = 1``) the
    background peers take their saturation values and the surplus is split
    evenly among the maximal-utilization peers.
    """
    arr = _as_utilizations(utilizations)
    total_credits = float(total_credits)
    z = solve_fugacity(arr, total_credits)
    if z < 1.0:
        return z * arr / (1.0 - z * arr)
    saturated = arr >= 1.0 - 1e-12
    wealth = np.where(saturated, 0.0, arr / (1.0 - arr + 1e-300))
    surplus = max(0.0, total_credits - float(wealth.sum()))
    count = int(saturated.sum())
    if count > 0:
        wealth = wealth + saturated.astype(float) * (surplus / count)
    return wealth


# ---------------------------------------------------------------------- efficiency (Eq. 9)


def exchange_efficiency(average_wealth: float) -> float:
    """Large-network content-exchange efficiency ``1 − e^{−c}`` of Eq. (9).

    This is the fraction of its maximum spending rate a peer actually
    achieves once bankruptcies are accounted for; multiplying by ``μ_i``
    gives the actual credit departure (and hence download) rate.
    """
    average_wealth = float(average_wealth)
    if average_wealth < 0:
        raise ValueError("average_wealth must be non-negative")
    return 1.0 - math.exp(-average_wealth)


def exact_exchange_efficiency(num_peers: int, total_credits: int) -> float:
    """Finite-N version of Eq. (9): ``1 − ((N−1)/N)^M`` under symmetric utilization."""
    num_peers = int(num_peers)
    total_credits = int(total_credits)
    if num_peers < 1:
        raise ValueError("num_peers must be at least 1")
    if total_credits < 0:
        raise ValueError("total_credits must be non-negative")
    if num_peers == 1:
        return 0.0 if total_credits == 0 else 1.0
    return 1.0 - ((num_peers - 1) / num_peers) ** total_credits


# ---------------------------------------------------------------------- diagnosis


@dataclass(frozen=True)
class CondensationReport:
    """Outcome of :func:`diagnose_condensation`.

    Attributes
    ----------
    threshold:
        The condensation threshold ``T`` of Eq. (4) (``inf`` for symmetric
        utilization).
    average_wealth:
        The average wealth ``c`` the report was evaluated at.
    condenses:
        True when ``c > T`` — Theorem 3 predicts condensation.
    symmetric:
        True when the utilization vector is symmetric (the Corollary case).
    fugacity:
        The grand-canonical fugacity ``z`` (1.0 in the condensation regime).
    condensate_peers:
        Indices of the maximal-utilization peers onto which surplus wealth
        condenses when ``condenses`` is True.
    expected_wealth:
        Grand-canonical estimate of every peer's expected wealth.
    """

    threshold: float
    average_wealth: float
    condenses: bool
    symmetric: bool
    fugacity: float
    condensate_peers: tuple
    expected_wealth: np.ndarray


def diagnose_condensation(
    utilizations: Sequence[float],
    average_wealth: float,
    num_peers: Optional[int] = None,
) -> CondensationReport:
    """Full condensation diagnosis for a utilization profile and average wealth ``c``.

    Parameters
    ----------
    utilizations:
        Utilization values (normalised internally).
    average_wealth:
        Average credits per peer ``c``.
    num_peers:
        Population used to convert ``c`` to total credits for the fugacity
        solve; defaults to ``len(utilizations)``.
    """
    arr = _as_utilizations(utilizations)
    average_wealth = float(average_wealth)
    if average_wealth < 0:
        raise ValueError("average_wealth must be non-negative")
    n = int(num_peers) if num_peers is not None else arr.size
    threshold = condensation_threshold(arr)
    symmetric = is_symmetric_utilization(arr)
    total = average_wealth * n
    fugacity = solve_fugacity(arr, total)
    wealth = grand_canonical_wealth(arr, total)
    condensate = tuple(int(i) for i in np.flatnonzero(arr >= 1.0 - 1e-12))
    condenses = (not symmetric) and (average_wealth > threshold)
    return CondensationReport(
        threshold=threshold,
        average_wealth=average_wealth,
        condenses=condenses,
        symmetric=symmetric,
        fugacity=fugacity,
        condensate_peers=condensate,
        expected_wealth=wealth,
    )
