"""Spending-rate policies (Sec. VI-D).

A peer's maximum credit spending rate ``μ_i`` governs how fast it converts
wealth back into downloads.  The paper contrasts a *fixed* rate with a
*dynamic* rule in which a peer spends more aggressively when its wealth
exceeds a threshold ``m``:

    μ_i = μ_i^s · B_i / m   if B_i > m
    μ_i = μ_i^s             if B_i ≤ m

Dynamic adjustment was shown (Fig. 10) to reduce the stabilised Gini index,
because rich peers recirculate their surplus instead of hoarding it.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SpendingPolicy", "FixedSpendingPolicy", "DynamicSpendingPolicy"]


class SpendingPolicy:
    """Maps a peer's base spending rate and current wealth to its effective rate."""

    def effective_rate(self, base_rate: float, wealth: float) -> float:
        """Return the effective maximum spending rate ``μ_i`` right now."""
        raise NotImplementedError

    def effective_rate_vector(
        self, base_rates: np.ndarray, wealths: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`effective_rate` over aligned rate/wealth arrays.

        The base implementation falls back to the scalar method element by
        element; the built-in policies override it with array expressions
        that apply the *same* floating-point operations in the same order,
        so both paths return bit-identical rates.  Simulator hot loops call
        this once per round instead of once per peer.

        Overrides preserve the dtype of ``base_rates`` (the narrow-dtype
        simulators pass float32 state and expect float32 rates back); the
        scalar fallback computes in float64 and casts down at the end.
        """
        rates = np.array(
            [
                self.effective_rate(float(base), float(wealth))
                for base, wealth in zip(base_rates, wealths)
            ],
            dtype=float,
        )
        return rates.astype(np.asarray(base_rates).dtype, copy=False)

    def describe(self) -> str:
        """One-line description for experiment legends."""
        raise NotImplementedError


class FixedSpendingPolicy(SpendingPolicy):
    """The effective rate always equals the base rate (the paper's default)."""

    def effective_rate(self, base_rate: float, wealth: float) -> float:
        return float(base_rate)

    def effective_rate_vector(
        self, base_rates: np.ndarray, wealths: np.ndarray
    ) -> np.ndarray:
        # Dtype-preserving: float64 input (the default representation)
        # passes through untouched, bit-identical to the historical
        # ``asarray(..., dtype=float)``.
        return np.asarray(base_rates)

    def describe(self) -> str:
        return "fixed spending rate"


class DynamicSpendingPolicy(SpendingPolicy):
    """Wealth-proportional acceleration above a threshold (the Sec. VI-D rule).

    Parameters
    ----------
    wealth_threshold:
        The threshold ``m``; below or at it the base rate applies, above it
        the rate scales as ``base_rate * wealth / m``.
    max_multiplier:
        Optional cap on the acceleration factor so a very rich peer does not
        acquire an unphysically large spending rate (``None`` = uncapped,
        matching the paper's formula).
    """

    def __init__(self, wealth_threshold: float, max_multiplier: float = None) -> None:
        self.wealth_threshold = check_positive(wealth_threshold, "wealth_threshold")
        if max_multiplier is not None:
            max_multiplier = check_positive(max_multiplier, "max_multiplier")
            if max_multiplier < 1.0:
                raise ValueError("max_multiplier must be at least 1")
        self.max_multiplier = max_multiplier

    def effective_rate(self, base_rate: float, wealth: float) -> float:
        base_rate = float(base_rate)
        wealth = max(0.0, float(wealth))
        if wealth <= self.wealth_threshold:
            return base_rate
        multiplier = wealth / self.wealth_threshold
        if self.max_multiplier is not None:
            multiplier = min(multiplier, self.max_multiplier)
        return base_rate * multiplier

    def effective_rate_vector(
        self, base_rates: np.ndarray, wealths: np.ndarray
    ) -> np.ndarray:
        # Dtype-preserving (python-scalar thresholds do not upcast float32
        # arrays); float64 inputs follow the exact historical operations.
        base_rates = np.asarray(base_rates)
        wealths = np.maximum(np.asarray(wealths), 0.0)
        multiplier = wealths / self.wealth_threshold
        if self.max_multiplier is not None:
            multiplier = np.minimum(multiplier, self.max_multiplier)
        return np.where(wealths <= self.wealth_threshold, base_rates, base_rates * multiplier)

    def describe(self) -> str:
        if self.max_multiplier is None:
            return f"dynamic spending rate (threshold m={self.wealth_threshold:g})"
        return (
            f"dynamic spending rate (threshold m={self.wealth_threshold:g}, "
            f"cap {self.max_multiplier:g}x)"
        )
