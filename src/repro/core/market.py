"""The credit market model and its mapping onto a queueing network (Table I).

:class:`CreditMarket` is the paper's central abstraction: a population of
peers on an overlay, each with an earning rate ``λ_i``, a maximum spending
rate ``μ_i``, a wallet, a pricing scheme and trading preferences encoded in
the routing matrix ``P``.  The class

* derives ``μ_i`` and ``P`` from chunk transfer rates and prices using the
  relations of Sec. V-C (``μ_i p_ij = r_ji s_j`` hence
  ``μ_i = Σ_j r_ji s_j``);
* solves the traffic equations for the equilibrium ``λ`` (Lemma 1);
* exposes the normalized utilizations of Eq. (2) and the condensation
  diagnosis of Theorems 2–3;
* converts itself into a :class:`~repro.queueing.closed.ClosedJacksonNetwork`
  (the Table I mapping) for exact finite-network statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.condensation import CondensationReport, diagnose_condensation
from repro.core.credits import CreditLedger
from repro.core.pricing import PricingScheme, UniformPricing
from repro.overlay.topology import OverlayTopology
from repro.queueing.closed import ClosedJacksonNetwork
from repro.queueing.routing import RoutingMatrix
from repro.queueing.traffic import (
    TrafficSolution,
    normalized_utilizations,
    solve_traffic_equations,
)
from repro.utils.validation import check_fraction, check_positive

__all__ = ["MarketEquilibrium", "CreditMarket"]


@dataclass(frozen=True)
class MarketEquilibrium:
    """Equilibrium summary of a credit market.

    Attributes
    ----------
    arrival_rates:
        The equilibrium earning-rate vector ``λ`` (scaled so no entry
        exceeds the corresponding spending rate, honouring ``λ_i ≤ μ_i``).
    service_rates:
        The maximum spending rates ``μ``.
    utilizations:
        Normalized utilizations ``u`` of Eq. (2).
    traffic_residual:
        ``max |λP − λ|`` of the reported solution.
    condensation:
        The condensation diagnosis at the market's average wealth.
    """

    arrival_rates: np.ndarray
    service_rates: np.ndarray
    utilizations: np.ndarray
    traffic_residual: float
    condensation: CondensationReport


class CreditMarket:
    """A credit-incentivized P2P content market.

    Parameters
    ----------
    topology:
        The P2P overlay; trading happens only between neighbours.
    initial_credits:
        Initial wealth ``c`` endowed to every peer (the paper's per-peer
        initial credit amount).
    pricing:
        Chunk pricing scheme; defaults to uniform pricing at 1 credit.
    spending_rates:
        Optional per-peer maximum spending rates ``μ_i``.  When omitted they
        are derived from ``chunk_rates`` and the pricing scheme via
        ``μ_i = Σ_j r_ji s_j`` (Sec. V-C); when ``chunk_rates`` is also
        omitted a uniform streaming rate of 1 chunk/s is assumed.
    chunk_rates:
        Optional mapping ``{buyer: {seller: chunks per second}}`` giving the
        long-run chunk transfer rates ``r_ji`` used to derive ``μ`` and ``P``.
    reserve_fraction:
        Fraction of credits each peer withholds from trading (``p_ii``).
    """

    def __init__(
        self,
        topology: OverlayTopology,
        initial_credits: float = 100.0,
        pricing: Optional[PricingScheme] = None,
        spending_rates: Optional[Mapping[int, float]] = None,
        chunk_rates: Optional[Mapping[int, Mapping[int, float]]] = None,
        reserve_fraction: float = 0.0,
    ) -> None:
        if topology.num_peers < 2:
            raise ValueError("a credit market needs at least 2 peers")
        self.topology = topology
        self.initial_credits = check_positive(initial_credits, "initial_credits")
        self.pricing = pricing if pricing is not None else UniformPricing(1.0)
        self.reserve_fraction = check_fraction(reserve_fraction, "reserve_fraction")
        self._order = topology.peers()
        self._index = {peer: i for i, peer in enumerate(self._order)}

        self.ledger = CreditLedger(record_transactions=False)
        for peer in self._order:
            self.ledger.open_wallet(peer, initial_credits)

        self._chunk_rates = self._normalize_chunk_rates(chunk_rates)
        self._mu = self._derive_spending_rates(spending_rates)
        self._routing = self._derive_routing_matrix()
        self._equilibrium: Optional[MarketEquilibrium] = None

    # ------------------------------------------------------------------ construction helpers

    def _normalize_chunk_rates(
        self, chunk_rates: Optional[Mapping[int, Mapping[int, float]]]
    ) -> Dict[int, Dict[int, float]]:
        """Fill in default chunk transfer rates (uniform streaming) when not provided.

        The default models the streaming case of Sec. V-C: every peer
        downloads at an aggregate rate of 1 chunk/s, split evenly over its
        neighbours.
        """
        rates: Dict[int, Dict[int, float]] = {}
        if chunk_rates is None:
            for buyer in self._order:
                neighbors = [p for p in self.topology.neighbors(buyer) if p in self._index]
                if not neighbors:
                    rates[buyer] = {}
                    continue
                share = 1.0 / len(neighbors)
                rates[buyer] = {seller: share for seller in neighbors}
            return rates
        for buyer, sellers in chunk_rates.items():
            buyer = int(buyer)
            if buyer not in self._index:
                raise KeyError(f"chunk_rates references unknown peer {buyer}")
            rates[buyer] = {}
            for seller, rate in sellers.items():
                seller = int(seller)
                if seller not in self._index:
                    raise KeyError(f"chunk_rates references unknown peer {seller}")
                if not self.topology.has_edge(buyer, seller):
                    raise ValueError(
                        f"chunk_rates includes non-neighbour pair ({buyer}, {seller})"
                    )
                if rate < 0:
                    raise ValueError("chunk rates must be non-negative")
                rates[buyer][seller] = float(rate)
        for buyer in self._order:
            rates.setdefault(buyer, {})
        return rates

    def _derive_spending_rates(
        self, spending_rates: Optional[Mapping[int, float]]
    ) -> np.ndarray:
        """``μ_i = Σ_j r_ji s_j`` (Sec. V-C) unless explicit rates are given."""
        mu = np.zeros(len(self._order))
        if spending_rates is not None:
            for peer, rate in spending_rates.items():
                peer = int(peer)
                if peer not in self._index:
                    raise KeyError(f"spending_rates references unknown peer {peer}")
                mu[self._index[peer]] = check_positive(rate, f"spending rate of peer {peer}")
            if np.any(mu <= 0):
                missing = [self._order[i] for i in np.flatnonzero(mu <= 0)]
                raise ValueError(f"spending_rates missing for peers {missing}")
            return mu
        for buyer in self._order:
            sellers = list(self._chunk_rates[buyer])
            if sellers:
                # One batched quote per buyer row (μ_i = Σ_j r_ji s_j);
                # price_array preserves the per-seller call order, so
                # memoising schemes (Poisson prices) draw identically to
                # the historical scalar loop.
                rates = np.fromiter(
                    (self._chunk_rates[buyer][s] for s in sellers),
                    dtype=float,
                    count=len(sellers),
                )
                prices = self.pricing.price_array(sellers, 0)
                total = float(rates @ prices)
            else:
                total = 0.0
            mu[self._index[buyer]] = total if total > 0 else self.pricing.mean_price()
        return mu

    def _derive_routing_matrix(self) -> RoutingMatrix:
        """``p_ij ∝ r_ji s_j`` over the buyer's neighbours (Sec. V-C)."""
        n = len(self._order)
        purchase_rates = np.zeros((n, n))
        for buyer in self._order:
            i = self._index[buyer]
            sellers = list(self._chunk_rates[buyer])
            if not sellers:
                continue
            rates = np.fromiter(
                (self._chunk_rates[buyer][s] for s in sellers),
                dtype=float,
                count=len(sellers),
            )
            prices = self.pricing.price_array(sellers, 0)
            columns = np.fromiter(
                (self._index[s] for s in sellers), dtype=np.int64, count=len(sellers)
            )
            purchase_rates[i, columns] = rates * prices
        routing = RoutingMatrix.from_purchase_rates(purchase_rates)
        if self.reserve_fraction > 0:
            routing = routing.with_reserve_fraction(self.reserve_fraction)
        return routing

    # ------------------------------------------------------------------ accessors

    @property
    def num_peers(self) -> int:
        """Number of peers ``N``."""
        return len(self._order)

    @property
    def peer_order(self) -> Sequence[int]:
        """Peer ids in matrix/vector index order."""
        return list(self._order)

    @property
    def total_credits(self) -> float:
        """Total credits ``M`` currently in circulation."""
        return self.ledger.total_in_circulation()

    @property
    def average_wealth(self) -> float:
        """Average credits per peer ``c = M / N``."""
        return self.total_credits / self.num_peers

    @property
    def routing_matrix(self) -> RoutingMatrix:
        """The credit transfer probability matrix ``P``."""
        return self._routing

    @property
    def spending_rates(self) -> np.ndarray:
        """Maximum spending rates ``μ`` in peer order."""
        return self._mu.copy()

    def wealth_vector(self) -> np.ndarray:
        """Current wallet balances in peer order."""
        return np.array(self.ledger.balance_vector(self._order))

    # ------------------------------------------------------------------ equilibrium analysis

    def equilibrium(self, recompute: bool = False) -> MarketEquilibrium:
        """Solve the traffic equations and produce the equilibrium summary.

        The raw eigenvector solution of ``λP = λ`` is scaled so that
        ``λ_i ≤ μ_i`` holds for every peer with equality for at least one
        (the paper's long-run assumption that earning cannot outpace the
        willingness to spend), which fixes the otherwise-free scale of ``λ``.
        """
        if self._equilibrium is not None and not recompute:
            return self._equilibrium
        solution: TrafficSolution = solve_traffic_equations(self._routing)
        raw = solution.arrival_rates
        ratios = raw / self._mu
        scale = 1.0 / ratios.max()
        lam = raw * scale
        utilizations = normalized_utilizations(lam, self._mu)
        condensation = diagnose_condensation(
            utilizations, self.average_wealth, num_peers=self.num_peers
        )
        self._equilibrium = MarketEquilibrium(
            arrival_rates=lam,
            service_rates=self._mu.copy(),
            utilizations=utilizations,
            traffic_residual=solution.residual,
            condensation=condensation,
        )
        return self._equilibrium

    def to_queueing_network(self, total_credits: Optional[int] = None) -> ClosedJacksonNetwork:
        """The Table I mapping: build the closed Jackson network of this market.

        Parameters
        ----------
        total_credits:
            Job population ``M``; defaults to the (rounded) credits
            currently in circulation.
        """
        equilibrium = self.equilibrium()
        jobs = int(round(self.total_credits)) if total_credits is None else int(total_credits)
        return ClosedJacksonNetwork(equilibrium.utilizations, jobs)

    def predicted_gini(self, total_credits: Optional[int] = None) -> float:
        """Gini index of the expected wealth profile of the mapped queueing network."""
        network = self.to_queueing_network(total_credits)
        return network.expected_wealth_gini()

    def predicted_bankruptcy_fraction(self, total_credits: Optional[int] = None) -> float:
        """Average bankruptcy probability ``Q{B_i = 0}`` over peers."""
        network = self.to_queueing_network(total_credits)
        return float(network.idle_probabilities().mean())

    def table_one_mapping(self) -> Dict[str, object]:
        """The explicit Table I correspondence for this market (used in docs/tests)."""
        equilibrium = self.equilibrium()
        return {
            "num_peers_N": self.num_peers,
            "num_queues_N": self.num_peers,
            "total_credits_M": self.total_credits,
            "total_jobs_M": int(round(self.total_credits)),
            "routing_probabilities_p_ij": self._routing.matrix,
            "service_rates_mu": equilibrium.service_rates,
            "arrival_rates_lambda": equilibrium.arrival_rates,
            "credit_pools_B_i": self.wealth_vector(),
        }
