"""Chunk pricing schemes.

In credit-based P2P content distribution the amount a buyer pays per chunk
is set by the seller's pricing scheme (Secs. III-A and V-C of the paper).
The schemes implemented here cover the cases the paper analyses or
references:

* :class:`UniformPricing` — every chunk costs the same everywhere (the
  default setting of Sec. VI, 1 credit per chunk);
* :class:`PerPeerFlatPricing` — each seller posts one flat price;
* :class:`LinearPricing` — the seller's price grows with the number of
  chunks the buyer has already bought from it in the current round
  (Golle et al. style linear pricing);
* :class:`PoissonPricing` — chunk prices are drawn per (seller, chunk) from
  a shifted Poisson distribution, the non-uniform case used in Fig. 1;
* :class:`AuctionPricing` — a simple sealed-bid second-price auction among
  the suppliers of a chunk (Chu et al. style auction pricing), provided as
  the "non-trivial pricing mechanism" the paper leaves to future work.

A pricing scheme answers two questions: what price does seller ``j`` ask
for chunk ``k`` (``price``), and what does the buyer end up paying when it
actually purchases (``settle``) — identical for posted-price schemes but
different for auctions.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "PricingScheme",
    "UniformPricing",
    "PerPeerFlatPricing",
    "LinearPricing",
    "PoissonPricing",
    "AuctionPricing",
]


class PricingScheme:
    """Interface for chunk pricing schemes."""

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        """The posted/asking price of ``seller_id`` for chunk ``chunk_index``."""
        raise NotImplementedError

    def settle(
        self,
        seller_id: int,
        chunk_index: int,
        buyer_id: Optional[int] = None,
        competing_sellers: Optional[Sequence[int]] = None,
    ) -> float:
        """The amount actually paid when the purchase happens.

        Defaults to the posted price; auction schemes override.
        """
        return self.price(seller_id, chunk_index, buyer_id)

    def note_purchase(self, seller_id: int, chunk_index: int, buyer_id: Optional[int]) -> None:
        """Hook invoked after a completed purchase (stateful schemes override)."""

    def reset_round(self) -> None:
        """Hook invoked at the start of each scheduling round (stateful schemes override)."""

    def price_array(self, seller_ids: Sequence[int], chunk_index: int) -> np.ndarray:
        """Posted prices of many sellers for one chunk, as a float array.

        The batched simulators quote a whole column of sellers at once;
        the generic implementation loops over :meth:`price`, flat-price
        schemes override with a single array operation.
        """
        return np.array(
            [self.price(int(seller), int(chunk_index)) for seller in seller_ids],
            dtype=float,
        )

    def is_stateful(self) -> bool:
        """Whether purchases feed back into future prices or settlements.

        True when the scheme overrides :meth:`settle`, :meth:`note_purchase`
        or :meth:`reset_round` — the batched simulators then settle each
        purchase through the scalar hooks (in a deterministic order shared
        by every kernel) instead of the posted-price fast path.
        """
        return (
            type(self).settle is not PricingScheme.settle
            or type(self).note_purchase is not PricingScheme.note_purchase
            or type(self).reset_round is not PricingScheme.reset_round
        )

    def mean_price(self) -> float:
        """The scheme's average per-chunk price (used to size spending rates)."""
        raise NotImplementedError

    def is_uniform(self) -> bool:
        """True when every seller charges the same price for every chunk."""
        return False


class UniformPricing(PricingScheme):
    """Every chunk costs ``price_per_chunk`` from every seller (paper default: 1)."""

    def __init__(self, price_per_chunk: float = 1.0) -> None:
        self.price_per_chunk = check_positive(price_per_chunk, "price_per_chunk")

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        return self.price_per_chunk

    def price_array(self, seller_ids: Sequence[int], chunk_index: int) -> np.ndarray:
        return np.full(len(seller_ids), self.price_per_chunk, dtype=float)

    def mean_price(self) -> float:
        return self.price_per_chunk

    def is_uniform(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"UniformPricing(price_per_chunk={self.price_per_chunk})"


class PerPeerFlatPricing(PricingScheme):
    """Each seller posts a single flat per-chunk price.

    Individual prices may be zero (a seller that gives chunks away and
    earns nothing — Poisson-distributed price vectors with a mean of
    1 credit contain such sellers), but never negative.

    Parameters
    ----------
    prices:
        Mapping of seller id to its flat price.
    default_price:
        Price used for sellers not present in ``prices``.
    """

    def __init__(self, prices: Mapping[int, float], default_price: float = 1.0) -> None:
        self.default_price = check_positive(default_price, "default_price")
        self._prices: Dict[int, float] = {}
        for seller, value in prices.items():
            self._prices[int(seller)] = check_non_negative(value, f"price of seller {seller}")

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        return self._prices.get(int(seller_id), self.default_price)

    def set_price(self, seller_id: int, value: float) -> None:
        """Update one seller's posted price."""
        self._prices[int(seller_id)] = check_non_negative(value, "value")

    def price_array(self, seller_ids: Sequence[int], chunk_index: int) -> np.ndarray:
        get = self._prices.get
        default = self.default_price
        return np.fromiter(
            (get(int(seller), default) for seller in seller_ids),
            dtype=float,
            count=len(seller_ids),
        )

    def mean_price(self) -> float:
        if not self._prices:
            return self.default_price
        return float(np.mean(list(self._prices.values())))

    def is_uniform(self) -> bool:
        values = set(self._prices.values()) | {self.default_price}
        return len(values) <= 1


class LinearPricing(PricingScheme):
    """Price grows linearly with purchases from the same seller in the round.

    The ``k``-th chunk bought from a given seller within one scheduling
    round costs ``base_price + increment * k`` (k starting at 0), modelling
    a seller whose marginal price rises as its upload capacity is consumed.
    Round state is cleared by :meth:`reset_round`.
    """

    def __init__(self, base_price: float = 1.0, increment: float = 0.1) -> None:
        self.base_price = check_positive(base_price, "base_price")
        self.increment = check_non_negative(increment, "increment")
        self._round_purchases: Dict[int, int] = {}

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        count = self._round_purchases.get(int(seller_id), 0)
        return self.base_price + self.increment * count

    def note_purchase(self, seller_id: int, chunk_index: int, buyer_id: Optional[int]) -> None:
        seller_id = int(seller_id)
        self._round_purchases[seller_id] = self._round_purchases.get(seller_id, 0) + 1

    def reset_round(self) -> None:
        self._round_purchases.clear()

    def mean_price(self) -> float:
        return self.base_price + self.increment  # representative value after light use


class PoissonPricing(PricingScheme):
    """Per (seller, chunk) prices drawn from ``1 + Poisson(mean_price − 1)``.

    The paper's Fig. 1 case (1): "peers charge different credits for selling
    different chunks, which follow a Poisson distribution with an average of
    1 credit per chunk".  A plain Poisson with mean 1 would price ~37% of
    chunks at zero, which would make those transfers free and decouple the
    credit flow from the data flow; we therefore shift the distribution so
    prices are at least ``min_price`` while keeping the requested mean when
    possible.  Prices are memoised so a given seller quotes a stable price
    for a given chunk.
    """

    def __init__(
        self,
        mean_price: float = 1.0,
        min_price: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        self.mean_price_target = check_positive(mean_price, "mean_price")
        self.min_price = check_non_negative(min_price, "min_price")
        if self.min_price > self.mean_price_target:
            # The mean cannot be below the minimum; degrade gracefully to the minimum.
            self._poisson_mean = 0.0
        else:
            self._poisson_mean = self.mean_price_target - self.min_price
        self._rng = make_rng(seed, "poisson-pricing")
        self._memo: Dict[tuple, float] = {}

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        key = (int(seller_id), int(chunk_index))
        if key not in self._memo:
            draw = float(self._rng.poisson(self._poisson_mean)) if self._poisson_mean > 0 else 0.0
            self._memo[key] = self.min_price + draw
        return self._memo[key]

    def mean_price(self) -> float:
        return self.min_price + self._poisson_mean

    def __repr__(self) -> str:
        return (
            f"PoissonPricing(mean_price={self.mean_price_target}, min_price={self.min_price})"
        )


class AuctionPricing(PricingScheme):
    """Sealed-bid second-price auction among a chunk's suppliers.

    Each supplier's private valuation (reservation price) is drawn once per
    seller from ``Uniform(low, high)``.  The posted price of a seller is its
    reservation price; when a purchase is settled with knowledge of the
    competing suppliers, the buyer pays the *second-lowest* reservation
    price (or the sole supplier's reservation price when there is no
    competition) — the procurement form of a Vickrey auction.
    """

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: Optional[int] = None) -> None:
        self.low = check_positive(low, "low")
        self.high = check_positive(high, "high")
        if self.high < self.low:
            raise ValueError("high must be at least low")
        self._rng = make_rng(seed, "auction-pricing")
        self._reservation: Dict[int, float] = {}

    def _reservation_price(self, seller_id: int) -> float:
        seller_id = int(seller_id)
        if seller_id not in self._reservation:
            self._reservation[seller_id] = float(self._rng.uniform(self.low, self.high))
        return self._reservation[seller_id]

    def price(self, seller_id: int, chunk_index: int, buyer_id: Optional[int] = None) -> float:
        return self._reservation_price(seller_id)

    def settle(
        self,
        seller_id: int,
        chunk_index: int,
        buyer_id: Optional[int] = None,
        competing_sellers: Optional[Sequence[int]] = None,
    ) -> float:
        winner_price = self._reservation_price(seller_id)
        if not competing_sellers:
            return winner_price
        other_prices = [
            self._reservation_price(other)
            for other in competing_sellers
            if int(other) != int(seller_id)
        ]
        if not other_prices:
            return winner_price
        second = min(other_prices)
        return max(winner_price, second)

    def mean_price(self) -> float:
        return (self.low + self.high) / 2.0
