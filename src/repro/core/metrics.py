"""Inequality and wealth-distribution metrics.

The paper measures the degree of wealth condensation with the Gini index
computed from the Lorenz curve of the credit distribution (Sec. V-B2).
This module provides:

* :func:`gini_index` / :func:`lorenz_curve` for *samples* (one wealth value
  per peer, as produced by the simulators);
* :func:`gini_from_pmf` / :func:`lorenz_curve_from_pmf` for *probability
  mass functions* (as produced by the queueing analysis, e.g. Eq. 8), using
  the standard distributional definition ``G = E|X − X'| / (2 E[X])``;
* complementary inequality measures (Theil, Hoover, Atkinson) and
  convenience summaries (bankruptcy fraction, top-share, wealth summary).

All functions treat wealth as non-negative; a population with zero total
wealth has, by convention, Gini 0 (perfect equality at zero).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "gini_index",
    "gini_from_pmf",
    "lorenz_curve",
    "lorenz_curve_from_pmf",
    "gini_from_lorenz",
    "theil_index",
    "hoover_index",
    "atkinson_index",
    "bankruptcy_fraction",
    "top_share",
    "wealth_summary",
]


def _as_wealth_array(wealths: Sequence[float], name: str = "wealths") -> np.ndarray:
    arr = np.asarray(list(wealths) if not isinstance(wealths, np.ndarray) else wealths,
                     dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty one-dimensional sequence")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


def _as_pmf(pmf: Sequence[float]) -> np.ndarray:
    arr = np.asarray(pmf, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("pmf must be a non-empty one-dimensional sequence")
    if np.any(arr < -1e-12):
        raise ValueError("pmf must be non-negative")
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if total <= 0:
        raise ValueError("pmf must have positive total mass")
    return arr / total


# ---------------------------------------------------------------------- samples


def gini_index(wealths: Sequence[float]) -> float:
    """Gini index of a sample of peer wealths (0 = equality, → 1 = condensation).

    Uses the sorted-ranks formula
    ``G = (2 Σ_i i x_(i)) / (n Σ_i x_(i)) − (n + 1) / n``,
    which matches the Lorenz-curve definition used in the paper.
    """
    arr = _as_wealth_array(wealths)
    total = arr.sum()
    if total <= 0:
        return 0.0
    sorted_arr = np.sort(arr)
    n = arr.size
    ranks = np.arange(1, n + 1)
    value = 2.0 * np.dot(ranks, sorted_arr) / (n * total) - (n + 1.0) / n
    # Floating-point cancellation can land a hair outside [0, 1] (e.g. -1e-16
    # for a constant sample); clamp to the metric's mathematical range.
    return float(min(max(value, 0.0), 1.0))


def lorenz_curve(wealths: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of a wealth sample.

    Returns ``(population_fractions, wealth_fractions)`` arrays of length
    ``n + 1`` starting at (0, 0) and ending at (1, 1): sort peers by wealth,
    plot the cumulative share of peers against the cumulative share of
    wealth they own.
    """
    arr = np.sort(_as_wealth_array(wealths))
    n = arr.size
    total = arr.sum()
    population = np.arange(n + 1) / n
    if total <= 0:
        return population, population.copy()
    cumulative = np.concatenate(([0.0], np.cumsum(arr))) / total
    return population, cumulative


def gini_from_lorenz(
    population_fractions: Sequence[float], wealth_fractions: Sequence[float]
) -> float:
    """Gini index from a Lorenz curve via the trapezoid rule.

    ``G = 1 − 2 ∫ L(p) dp`` — the ratio of the area between the equality
    line and the Lorenz curve to the total area under the equality line.
    """
    p = np.asarray(population_fractions, dtype=float)
    w = np.asarray(wealth_fractions, dtype=float)
    if p.shape != w.shape or p.ndim != 1 or p.size < 2:
        raise ValueError("population and wealth fractions must be equal-length 1-D arrays")
    integrate = getattr(np, "trapezoid", None) or np.trapz
    area = float(integrate(w, p))
    return float(np.clip(1.0 - 2.0 * area, 0.0, 1.0))


# ---------------------------------------------------------------------- distributions


def gini_from_pmf(pmf: Sequence[float], support: Sequence[float] = None) -> float:
    """Gini index of a discrete wealth *distribution* given by a PMF.

    Uses the mean-absolute-difference definition
    ``G = E|X − X'| / (2 E[X])`` with ``X, X'`` i.i.d. from the PMF — the
    population Gini index of infinitely many peers drawing wealth
    independently from this distribution, which is how the paper evaluates
    the skewness of Eq. (8) in Figs. 2–3.

    Parameters
    ----------
    pmf:
        Probability of each support point (normalised internally).
    support:
        Wealth values; defaults to ``0, 1, ..., len(pmf) − 1``.
    """
    probs = _as_pmf(pmf)
    values = (
        np.arange(probs.size, dtype=float)
        if support is None
        else np.asarray(support, dtype=float)
    )
    if values.shape != probs.shape:
        raise ValueError("support must have the same length as pmf")
    if np.any(values < 0):
        raise ValueError("support must be non-negative")
    mean = float(np.dot(values, probs))
    if mean <= 0:
        return 0.0
    order = np.argsort(values)
    values = values[order]
    probs = probs[order]
    # E|X - X'| = 2 * integral of F(x)(1-F(x)) dx for the discrete case:
    # sum over consecutive support gaps of F*(1-F)*gap.
    cdf = np.cumsum(probs)
    gaps = np.diff(values)
    mean_abs_diff = 2.0 * float(np.sum(cdf[:-1] * (1.0 - cdf[:-1]) * gaps))
    return float(np.clip(mean_abs_diff / (2.0 * mean), 0.0, 1.0))


def lorenz_curve_from_pmf(
    pmf: Sequence[float], support: Sequence[float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of a discrete wealth distribution.

    Returns ``(population_fractions, wealth_fractions)``: the x axis is the
    cumulative probability of the poorest peers, the y axis the fraction of
    total (expected) wealth they hold — exactly the construction used for
    Fig. 2 of the paper.
    """
    probs = _as_pmf(pmf)
    values = (
        np.arange(probs.size, dtype=float)
        if support is None
        else np.asarray(support, dtype=float)
    )
    if values.shape != probs.shape:
        raise ValueError("support must have the same length as pmf")
    if np.any(values < 0):
        raise ValueError("support must be non-negative")
    order = np.argsort(values)
    values = values[order]
    probs = probs[order]
    mean = float(np.dot(values, probs))
    population = np.concatenate(([0.0], np.cumsum(probs)))
    if mean <= 0:
        return population, population.copy()
    wealth = np.concatenate(([0.0], np.cumsum(values * probs))) / mean
    return population, wealth


# ---------------------------------------------------------------------- other indices


def theil_index(wealths: Sequence[float]) -> float:
    """Theil T index (0 = equality; larger = more unequal; unbounded)."""
    arr = _as_wealth_array(wealths)
    mean = arr.mean()
    if mean <= 0:
        return 0.0
    ratios = arr / mean
    positive = ratios[ratios > 0]
    return float(np.sum(positive * np.log(positive)) / arr.size)


def hoover_index(wealths: Sequence[float]) -> float:
    """Hoover (Robin Hood) index: the fraction of total wealth that would
    have to be redistributed to reach perfect equality."""
    arr = _as_wealth_array(wealths)
    total = arr.sum()
    if total <= 0:
        return 0.0
    mean = arr.mean()
    return float(np.sum(np.abs(arr - mean)) / (2.0 * total))


def atkinson_index(wealths: Sequence[float], epsilon: float = 0.5) -> float:
    """Atkinson index with inequality-aversion parameter ``epsilon`` > 0."""
    arr = _as_wealth_array(wealths)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    mean = arr.mean()
    if mean <= 0:
        return 0.0
    if np.isclose(epsilon, 1.0):
        positive = arr[arr > 0]
        if positive.size < arr.size:
            return 1.0  # any zero wealth makes the geometric mean zero
        geo = np.exp(np.mean(np.log(positive)))
        return float(1.0 - geo / mean)
    transformed = np.mean(arr ** (1.0 - epsilon)) ** (1.0 / (1.0 - epsilon))
    return float(1.0 - transformed / mean)


def bankruptcy_fraction(wealths: Sequence[float], threshold: float = 0.0) -> float:
    """Fraction of peers whose wealth is at or below ``threshold`` (default: flat broke)."""
    arr = _as_wealth_array(wealths)
    return float(np.mean(arr <= threshold + 1e-12))


def top_share(wealths: Sequence[float], fraction: float = 0.1) -> float:
    """Share of total wealth owned by the richest ``fraction`` of peers."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    arr = np.sort(_as_wealth_array(wealths))[::-1]
    total = arr.sum()
    if total <= 0:
        return 0.0
    count = max(1, int(round(arr.size * fraction)))
    return float(arr[:count].sum() / total)


def wealth_summary(wealths: Sequence[float]) -> Dict[str, float]:
    """Convenience bundle of the main wealth statistics used in experiments."""
    arr = _as_wealth_array(wealths)
    return {
        "num_peers": float(arr.size),
        "total": float(arr.sum()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "gini": gini_index(arr),
        "theil": theil_index(arr),
        "hoover": hoover_index(arr),
        "bankrupt_fraction": bankruptcy_fraction(arr),
        "top_10pct_share": top_share(arr, 0.1),
    }
