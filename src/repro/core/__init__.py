"""Core credit-market library — the paper's primary contribution.

The :class:`~repro.core.market.CreditMarket` class ties together an overlay
topology, a pricing scheme, peer earning/spending rates and wallets, and
exposes the Table I mapping onto a Jackson queueing network.  Around it:

* :mod:`repro.core.credits` — wallets and a conservation-checked ledger;
* :mod:`repro.core.pricing` — chunk pricing schemes (uniform, per-peer flat,
  linear, Poisson-priced, auction);
* :mod:`repro.core.taxation` — the taxation counter-measure of Sec. VI-C;
* :mod:`repro.core.spending` — fixed and wealth-proportional dynamic
  spending-rate policies (Sec. VI-D);
* :mod:`repro.core.condensation` — the condensation threshold ``T`` of
  Eq. (4), Theorems 2–3 and the exchange-efficiency formula of Eq. (9);
* :mod:`repro.core.metrics` — Gini/Lorenz and other inequality measures.
"""

from repro.core.credits import CreditLedger, InsufficientCreditsError, Transaction, Wallet
from repro.core.pricing import (
    AuctionPricing,
    LinearPricing,
    PerPeerFlatPricing,
    PoissonPricing,
    PricingScheme,
    UniformPricing,
)
from repro.core.taxation import NoTax, TaxPolicy, ThresholdIncomeTax
from repro.core.spending import (
    DynamicSpendingPolicy,
    FixedSpendingPolicy,
    SpendingPolicy,
)
from repro.core.condensation import (
    CondensationReport,
    condensation_threshold,
    diagnose_condensation,
    exchange_efficiency,
    is_symmetric_utilization,
)
from repro.core.metrics import (
    atkinson_index,
    bankruptcy_fraction,
    gini_from_pmf,
    gini_index,
    hoover_index,
    lorenz_curve,
    lorenz_curve_from_pmf,
    theil_index,
    wealth_summary,
)
from repro.core.market import CreditMarket, MarketEquilibrium

__all__ = [
    "Wallet",
    "CreditLedger",
    "Transaction",
    "InsufficientCreditsError",
    "PricingScheme",
    "UniformPricing",
    "PerPeerFlatPricing",
    "LinearPricing",
    "PoissonPricing",
    "AuctionPricing",
    "TaxPolicy",
    "NoTax",
    "ThresholdIncomeTax",
    "SpendingPolicy",
    "FixedSpendingPolicy",
    "DynamicSpendingPolicy",
    "CondensationReport",
    "condensation_threshold",
    "diagnose_condensation",
    "exchange_efficiency",
    "is_symmetric_utilization",
    "gini_index",
    "gini_from_pmf",
    "lorenz_curve",
    "lorenz_curve_from_pmf",
    "theil_index",
    "hoover_index",
    "atkinson_index",
    "bankruptcy_fraction",
    "wealth_summary",
    "CreditMarket",
    "MarketEquilibrium",
]
