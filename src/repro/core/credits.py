"""Wallets, transactions and a conservation-checked credit ledger.

The credit system of the paper is a closed economy (Sec. III-B2): credits
move between peers when chunks are bought, but — absent churn, taxation
rebates or explicit injection — the total amount in circulation is
constant.  The :class:`CreditLedger` enforces exactly that: every transfer
debits one wallet and credits another atomically, and the ledger can verify
conservation at any time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["InsufficientCreditsError", "Transaction", "Wallet", "CreditLedger"]


class InsufficientCreditsError(RuntimeError):
    """Raised when a debit would push a wallet balance below zero."""


@dataclass(frozen=True)
class Transaction:
    """An immutable record of one credit movement.

    ``buyer_id`` / ``seller_id`` of ``None`` denote the system itself
    (taxation pool, injection, churn entry/exit).
    """

    time: float
    buyer_id: Optional[int]
    seller_id: Optional[int]
    amount: float
    kind: str = "chunk"
    chunk_index: Optional[int] = None


class Wallet:
    """A peer's credit pool.

    Balances are floats (chunk prices need not be integral — the Poisson
    pricing scheme of Fig. 1 charges varying whole amounts, but linear
    pricing can produce fractional prices).  Balances can never go negative.
    """

    __slots__ = ("peer_id", "_balance", "_earned", "_spent")

    def __init__(self, peer_id: int, initial_balance: float = 0.0) -> None:
        if initial_balance < 0:
            raise ValueError("initial_balance must be non-negative")
        self.peer_id = int(peer_id)
        self._balance = float(initial_balance)
        self._earned = 0.0
        self._spent = 0.0

    @property
    def balance(self) -> float:
        """Current credit balance."""
        return self._balance

    @property
    def total_earned(self) -> float:
        """Cumulative credits received since creation (excluding the initial endowment)."""
        return self._earned

    @property
    def total_spent(self) -> float:
        """Cumulative credits paid out since creation."""
        return self._spent

    def can_afford(self, amount: float) -> bool:
        """Whether the wallet can pay ``amount`` right now."""
        return self._balance + 1e-12 >= amount >= 0

    def credit(self, amount: float) -> None:
        """Add ``amount`` credits to the wallet."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self._balance += amount
        self._earned += amount

    def debit(self, amount: float) -> None:
        """Remove ``amount`` credits; raises :class:`InsufficientCreditsError` if short."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        if amount > self._balance + 1e-12:
            raise InsufficientCreditsError(
                f"peer {self.peer_id} cannot pay {amount:.6g} (balance {self._balance:.6g})"
            )
        self._balance = max(0.0, self._balance - amount)
        self._spent += amount

    def __repr__(self) -> str:
        return f"Wallet(peer_id={self.peer_id}, balance={self._balance:.4g})"


class CreditLedger:
    """Registry of wallets with atomic transfers and conservation checking.

    Parameters
    ----------
    record_transactions:
        When True (default), every movement is appended to
        :attr:`transactions`; long simulations that only need aggregate
        statistics can disable recording to save memory.
    """

    def __init__(self, record_transactions: bool = True) -> None:
        self._wallets: Dict[int, Wallet] = {}
        self.record_transactions = bool(record_transactions)
        self.transactions: List[Transaction] = []
        self._minted = 0.0
        self._destroyed = 0.0
        self._system_pool = 0.0

    # ------------------------------------------------------------------ wallet management

    def open_wallet(self, peer_id: int, initial_balance: float = 0.0) -> Wallet:
        """Create a wallet for ``peer_id`` with an initial endowment (minting credits)."""
        peer_id = int(peer_id)
        if peer_id in self._wallets:
            raise ValueError(f"peer {peer_id} already has a wallet")
        wallet = Wallet(peer_id, initial_balance)
        self._wallets[peer_id] = wallet
        self._minted += float(initial_balance)
        return wallet

    def close_wallet(self, peer_id: int) -> float:
        """Remove a wallet, destroying its remaining balance (the churn-departure rule).

        Returns the destroyed amount.
        """
        wallet = self._wallets.pop(int(peer_id))
        remaining = wallet.balance
        self._destroyed += remaining
        return remaining

    def wallet(self, peer_id: int) -> Wallet:
        """Return the wallet of ``peer_id`` (KeyError if absent)."""
        return self._wallets[int(peer_id)]

    def has_wallet(self, peer_id: int) -> bool:
        """Whether ``peer_id`` currently has a wallet."""
        return int(peer_id) in self._wallets

    def peer_ids(self) -> List[int]:
        """Sorted ids of peers with open wallets."""
        return sorted(self._wallets)

    def balances(self) -> Dict[int, float]:
        """Mapping of peer id to current balance."""
        return {peer_id: wallet.balance for peer_id, wallet in self._wallets.items()}

    def balance_vector(self, order: Optional[Iterable[int]] = None) -> List[float]:
        """Balances in a given peer order (default: sorted ids)."""
        order = list(order) if order is not None else self.peer_ids()
        return [self._wallets[peer].balance for peer in order]

    # ------------------------------------------------------------------ movements

    def transfer(
        self,
        buyer_id: int,
        seller_id: int,
        amount: float,
        time: float = 0.0,
        kind: str = "chunk",
        chunk_index: Optional[int] = None,
    ) -> Transaction:
        """Move ``amount`` credits from buyer to seller atomically.

        Raises :class:`InsufficientCreditsError` (leaving both balances
        untouched) when the buyer cannot pay.
        """
        buyer = self.wallet(buyer_id)
        seller = self.wallet(seller_id)
        if amount < 0:
            raise ValueError("transfer amount must be non-negative")
        buyer.debit(amount)  # raises before any state changes if unaffordable
        seller.credit(amount)
        transaction = Transaction(
            time=float(time),
            buyer_id=int(buyer_id),
            seller_id=int(seller_id),
            amount=float(amount),
            kind=kind,
            chunk_index=chunk_index,
        )
        if self.record_transactions:
            self.transactions.append(transaction)
        return transaction

    def collect_to_pool(self, peer_id: int, amount: float, time: float = 0.0) -> Transaction:
        """Move credits from a peer into the system pool (tax collection)."""
        wallet = self.wallet(peer_id)
        wallet.debit(amount)
        self._system_pool += amount
        transaction = Transaction(
            time=float(time), buyer_id=int(peer_id), seller_id=None, amount=float(amount),
            kind="tax",
        )
        if self.record_transactions:
            self.transactions.append(transaction)
        return transaction

    def disburse_from_pool(self, peer_id: int, amount: float, time: float = 0.0) -> Transaction:
        """Move credits from the system pool to a peer (tax rebate)."""
        if amount > self._system_pool + 1e-9:
            raise ValueError(
                f"system pool holds {self._system_pool:.6g}, cannot disburse {amount:.6g}"
            )
        self.wallet(peer_id).credit(amount)
        self._system_pool = max(0.0, self._system_pool - amount)
        transaction = Transaction(
            time=float(time), buyer_id=None, seller_id=int(peer_id), amount=float(amount),
            kind="rebate",
        )
        if self.record_transactions:
            self.transactions.append(transaction)
        return transaction

    def inject(self, peer_id: int, amount: float, time: float = 0.0) -> Transaction:
        """Mint new credits directly into a peer's wallet (credit injection)."""
        if amount < 0:
            raise ValueError("injection amount must be non-negative")
        self.wallet(peer_id).credit(amount)
        self._minted += amount
        transaction = Transaction(
            time=float(time), buyer_id=None, seller_id=int(peer_id), amount=float(amount),
            kind="injection",
        )
        if self.record_transactions:
            self.transactions.append(transaction)
        return transaction

    # ------------------------------------------------------------------ conservation

    @property
    def total_minted(self) -> float:
        """Total credits ever created (initial endowments + injections)."""
        return self._minted

    @property
    def total_destroyed(self) -> float:
        """Total credits removed from the economy (departing peers' balances)."""
        return self._destroyed

    @property
    def system_pool(self) -> float:
        """Credits currently held by the system (collected taxes awaiting rebate)."""
        return self._system_pool

    def total_in_circulation(self) -> float:
        """Sum of all open wallet balances plus the system pool."""
        return sum(wallet.balance for wallet in self._wallets.values()) + self._system_pool

    def conservation_error(self) -> float:
        """``|minted − destroyed − in_circulation|`` — should be ~0 at all times."""
        return abs(self._minted - self._destroyed - self.total_in_circulation())

    def verify_conservation(self, tolerance: float = 1e-6) -> None:
        """Raise ``AssertionError`` if the credit-conservation invariant is violated."""
        error = self.conservation_error()
        if error > tolerance:
            raise AssertionError(
                f"credit conservation violated: minted={self._minted:.6g}, "
                f"destroyed={self._destroyed:.6g}, "
                f"in_circulation={self.total_in_circulation():.6g} (error {error:.3g})"
            )
