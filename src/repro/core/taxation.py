"""Taxation counter-measures against wealth condensation (Sec. VI-C).

The paper's taxation rule: for a peer whose wealth exceeds a *tax
threshold*, the system collects a fixed proportion (the *tax rate*) of its
income; whenever the collected pool reaches ``N`` units, one unit is
returned to every peer.  :class:`ThresholdIncomeTax` implements exactly
that rule; :class:`ProportionalRedistributionTax` is an ablation variant
that redistributes the pool continuously in proportion to poverty instead
of waiting for ``N`` units.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.credits import CreditLedger
from repro.utils.validation import check_fraction, check_non_negative

__all__ = ["TaxPolicy", "NoTax", "ThresholdIncomeTax", "ProportionalRedistributionTax"]


class TaxPolicy:
    """Interface for taxation policies applied to peer income."""

    def on_income(
        self,
        ledger: CreditLedger,
        peer_id: int,
        income: float,
        time: float,
        population: Sequence[int],
    ) -> float:
        """Called after ``peer_id`` earned ``income`` credits.

        Returns the amount of tax collected (0 when no tax applies).  The
        policy is responsible for collecting into the ledger's system pool
        and, when its redistribution condition triggers, disbursing rebates.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description for experiment legends."""
        raise NotImplementedError


class NoTax(TaxPolicy):
    """The baseline: no taxation at all."""

    def on_income(
        self,
        ledger: CreditLedger,
        peer_id: int,
        income: float,
        time: float,
        population: Sequence[int],
    ) -> float:
        return 0.0

    def describe(self) -> str:
        return "no taxation"


class ThresholdIncomeTax(TaxPolicy):
    """The paper's taxation rule: tax income of peers above a wealth threshold.

    Parameters
    ----------
    rate:
        Fraction of income collected from peers whose wealth exceeds the
        threshold (the paper studies 0.1 and 0.2).
    threshold:
        Wealth level above which income is taxed (the paper studies 50 and
        80 against an average wealth of 100).
    rebate_unit:
        Size of the per-peer rebate paid out once the pool holds
        ``rebate_unit × N`` credits (the paper uses 1 credit per peer).
    """

    def __init__(self, rate: float, threshold: float, rebate_unit: float = 1.0) -> None:
        self.rate = check_fraction(rate, "rate")
        self.threshold = check_non_negative(threshold, "threshold")
        self.rebate_unit = check_non_negative(rebate_unit, "rebate_unit")
        self.total_collected = 0.0
        self.total_rebated = 0.0
        self.rebate_rounds = 0

    def on_income(
        self,
        ledger: CreditLedger,
        peer_id: int,
        income: float,
        time: float,
        population: Sequence[int],
    ) -> float:
        if income <= 0 or self.rate <= 0:
            return 0.0
        wallet = ledger.wallet(peer_id)
        if wallet.balance <= self.threshold:
            return 0.0
        tax = min(income * self.rate, wallet.balance)
        if tax <= 0:
            return 0.0
        ledger.collect_to_pool(peer_id, tax, time=time)
        self.total_collected += tax
        self._maybe_rebate(ledger, time, population)
        return tax

    def _maybe_rebate(self, ledger: CreditLedger, time: float, population: Sequence[int]) -> None:
        peers = [peer for peer in population if ledger.has_wallet(peer)]
        if not peers or self.rebate_unit <= 0:
            return
        required = self.rebate_unit * len(peers)
        while ledger.system_pool >= required and required > 0:
            for peer in peers:
                ledger.disburse_from_pool(peer, self.rebate_unit, time=time)
                self.total_rebated += self.rebate_unit
            self.rebate_rounds += 1

    def describe(self) -> str:
        return f"tax rate={self.rate:g} threshold={self.threshold:g}"


class ProportionalRedistributionTax(TaxPolicy):
    """Ablation variant: collected tax is immediately redistributed to the poorest peers.

    Income above the threshold is taxed at ``rate`` exactly as in
    :class:`ThresholdIncomeTax`, but instead of accumulating a pool the
    collected amount is split immediately among the peers whose wealth is
    below the threshold, proportionally to their shortfall.  When no peer is
    below the threshold the collection is skipped entirely.
    """

    def __init__(self, rate: float, threshold: float) -> None:
        self.rate = check_fraction(rate, "rate")
        self.threshold = check_non_negative(threshold, "threshold")
        self.total_collected = 0.0
        self.total_rebated = 0.0

    def on_income(
        self,
        ledger: CreditLedger,
        peer_id: int,
        income: float,
        time: float,
        population: Sequence[int],
    ) -> float:
        if income <= 0 or self.rate <= 0:
            return 0.0
        wallet = ledger.wallet(peer_id)
        if wallet.balance <= self.threshold:
            return 0.0
        shortfalls: Dict[int, float] = {}
        for peer in population:
            if peer == peer_id or not ledger.has_wallet(peer):
                continue
            balance = ledger.wallet(peer).balance
            if balance < self.threshold:
                shortfalls[peer] = self.threshold - balance
        if not shortfalls:
            return 0.0
        tax = min(income * self.rate, wallet.balance)
        if tax <= 0:
            return 0.0
        ledger.collect_to_pool(peer_id, tax, time=time)
        self.total_collected += tax
        total_shortfall = sum(shortfalls.values())
        remaining = tax
        items: List = sorted(shortfalls.items())
        for index, (peer, shortfall) in enumerate(items):
            if index == len(items) - 1:
                share = remaining
            else:
                share = tax * shortfall / total_shortfall
                share = min(share, remaining)
            if share > 0:
                ledger.disburse_from_pool(peer, share, time=time)
                self.total_rebated += share
                remaining -= share
        return tax

    def describe(self) -> str:
        return f"proportional tax rate={self.rate:g} threshold={self.threshold:g}"
