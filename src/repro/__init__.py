"""repro — reproduction of "Exploring the Sustainability of Credit-incentivized
Peer-to-Peer Content Distribution" (Qiu, Huang, Wu, Li, Lau — ICDCSW 2012).

The package models credit-based P2P content distribution markets, maps them
onto Jackson queueing networks (Table I of the paper), analyses wealth
condensation (Lemma 1, Theorems 2–3, Eqs. 3–9) and reproduces the paper's
simulation study with a discrete-event mesh-pull streaming simulator and a
transaction-level market simulator.

Quickstart
----------
>>> from repro import CreditMarket, scale_free_topology
>>> topology = scale_free_topology(100, seed=1)
>>> market = CreditMarket(topology, initial_credits=50.0)
>>> equilibrium = market.equilibrium()
>>> bool(equilibrium.condensation.condenses) in (True, False)
True

Subpackages
-----------
``repro.core``
    Credit market, wallets/ledger, pricing, taxation, spending policies,
    condensation analysis and inequality metrics.
``repro.queueing``
    Jackson queueing-network analytics (traffic equations, closed/open
    networks, Buzen convolution, MVA, the paper's approximations).
``repro.simulation`` / ``repro.overlay`` / ``repro.streaming``
    Discrete-event engine, overlay topologies with churn, and the mesh-pull
    streaming protocol substrate.
``repro.p2psim``
    The integrated credit-incentivized P2P simulators (chunk-level and
    transaction-level).
``repro.baselines``
    Scrip-system, credit-network, tit-for-tat and money-exchange baselines.
``repro.experiments``
    One registered runner per figure of the paper's evaluation.
"""

from repro.core import (
    CreditLedger,
    CreditMarket,
    DynamicSpendingPolicy,
    FixedSpendingPolicy,
    LinearPricing,
    MarketEquilibrium,
    NoTax,
    PerPeerFlatPricing,
    PoissonPricing,
    PricingScheme,
    ThresholdIncomeTax,
    UniformPricing,
    Wallet,
    condensation_threshold,
    diagnose_condensation,
    exchange_efficiency,
    gini_from_pmf,
    gini_index,
    lorenz_curve,
    lorenz_curve_from_pmf,
    wealth_summary,
)
from repro.overlay import (
    ChurnConfig,
    MembershipTracker,
    OverlayTopology,
    scale_free_topology,
)
from repro.queueing import (
    ClosedJacksonNetwork,
    OpenJacksonNetwork,
    RoutingMatrix,
    solve_traffic_equations,
    symmetric_marginal_pmf,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CreditMarket",
    "MarketEquilibrium",
    "CreditLedger",
    "Wallet",
    "PricingScheme",
    "UniformPricing",
    "PerPeerFlatPricing",
    "LinearPricing",
    "PoissonPricing",
    "ThresholdIncomeTax",
    "NoTax",
    "FixedSpendingPolicy",
    "DynamicSpendingPolicy",
    "condensation_threshold",
    "diagnose_condensation",
    "exchange_efficiency",
    "gini_index",
    "gini_from_pmf",
    "lorenz_curve",
    "lorenz_curve_from_pmf",
    "wealth_summary",
    # overlay
    "OverlayTopology",
    "scale_free_topology",
    "MembershipTracker",
    "ChurnConfig",
    # queueing
    "RoutingMatrix",
    "ClosedJacksonNetwork",
    "OpenJacksonNetwork",
    "solve_traffic_equations",
    "symmetric_marginal_pmf",
]
