"""Fig. 3 — Gini index of the equilibrium credit distribution vs average wealth ``c``.

The paper evaluates systems of several sizes (N = 50, 100, 200, 400) that
have evolved for a long time under uniform chunk pricing on a scale-free
overlay, and plots the Gini index of the credit distribution against the
average wealth ``c``: the Gini grows quickly for small ``c`` and then
saturates — allocating more initial credits raises the risk of
condensation.

On a scale-free overlay, uniform pricing with availability-driven purchases
makes a peer's earning rate proportional to the number of buyers it serves
(its degree), so the utilization vector is heterogeneous and the
equilibrium of the Table I queueing network exhibits exactly the
increasing, saturating Gini-vs-``c`` shape of the paper's figure.  For each
(N, c) combination the runner

1. builds the overlay and market and solves the traffic equations;
2. solves the grand-canonical fugacity for ``M = c N`` total credits;
3. samples peer wealths from the corresponding geometric equilibrium
   marginals and reports the average sample Gini.

Two supplementary columns put the headline number in context:

* ``gini_symmetric_composition`` — the same sweep for a *perfectly
  symmetric* market (uniform random compositions of ``M`` credits over
  ``N`` peers); its Gini stays near the exponential value 0.5 and decreases
  slightly with ``c``;
* ``gini_eq8_approx`` — the Gini of the paper's literal Eq. (8) binomial
  marginal, which *decreases* with ``c``.

The absolute Gini levels of the heterogeneous column are higher than the
paper's (our queueing abstraction lets every peer spend at its maximum rate
whenever it has credits, which exaggerates condensation relative to the
need-driven streaming protocol); the qualitative shape — increasing in
``c`` and saturating — is what this experiment reproduces.  EXPERIMENTS.md
discusses the discrepancy.
"""

from __future__ import annotations

import numpy as np

from repro.core.condensation import grand_canonical_wealth
from repro.core.market import CreditMarket
from repro.core.metrics import gini_from_pmf, gini_index
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.overlay.generators import scale_free_topology
from repro.queueing.approximations import symmetric_marginal_pmf
from repro.utils.records import ResultTable, SeriesRecord
from repro.utils.rng import make_rng

__all__ = [
    "run",
    "run_point",
    "heterogeneous_equilibrium_gini",
    "sample_symmetric_composition_gini",
]

EXPERIMENT_ID = "fig3"
TITLE = "Fig. 3 — Gini index vs average wealth c"

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = ("num_peers", "average_wealth", "num_samples")


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    num_peers: int = 100,
    average_wealth: float = 20.0,
    num_samples: int | None = None,
) -> ExperimentResult:
    """Evaluate a single ``(N, c)`` grid point of Fig. 3.

    This is the sweepable unit the ``repro.runner`` orchestrator shards:
    one row with the heterogeneous equilibrium Gini and its two analytic
    reference columns.  The sampling RNG is derived from ``(seed, "fig3",
    N, c)``, so a point's result is independent of any other grid point.
    """
    params = scale_parameters(
        scale,
        smoke=dict(num_samples=4),
        default=dict(num_samples=8),
        paper=dict(num_samples=16),
    )
    if num_samples is None:
        num_samples = int(params["num_samples"])
    num_peers = int(num_peers)
    average_wealth = float(average_wealth)

    gini_heterogeneous = heterogeneous_equilibrium_gini(
        num_peers, average_wealth, seed=seed, num_samples=num_samples
    )
    rng = make_rng(seed, "fig3", num_peers, average_wealth)
    gini_symmetric = sample_symmetric_composition_gini(
        num_peers, average_wealth, rng, num_samples=num_samples
    )
    gini_eq8 = gini_from_pmf(
        symmetric_marginal_pmf(num_peers, int(round(average_wealth * num_peers)))
    )

    metadata = dict(
        scale=str(scale),
        seed=seed,
        num_peers=num_peers,
        average_wealth=average_wealth,
        num_samples=num_samples,
    )
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(
        num_peers_N=num_peers,
        average_wealth_c=average_wealth,
        gini=gini_heterogeneous,
        gini_symmetric_composition=gini_symmetric,
        gini_eq8_approx=gini_eq8,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[],
        metadata=metadata,
    )


def heterogeneous_equilibrium_gini(
    num_peers: int,
    average_wealth: float,
    seed: int = 0,
    num_samples: int = 8,
    mean_degree: float = 20.0,
) -> float:
    """Equilibrium wealth Gini of a uniform-pricing market on a scale-free overlay.

    Peer wealths are sampled from the grand-canonical equilibrium implied by
    the market's utilization vector: each peer's wealth is geometric with
    the grand-canonical mean.  The Gini is averaged over ``num_samples``
    draws.
    """
    mean_degree = min(mean_degree, max(2.0, num_peers / 3.0))
    topology = scale_free_topology(num_peers, mean_degree=mean_degree, seed=seed)
    market = CreditMarket(topology, initial_credits=average_wealth)
    utilizations = market.equilibrium().utilizations
    means = grand_canonical_wealth(utilizations, average_wealth * num_peers)
    rng = make_rng(seed, "fig3-sampling", num_peers, average_wealth)
    probabilities = 1.0 / (1.0 + np.maximum(means, 1e-9))
    ginis = []
    for _ in range(int(num_samples)):
        sample = rng.geometric(probabilities) - 1
        ginis.append(gini_index(sample.astype(float)))
    return float(np.mean(ginis))


def sample_symmetric_composition_gini(
    num_peers: int,
    average_wealth: float,
    rng: np.random.Generator,
    num_samples: int = 8,
) -> float:
    """Average Gini of wealth vectors drawn from the symmetric product form.

    Under symmetric utilization every composition of ``M`` credits over
    ``N`` peers is equally likely; a uniform composition is sampled by the
    stars-and-bars construction (choose ``N − 1`` bar positions among
    ``M + N − 1`` slots).
    """
    num_peers = int(num_peers)
    total = int(round(average_wealth * num_peers))
    if num_peers < 2:
        raise ValueError("num_peers must be at least 2")
    ginis = []
    for _ in range(int(num_samples)):
        if total == 0:
            ginis.append(0.0)
            continue
        bars = np.sort(rng.choice(total + num_peers - 1, size=num_peers - 1, replace=False))
        boundaries = np.concatenate(([-1], bars, [total + num_peers - 1]))
        wealths = np.diff(boundaries) - 1
        ginis.append(gini_index(wealths.astype(float)))
    return float(np.mean(ginis))


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Sweep average wealth for several network sizes and report the Gini index."""
    params = scale_parameters(
        scale,
        smoke=dict(network_sizes=[50], wealth_levels=[2, 10, 40], num_samples=4),
        default=dict(
            network_sizes=[50, 100, 200, 400],
            wealth_levels=[1, 2, 5, 10, 20, 40, 60, 80, 100],
            num_samples=8,
        ),
        paper=dict(
            network_sizes=[50, 100, 200, 400],
            wealth_levels=[1, 2, 5, 10, 20, 40, 60, 80, 100],
            num_samples=16,
        ),
    )

    rng = make_rng(seed, "fig3")
    table = ResultTable(title=TITLE, metadata=dict(scale=str(scale), seed=seed))
    series = []
    for num_peers in params["network_sizes"]:
        curve = SeriesRecord(label=f"N={num_peers}")
        for wealth in params["wealth_levels"]:
            gini_heterogeneous = heterogeneous_equilibrium_gini(
                num_peers, float(wealth), seed=seed, num_samples=params["num_samples"]
            )
            gini_symmetric = sample_symmetric_composition_gini(
                num_peers, float(wealth), rng, num_samples=params["num_samples"]
            )
            gini_eq8 = gini_from_pmf(
                symmetric_marginal_pmf(num_peers, int(round(wealth * num_peers)))
            )
            curve.append(float(wealth), gini_heterogeneous)
            table.add_row(
                num_peers_N=num_peers,
                average_wealth_c=float(wealth),
                gini=gini_heterogeneous,
                gini_symmetric_composition=gini_symmetric,
                gini_eq8_approx=gini_eq8,
            )
        series.append(curve)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed),
    )
