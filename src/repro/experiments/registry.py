"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.experiments import (
    fig01_spending_rates,
    fig02_lorenz,
    fig03_gini_vs_wealth,
    fig04_efficiency,
    fig05_06_convergence,
    fig07_08_gini_evolution,
    fig09_taxation,
    fig10_dynamic_spending,
    fig11_churn,
)
from repro.experiments.common import ExperimentResult, Scale

__all__ = [
    "EXPERIMENTS",
    "SWEEPS",
    "get_experiment",
    "get_sweep_runner",
    "normalize_sweep_config",
    "run_experiment",
    "run_sweep_point",
    "sweep_params",
    "validate_sweep_config",
    "describe_experiments",
]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "fig1": {
        "runner": fig01_spending_rates.run,
        "title": fig01_spending_rates.TITLE,
        "section": "III-A",
    },
    "fig2": {
        "runner": fig02_lorenz.run,
        "title": fig02_lorenz.TITLE,
        "section": "V-B1",
    },
    "fig3": {
        "runner": fig03_gini_vs_wealth.run,
        "title": fig03_gini_vs_wealth.TITLE,
        "section": "V-B2",
    },
    "fig4": {
        "runner": fig04_efficiency.run,
        "title": fig04_efficiency.TITLE,
        "section": "V-B3",
    },
    "fig5_6": {
        "runner": fig05_06_convergence.run,
        "title": fig05_06_convergence.TITLE,
        "section": "VI-A",
    },
    "fig7": {
        "runner": fig07_08_gini_evolution.run_symmetric,
        "title": fig07_08_gini_evolution.TITLE_SYMMETRIC,
        "section": "VI-A/B",
    },
    "fig8": {
        "runner": fig07_08_gini_evolution.run_asymmetric,
        "title": fig07_08_gini_evolution.TITLE_ASYMMETRIC,
        "section": "VI-B",
    },
    "fig9": {
        "runner": fig09_taxation.run,
        "title": fig09_taxation.TITLE,
        "section": "VI-C",
    },
    "fig10": {
        "runner": fig10_dynamic_spending.run,
        "title": fig10_dynamic_spending.TITLE,
        "section": "VI-D",
    },
    "fig11": {
        "runner": fig11_churn.run,
        "title": fig11_churn.TITLE,
        "section": "VI-E",
    },
}


# Parameterizable experiments: single-configuration "point" runners accepting
# sweep axes as keyword arguments.  `repro.runner` shards these over workers.
# Every experiment id in EXPERIMENTS has an entry here, so all eleven figures
# are drivable through the cached, parallel sweep path.
SWEEPS: Dict[str, Dict[str, object]] = {
    "fig1": {
        "runner": fig01_spending_rates.run_point,
        "params": fig01_spending_rates.SWEEP_PARAMS,
        "title": fig01_spending_rates.TITLE,
    },
    "fig2": {
        "runner": fig02_lorenz.run_point,
        "params": fig02_lorenz.SWEEP_PARAMS,
        "title": fig02_lorenz.TITLE,
    },
    "fig3": {
        "runner": fig03_gini_vs_wealth.run_point,
        "params": fig03_gini_vs_wealth.SWEEP_PARAMS,
        "title": fig03_gini_vs_wealth.TITLE,
    },
    "fig4": {
        "runner": fig04_efficiency.run_point,
        "params": fig04_efficiency.SWEEP_PARAMS,
        "title": fig04_efficiency.TITLE,
    },
    "fig5_6": {
        "runner": fig05_06_convergence.run_point,
        "params": fig05_06_convergence.SWEEP_PARAMS,
        "title": fig05_06_convergence.TITLE,
    },
    "fig7": {
        "runner": fig07_08_gini_evolution.run_point_symmetric,
        "params": fig07_08_gini_evolution.SWEEP_PARAMS,
        "title": fig07_08_gini_evolution.TITLE_SYMMETRIC,
    },
    "fig8": {
        "runner": fig07_08_gini_evolution.run_point_asymmetric,
        "params": fig07_08_gini_evolution.SWEEP_PARAMS,
        "title": fig07_08_gini_evolution.TITLE_ASYMMETRIC,
    },
    "fig9": {
        "runner": fig09_taxation.run_point,
        "params": fig09_taxation.SWEEP_PARAMS,
        "title": fig09_taxation.TITLE,
    },
    "fig10": {
        "runner": fig10_dynamic_spending.run_point,
        "params": fig10_dynamic_spending.SWEEP_PARAMS,
        "title": fig10_dynamic_spending.TITLE,
    },
    "fig11": {
        "runner": fig11_churn.run_point,
        "params": fig11_churn.SWEEP_PARAMS,
        "title": fig11_churn.TITLE,
    },
}


def get_sweep_runner(experiment_id: str) -> Runner:
    """Return the parameterizable point runner for ``experiment_id``.

    Raises ``KeyError`` when the experiment exists but has no sweepable
    point runner yet (only whole-figure replication is supported then).
    """
    try:
        return SWEEPS[experiment_id]["runner"]  # type: ignore[return-value]
    except KeyError as error:
        known = ", ".join(sorted(SWEEPS))
        raise KeyError(
            f"experiment {experiment_id!r} is not sweepable; sweepable ids: {known}"
        ) from error


def _normalize_fig9(config: Dict[str, object]) -> Dict[str, object]:
    # tax_rate <= 0 means no taxation: the threshold is an ignored knob and
    # must not differentiate configurations (seeds, cache keys, rows).  An
    # absent tax_rate falls back to the point runner's default of 0.0 —
    # a threshold-only sweep is a no-tax sweep too.
    rate = config.get("tax_rate", 0.0)
    if isinstance(rate, (int, float)) and float(rate) <= 0.0 and "tax_threshold" in config:
        config = dict(config)
        del config["tax_threshold"]
        # Keep the no-tax point explicit: an empty config would replicate
        # the whole figure instead of running the single no-tax setting.
        config["tax_rate"] = float(rate)
    return config


def _normalize_fig10(config: Dict[str, object]) -> Dict[str, object]:
    # The wealth threshold only exists for the dynamic policy.
    if config.get("spending_policy") == "fixed" and "wealth_threshold" in config:
        config = dict(config)
        del config["wealth_threshold"]
    return config


#: Per-experiment config normalizers: drop knobs that the point runner
#: ignores for the given configuration, so configurations that simulate
#: identically share one identity (same derived seed, same cache artifact,
#: same aggregate row) instead of masquerading as distinct grid points.
NORMALIZERS: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {
    "fig9": _normalize_fig9,
    "fig10": _normalize_fig10,
}


def normalize_sweep_config(experiment_id: str, config: Dict[str, object]) -> Dict[str, object]:
    """Drop ignored knobs from ``config`` for ``experiment_id``.

    Unknown experiments (and experiments without a registered normalizer)
    pass through unchanged.
    """
    normalizer = NORMALIZERS.get(experiment_id)
    if normalizer is None:
        return dict(config)
    return normalizer(dict(config))


def sweep_params(experiment_id: str) -> Tuple[str, ...]:
    """The sweep axes a sweepable experiment's point runner accepts.

    Raises the same "not sweepable" ``KeyError`` as :func:`get_sweep_runner`
    for unknown ids.
    """
    get_sweep_runner(experiment_id)
    return tuple(SWEEPS[experiment_id]["params"])  # type: ignore[arg-type]


def validate_sweep_config(experiment_id: str, names: Iterable[str]) -> None:
    """Check that every name in ``names`` is a sweep axis of ``experiment_id``.

    Raises ``KeyError`` for an unknown experiment or an unknown axis — the
    CLI calls this before expanding a grid so a typo fails fast instead of
    surfacing from inside a worker process.
    """
    allowed = set(sweep_params(experiment_id))
    unknown = sorted(set(names) - allowed)
    if unknown:
        raise KeyError(
            f"unknown sweep parameter(s) {unknown} for {experiment_id!r}; "
            f"sweepable parameters: {sorted(allowed)}"
        )


def run_sweep_point(
    experiment_id: str,
    config: Dict[str, object],
    scale: str = Scale.DEFAULT,
    seed: int = 0,
) -> ExperimentResult:
    """Run one sweep shard: a point runner with ``config`` as keyword axes.

    An empty ``config`` runs the plain registry runner — the *whole*
    registered experiment — so ``--reps`` replicates exactly what a plain
    ``run`` executes; point runners are only used for explicit grid axes.
    """
    if not config:
        return run_experiment(experiment_id, scale=scale, seed=seed)
    runner = get_sweep_runner(experiment_id)
    validate_sweep_config(experiment_id, config)
    return runner(scale=scale, seed=seed, **config)


def get_experiment(experiment_id: str) -> Runner:
    """Return the runner registered under ``experiment_id`` (KeyError when unknown)."""
    try:
        return EXPERIMENTS[experiment_id]["runner"]  # type: ignore[return-value]
    except KeyError as error:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from error


def run_experiment(
    experiment_id: str, scale: str = Scale.DEFAULT, seed: int = 0
) -> ExperimentResult:
    """Run the experiment registered under ``experiment_id``."""
    runner = get_experiment(experiment_id)
    return runner(scale=scale, seed=seed)


def describe_experiments() -> List[Dict[str, str]]:
    """List every registered experiment with its paper section and title."""
    return [
        {
            "id": experiment_id,
            "section": str(entry["section"]),
            "title": str(entry["title"]),
        }
        for experiment_id, entry in sorted(EXPERIMENTS.items())
    ]
