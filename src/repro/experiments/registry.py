"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    fig01_spending_rates,
    fig02_lorenz,
    fig03_gini_vs_wealth,
    fig04_efficiency,
    fig05_06_convergence,
    fig07_08_gini_evolution,
    fig09_taxation,
    fig10_dynamic_spending,
    fig11_churn,
)
from repro.experiments.common import ExperimentResult, Scale

__all__ = [
    "EXPERIMENTS",
    "SWEEPS",
    "get_experiment",
    "get_sweep_runner",
    "run_experiment",
    "run_sweep_point",
    "describe_experiments",
]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "fig1": {
        "runner": fig01_spending_rates.run,
        "title": fig01_spending_rates.TITLE,
        "section": "III-A",
    },
    "fig2": {
        "runner": fig02_lorenz.run,
        "title": fig02_lorenz.TITLE,
        "section": "V-B1",
    },
    "fig3": {
        "runner": fig03_gini_vs_wealth.run,
        "title": fig03_gini_vs_wealth.TITLE,
        "section": "V-B2",
    },
    "fig4": {
        "runner": fig04_efficiency.run,
        "title": fig04_efficiency.TITLE,
        "section": "V-B3",
    },
    "fig5_6": {
        "runner": fig05_06_convergence.run,
        "title": fig05_06_convergence.TITLE,
        "section": "VI-A",
    },
    "fig7": {
        "runner": fig07_08_gini_evolution.run_symmetric,
        "title": fig07_08_gini_evolution.TITLE_SYMMETRIC,
        "section": "VI-A/B",
    },
    "fig8": {
        "runner": fig07_08_gini_evolution.run_asymmetric,
        "title": fig07_08_gini_evolution.TITLE_ASYMMETRIC,
        "section": "VI-B",
    },
    "fig9": {
        "runner": fig09_taxation.run,
        "title": fig09_taxation.TITLE,
        "section": "VI-C",
    },
    "fig10": {
        "runner": fig10_dynamic_spending.run,
        "title": fig10_dynamic_spending.TITLE,
        "section": "VI-D",
    },
    "fig11": {
        "runner": fig11_churn.run,
        "title": fig11_churn.TITLE,
        "section": "VI-E",
    },
}


# Parameterizable experiments: single-configuration "point" runners accepting
# sweep axes as keyword arguments.  `repro.runner` shards these over workers.
SWEEPS: Dict[str, Dict[str, object]] = {
    "fig3": {
        "runner": fig03_gini_vs_wealth.run_point,
        "params": fig03_gini_vs_wealth.SWEEP_PARAMS,
        "title": fig03_gini_vs_wealth.TITLE,
    },
    "fig9": {
        "runner": fig09_taxation.run_point,
        "params": fig09_taxation.SWEEP_PARAMS,
        "title": fig09_taxation.TITLE,
    },
    "fig11": {
        "runner": fig11_churn.run_point,
        "params": fig11_churn.SWEEP_PARAMS,
        "title": fig11_churn.TITLE,
    },
}


def get_sweep_runner(experiment_id: str) -> Runner:
    """Return the parameterizable point runner for ``experiment_id``.

    Raises ``KeyError`` when the experiment exists but has no sweepable
    point runner yet (only whole-figure replication is supported then).
    """
    try:
        return SWEEPS[experiment_id]["runner"]  # type: ignore[return-value]
    except KeyError as error:
        known = ", ".join(sorted(SWEEPS))
        raise KeyError(
            f"experiment {experiment_id!r} is not sweepable; sweepable ids: {known}"
        ) from error


def run_sweep_point(
    experiment_id: str,
    config: Dict[str, object],
    scale: str = Scale.DEFAULT,
    seed: int = 0,
) -> ExperimentResult:
    """Run one sweep shard: a point runner with ``config`` as keyword axes.

    An empty ``config`` runs the plain registry runner — the *whole*
    registered experiment — so ``--reps`` replicates exactly what a plain
    ``run`` executes; point runners are only used for explicit grid axes.
    """
    if not config:
        return run_experiment(experiment_id, scale=scale, seed=seed)
    runner = get_sweep_runner(experiment_id)
    allowed = set(SWEEPS[experiment_id]["params"])  # type: ignore[arg-type]
    unknown = sorted(set(config) - allowed)
    if unknown:
        raise KeyError(
            f"unknown sweep parameter(s) {unknown} for {experiment_id!r}; "
            f"sweepable parameters: {sorted(allowed)}"
        )
    return runner(scale=scale, seed=seed, **config)


def get_experiment(experiment_id: str) -> Runner:
    """Return the runner registered under ``experiment_id`` (KeyError when unknown)."""
    try:
        return EXPERIMENTS[experiment_id]["runner"]  # type: ignore[return-value]
    except KeyError as error:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from error


def run_experiment(
    experiment_id: str, scale: str = Scale.DEFAULT, seed: int = 0
) -> ExperimentResult:
    """Run the experiment registered under ``experiment_id``."""
    runner = get_experiment(experiment_id)
    return runner(scale=scale, seed=seed)


def describe_experiments() -> List[Dict[str, str]]:
    """List every registered experiment with its paper section and title."""
    return [
        {
            "id": experiment_id,
            "section": str(entry["section"]),
            "title": str(entry["title"]),
        }
        for experiment_id, entry in sorted(EXPERIMENTS.items())
    ]
