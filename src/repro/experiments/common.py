"""Shared infrastructure for experiment runners."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.records import ResultTable, SeriesRecord

__all__ = ["Scale", "ExperimentResult", "scale_parameters"]


class Scale(str, enum.Enum):
    """Size presets for experiment runs."""

    SMOKE = "smoke"
    DEFAULT = "default"
    PAPER = "paper"


@dataclass
class ExperimentResult:
    """Uniform result container produced by every experiment runner.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"fig3"``.
    title:
        Human-readable title matching the paper's figure caption.
    tables:
        Result tables (rows the paper's figure/table reports).
    series:
        Labelled series (curves of the paper's figure).
    metadata:
        Run parameters: scale, seed, populations, horizons, ...
    """

    experiment_id: str
    title: str
    tables: List[ResultTable] = field(default_factory=list)
    series: List[SeriesRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def table(self, title_fragment: Optional[str] = None) -> ResultTable:
        """Return the first table (or the first whose title contains the fragment)."""
        if not self.tables:
            raise ValueError(f"experiment {self.experiment_id} produced no tables")
        if title_fragment is None:
            return self.tables[0]
        for table in self.tables:
            if title_fragment.lower() in table.title.lower():
                return table
        raise KeyError(f"no table with {title_fragment!r} in its title")

    def series_by_label(self, label: str) -> SeriesRecord:
        """Return the series whose label matches exactly."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r}")

    def format(self) -> str:
        """Plain-text rendering of every table (benchmarks print this)."""
        parts = [f"== {self.title} =="]
        for table in self.tables:
            parts.append(table.format())
        if self.series and not self.tables:
            for series in self.series:
                parts.append(f"{series.label}: final={series.final_value():.4g}")
        return "\n\n".join(parts)


def scale_parameters(scale: Scale | str, smoke: dict, default: dict, paper: dict) -> dict:
    """Pick the parameter dictionary matching ``scale``."""
    scale = Scale(scale)
    if scale is Scale.SMOKE:
        return dict(smoke)
    if scale is Scale.PAPER:
        return dict(paper)
    return dict(default)
