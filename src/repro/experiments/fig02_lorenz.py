"""Fig. 2 — Lorenz curves of the equilibrium wealth marginal (Eq. 8).

The paper plots Lorenz curves of the marginal wealth PMF for three
(``M``, ``N``) combinations — (2000, 100), (25000, 50) and (50000, 50) —
and reads off that larger average wealth ``c = M / N`` yields a more skewed
distribution.

Two marginals are reported for each combination:

* ``eq8`` — the paper's multinomial approximation (Eq. 8), which is a
  Binomial(M, 1/N) distribution;
* ``exact`` — the exact closed-Jackson-network marginal under symmetric
  utilization (a Bose–Einstein occupancy distribution), computed in closed
  form.

The two disagree markedly: the binomial approximation concentrates around
the mean and its Gini *shrinks* toward 0 as ``c`` grows, while the exact
marginal stays broad (it approaches an exponential distribution whose Gini
is 0.5 regardless of ``c``).  The substantial skewness the paper's figure
shows therefore comes from the exact product-form equilibrium rather than
from Eq. (8) as literally written; the further *increase* of skewness with
``c`` that the paper reports requires heterogeneous utilizations and is
reproduced in Fig. 3.  Both marginals are returned so the discrepancy is
visible; EXPERIMENTS.md discusses it.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.core.metrics import gini_from_pmf, lorenz_curve_from_pmf
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.queueing.approximations import symmetric_marginal_pmf
from repro.utils.records import ResultTable, SeriesRecord

__all__ = ["run", "run_point", "exact_symmetric_marginal_pmf"]

EXPERIMENT_ID = "fig2"
TITLE = "Fig. 2 — Lorenz curves of the equilibrium wealth marginal (Eq. 8 vs exact)"

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = ("total_credits", "num_peers")


def _combination_outcome(total_jobs: int, num_peers: int):
    """Lorenz series and Gini row for one ``(M, N)`` combination."""
    label = f"M={total_jobs}, N={num_peers}"
    approx = symmetric_marginal_pmf(num_peers, total_jobs)
    exact = exact_symmetric_marginal_pmf(num_peers, total_jobs)
    series = []
    for kind, pmf in (("eq8", approx), ("exact", exact)):
        population, wealth = lorenz_curve_from_pmf(pmf)
        curve = SeriesRecord(label=f"{label} ({kind})")
        step = max(1, len(population) // 200)
        for x, y in zip(population[::step], wealth[::step]):
            curve.append(float(x), float(y))
        curve.append(float(population[-1]), float(wealth[-1]))
        series.append(curve)
    row = dict(
        combination=label,
        total_credits_M=total_jobs,
        num_peers_N=num_peers,
        average_wealth_c=total_jobs / num_peers,
        gini_eq8=gini_from_pmf(approx),
        gini_exact=gini_from_pmf(exact),
    )
    return series, row


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    total_credits: int = 2000,
    num_peers: int = 100,
) -> ExperimentResult:
    """Evaluate a single ``(M, N)`` combination of Fig. 2 as a sweep shard.

    The computation is fully analytic (no RNG); ``seed`` is accepted for
    interface uniformity only, so replications of a point are identical.
    """
    total_credits = int(round(float(total_credits)))
    num_peers = int(num_peers)
    metadata = dict(
        scale=str(scale), seed=seed, total_credits=total_credits, num_peers=num_peers
    )
    series, row = _combination_outcome(total_credits, num_peers)
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(**row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=metadata,
    )


def exact_symmetric_marginal_pmf(num_peers: int, total_jobs: int) -> np.ndarray:
    """Exact marginal wealth PMF of a symmetric closed Jackson network.

    With all utilizations equal, the product-form joint distribution is
    uniform over the compositions of ``M`` jobs into ``N`` queues, so

        P(B_i = b) = C(M - b + N - 2, N - 2) / C(M + N - 1, N - 1),

    the Bose–Einstein occupancy law.  Computed in log space for large M.
    """
    num_peers = int(num_peers)
    total_jobs = int(total_jobs)
    if num_peers < 2:
        raise ValueError("num_peers must be at least 2 for the marginal to be non-trivial")
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    support = np.arange(total_jobs + 1)
    log_num = special.gammaln(total_jobs - support + num_peers - 1) - (
        special.gammaln(total_jobs - support + 1) + special.gammaln(num_peers - 1)
    )
    log_den = special.gammaln(total_jobs + num_peers) - (
        special.gammaln(total_jobs + 1) + special.gammaln(num_peers)
    )
    pmf = np.exp(log_num - log_den)
    pmf = np.clip(pmf, 0.0, None)
    return pmf / pmf.sum()


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Compute Lorenz curves and Gini indices for the paper's three (M, N) settings."""
    params = scale_parameters(
        scale,
        smoke=dict(combinations=[(200, 20), (1000, 10)]),
        default=dict(combinations=[(2000, 100), (25000, 50), (50000, 50)]),
        paper=dict(combinations=[(2000, 100), (25000, 50), (50000, 50)]),
    )

    table = ResultTable(title=TITLE, metadata=dict(scale=str(scale)))
    series = []
    for total_jobs, num_peers in params["combinations"]:
        combo_series, row = _combination_outcome(total_jobs, num_peers)
        series.extend(combo_series)
        table.add_row(**row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(scale=str(scale)),
    )
