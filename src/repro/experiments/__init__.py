"""Experiment runners: one per figure of the paper's evaluation.

Every module ``figNN_*`` exposes a ``run(scale=..., seed=...)`` function
returning an :class:`~repro.experiments.common.ExperimentResult`; the
registry maps experiment ids (``"fig1"`` ... ``"fig11"``) to those
runners so benchmarks, tests and the command line can invoke them
uniformly.

Scales
------
``smoke``
    Seconds-scale configurations used by unit tests.
``default``
    The benchmark configurations: small enough to run the full suite in
    minutes, large enough to exhibit every qualitative effect.
``paper``
    Populations and horizons matching the paper's Sec. VI settings (500 or
    1000 peers, tens of thousands of simulated seconds); expect long runs.
"""

from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.experiments.registry import (
    EXPERIMENTS,
    SWEEPS,
    describe_experiments,
    get_experiment,
    get_sweep_runner,
    run_experiment,
    run_sweep_point,
    sweep_params,
    validate_sweep_config,
)

__all__ = [
    "ExperimentResult",
    "Scale",
    "scale_parameters",
    "EXPERIMENTS",
    "SWEEPS",
    "describe_experiments",
    "get_experiment",
    "get_sweep_runner",
    "run_experiment",
    "run_sweep_point",
    "sweep_params",
    "validate_sweep_config",
]
