"""Fig. 11 — impact of peer dynamics (churn) on the credit distribution.

Sec. VI-E studies dynamic overlays — peers arrive as a Poisson process,
receive ``c`` fresh credits, live an exponential time and take their
credits away on departure (an open Jackson network).  Three sub-figures:

1. **fixed overlay size** — arrival rate × lifespan held constant: dynamic
   overlays end up with *smaller* Gini indices than a static overlay of the
   same size (peers leave before accumulating extreme wealth);
2. **fixed mean lifespan** — varying arrival rate has little effect on the
   skewness;
3. **fixed arrival rate** — longer lifespans raise the skewness (rich peers
   have more time to get richer).

The runner reproduces all three sweeps with the transaction-level market
simulator and reports the stabilized Gini index for each setting.  At the
``default`` scale the overlay holds a few hundred peers instead of 1000,
with the arrival rates scaled accordingly (lifespans keep the paper's
values so the sub-figure structure is recognisable).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.overlay.churn import ChurnConfig
from repro.p2psim.config import MarketSimConfig, StreamingSimConfig, UtilizationMode
from repro.p2psim.options import KernelOptions
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.p2psim.streaming_sim import StreamingMarketSimulator
from repro.utils.records import ResultTable

__all__ = ["run", "run_point"]

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11 — impact of peer dynamics on the skewness of the credit distribution"

#: Simulators `run_point` accepts for its ``simulator`` axis.
SIMULATORS = ("market", "streaming")

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = (
    "mean_lifespan",
    "rate_factor",
    "arrival_rate",
    "num_peers",
    "horizon",
    "simulator",
    "kernel",
    "dtype",
)


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    mean_lifespan: float | None = None,
    rate_factor: float = 1.0,
    arrival_rate: float | None = None,
    num_peers: int | None = None,
    horizon: float | None = None,
    simulator: str = "market",
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Run one churn setting of the Fig. 11 study as a sweepable grid point.

    ``mean_lifespan=None`` simulates the static overlay (no churn).  With a
    lifespan, the arrival rate defaults to ``rate_factor × population /
    mean_lifespan`` — ``rate_factor=1`` keeps the expected overlay size
    equal to the static population — or can be fixed directly with
    ``arrival_rate``.  ``simulator="streaming"`` runs the chunk-level
    streaming market under churn instead of the transaction-level one, and
    ``kernel`` selects either simulator's batched (``"vectorized"``) or
    per-peer (``"loop"``) round implementation — bit-identical results
    either way — while ``dtype`` picks the state representation
    (``float64``/``float32``).
    """
    simulator = str(simulator)
    if simulator not in SIMULATORS:
        raise ValueError(
            f"unknown simulator {simulator!r}; known simulators: {', '.join(SIMULATORS)}"
        )
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=60, initial_credits=20.0, horizon=500.0, step=2.0),
        default=dict(num_peers=200, initial_credits=100.0, horizon=6000.0, step=2.5),
        paper=dict(num_peers=1000, initial_credits=100.0, horizon=8000.0, step=1.0),
    )
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        params["horizon"] = float(horizon)

    if mean_lifespan is None:
        if arrival_rate is not None:
            raise ValueError(
                "arrival_rate requires mean_lifespan (a static overlay has no arrivals)"
            )
        if float(rate_factor) != 1.0:
            raise ValueError(
                "rate_factor requires mean_lifespan (a static overlay has no arrivals)"
            )
        churn: Optional[ChurnConfig] = None
        label = "static topology"
        rate = 0.0
    else:
        mean_lifespan = float(mean_lifespan)
        if arrival_rate is not None:
            rate = float(arrival_rate)
        else:
            rate = float(rate_factor) * params["num_peers"] / mean_lifespan
        churn = ChurnConfig(arrival_rate=rate, mean_lifespan=mean_lifespan)
        label = f"lifespan={mean_lifespan:.0f}s, arr. rate={rate:.2g}/s"

    outcome = _run_single(
        params, churn, label, seed, simulator=simulator, kernel=kernel, dtype=dtype
    )
    metadata = dict(
        params,
        scale=str(scale),
        seed=seed,
        mean_lifespan=mean_lifespan,
        arrival_rate=rate,
        rate_factor=float(rate_factor),
        simulator=simulator,
        kernel=kernel,
        dtype=dtype,
    )
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(
        setting=label,
        mean_lifespan=0.0 if mean_lifespan is None else mean_lifespan,
        arrival_rate=rate,
        stabilized_gini=outcome["stabilized_gini"],
        final_gini=outcome["final_gini"],
        final_population=outcome["final_population"],
        joins=outcome["joins"],
        leaves=outcome["leaves"],
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[outcome["series"]],
        metadata=metadata,
    )


def _run_single(
    params: dict,
    churn: Optional[ChurnConfig],
    label: str,
    seed: int,
    simulator: str = "market",
    kernel: str | None = None,
    dtype: str | None = None,
) -> dict:
    """Run one churn setting and summarise it."""
    options = KernelOptions.resolve(kernel=kernel, dtype=dtype)
    if simulator == "streaming":
        streaming_config = StreamingSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=params["horizon"],
            churn=churn,
            sample_interval=max(1.0, params["horizon"] / 80.0),
            seed=seed,
            options=options,
        )
        result = StreamingMarketSimulator.run_config(streaming_config)
    else:
        config = MarketSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=params["horizon"],
            step=params["step"],
            utilization=UtilizationMode.ASYMMETRIC,
            churn=churn,
            sample_interval=max(params["step"], params["horizon"] / 80.0),
            seed=seed,
            options=options,
        )
        result = CreditMarketSimulator.run_config(config)
    gini_series = result.recorder.gini_series
    gini_series.label = label
    return {
        "label": label,
        "series": gini_series,
        "stabilized_gini": result.stabilized_gini,
        "final_gini": result.final_gini,
        "final_population": result.extras["final_population"],
        "joins": result.joins,
        "leaves": result.leaves,
    }


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Run the three churn sweeps of Fig. 11."""
    params = scale_parameters(
        scale,
        smoke=dict(
            num_peers=60,
            initial_credits=20.0,
            horizon=500.0,
            step=2.0,
            population=60,
            lifespans=[250.0, 500.0],
            arrival_scale=60,
        ),
        default=dict(
            num_peers=200,
            initial_credits=100.0,
            horizon=6000.0,
            step=2.5,
            population=200,
            lifespans=[500.0, 1000.0, 2000.0],
            arrival_scale=200,
        ),
        paper=dict(
            num_peers=1000,
            initial_credits=100.0,
            horizon=8000.0,
            step=1.0,
            population=1000,
            lifespans=[500.0, 1000.0, 2000.0],
            arrival_scale=1000,
        ),
    )

    population = params["population"]
    tables = []
    series = []
    metadata = dict(params, scale=str(scale), seed=seed)

    # -- sub-figure (1): fixed overlay size -----------------------------------------
    table1 = ResultTable(
        title="Fig. 11(1) — fixed overlay size (arrival rate x lifespan = size)",
        metadata=metadata,
    )
    settings1 = [("static topology", None)]
    for lifespan in params["lifespans"][:2]:
        rate = population / lifespan
        settings1.append(
            (
                f"lifespan={lifespan:.0f}s, arr. rate={rate:.2g}/s",
                ChurnConfig(arrival_rate=rate, mean_lifespan=lifespan),
            )
        )
    for label, churn in settings1:
        outcome = _run_single(params, churn, label, seed)
        series.append(outcome["series"])
        table1.add_row(
            setting=label,
            stabilized_gini=outcome["stabilized_gini"],
            final_population=outcome["final_population"],
            joins=outcome["joins"],
            leaves=outcome["leaves"],
        )
    tables.append(table1)

    # -- sub-figure (2): fixed mean lifespan, varying arrival rate ------------------
    base_lifespan = params["lifespans"][0]
    table2 = ResultTable(
        title=f"Fig. 11(2) — fixed mean lifespan ({base_lifespan:.0f}s), varying arrival rate",
        metadata=metadata,
    )
    base_rate = population / base_lifespan
    for factor in (1.0, 2.0, 4.0):
        rate = base_rate * factor
        label = f"lifespan={base_lifespan:.0f}s, arr. rate={rate:.2g}/s"
        outcome = _run_single(
            params, ChurnConfig(arrival_rate=rate, mean_lifespan=base_lifespan), label, seed
        )
        series.append(outcome["series"])
        table2.add_row(
            setting=label,
            arrival_rate=rate,
            stabilized_gini=outcome["stabilized_gini"],
            final_population=outcome["final_population"],
        )
    tables.append(table2)

    # -- sub-figure (3): fixed arrival rate, varying lifespan -----------------------
    table3 = ResultTable(
        title="Fig. 11(3) — fixed arrival rate, varying mean lifespan", metadata=metadata
    )
    for lifespan in params["lifespans"]:
        label = f"lifespan={lifespan:.0f}s, arr. rate={base_rate:.2g}/s"
        outcome = _run_single(
            params, ChurnConfig(arrival_rate=base_rate, mean_lifespan=lifespan), label, seed
        )
        series.append(outcome["series"])
        table3.add_row(
            setting=label,
            mean_lifespan=lifespan,
            stabilized_gini=outcome["stabilized_gini"],
            final_population=outcome["final_population"],
        )
    tables.append(table3)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=tables,
        series=series,
        metadata=metadata,
    )
