"""Fig. 10 — static vs dynamic (wealth-proportional) spending rates.

Sec. VI-D of the paper lets a peer raise its maximum spending rate in
proportion to its wealth once the wealth exceeds a threshold ``m``
(``μ_i = μ_i^s B_i / m`` for ``B_i > m``).  The stabilized Gini index under
this dynamic adjustment is smaller than with fixed spending rates: rich
peers recirculate their surplus instead of hoarding it.
"""

from __future__ import annotations

from repro.core.spending import DynamicSpendingPolicy, FixedSpendingPolicy
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.utils.records import ResultTable

__all__ = ["run"]

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10 — static vs dynamic spending rates"


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Compare fixed spending rates against the wealth-proportional adjustment."""
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=60, horizon=400.0, step=2.0, initial_credits=30.0),
        default=dict(num_peers=200, horizon=5000.0, step=2.0, initial_credits=100.0),
        paper=dict(num_peers=1000, horizon=40000.0, step=1.0, initial_credits=100.0),
    )
    threshold = params["initial_credits"]

    policies = {
        "without adjustment": FixedSpendingPolicy(),
        "with adjustment": DynamicSpendingPolicy(wealth_threshold=threshold),
    }

    table = ResultTable(title=TITLE, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for label, policy in policies.items():
        config = MarketSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=params["horizon"],
            step=params["step"],
            utilization=UtilizationMode.ASYMMETRIC,
            spending_policy=policy,
            sample_interval=max(params["step"], params["horizon"] / 100.0),
            seed=seed,
        )
        result = CreditMarketSimulator.run_config(config)
        gini_series = result.recorder.gini_series
        gini_series.label = label
        series.append(gini_series)
        table.add_row(
            spending_policy=label,
            stabilized_gini=result.stabilized_gini,
            final_gini=result.final_gini,
            total_transfers=result.total_transfers,
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed, spending_threshold_m=threshold),
    )
