"""Fig. 10 — static vs dynamic (wealth-proportional) spending rates.

Sec. VI-D of the paper lets a peer raise its maximum spending rate in
proportion to its wealth once the wealth exceeds a threshold ``m``
(``μ_i = μ_i^s B_i / m`` for ``B_i > m``).  The stabilized Gini index under
this dynamic adjustment is smaller than with fixed spending rates: rich
peers recirculate their surplus instead of hoarding it.
"""

from __future__ import annotations

from repro.core.spending import DynamicSpendingPolicy, FixedSpendingPolicy
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.p2psim.options import KernelOptions
from repro.utils.records import ResultTable

__all__ = ["run", "run_point", "SPENDING_POLICIES"]

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10 — static vs dynamic spending rates"

#: Spending policies `run_point` accepts for its ``spending_policy`` axis.
SPENDING_POLICIES = ("fixed", "dynamic")

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = (
    "spending_policy",
    "wealth_threshold",
    "initial_credits",
    "num_peers",
    "horizon",
    "kernel",
    "dtype",
)


def _scale_params(scale: str) -> dict:
    return scale_parameters(
        scale,
        smoke=dict(num_peers=60, horizon=400.0, step=2.0, initial_credits=30.0),
        default=dict(num_peers=200, horizon=5000.0, step=2.0, initial_credits=100.0),
        paper=dict(num_peers=1000, horizon=40000.0, step=1.0, initial_credits=100.0),
    )


def _run_policy(
    params: dict,
    policy,
    label: str,
    seed: int,
    kernel: str | None = None,
    dtype: str | None = None,
) -> dict:
    """Run one spending-policy market and summarise it."""
    config = MarketSimConfig(
        num_peers=params["num_peers"],
        initial_credits=params["initial_credits"],
        horizon=params["horizon"],
        step=params["step"],
        utilization=UtilizationMode.ASYMMETRIC,
        spending_policy=policy,
        sample_interval=max(params["step"], params["horizon"] / 100.0),
        seed=seed,
        options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
    )
    result = CreditMarketSimulator.run_config(config)
    gini_series = result.recorder.gini_series
    gini_series.label = label
    return {
        "series": gini_series,
        "row": dict(
            spending_policy=label,
            stabilized_gini=result.stabilized_gini,
            final_gini=result.final_gini,
            total_transfers=result.total_transfers,
        ),
    }


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    spending_policy: str = "dynamic",
    wealth_threshold: float | None = None,
    initial_credits: float | None = None,
    num_peers: int | None = None,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Run one spending-policy grid point of the Fig. 10 study.

    ``spending_policy`` is ``"fixed"`` (no adjustment) or ``"dynamic"``
    (wealth-proportional adjustment above ``wealth_threshold``, the
    paper's ``m``); the threshold defaults to the initial wealth as in the
    paper.  Initial wealth, population and horizon default to the scale
    preset.  ``kernel`` selects the round implementation (``vectorized``/
    ``loop``, bit-identical) and ``dtype`` the state representation
    (``float64``/``float32``).
    """
    params = _scale_params(scale)
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        params["horizon"] = float(horizon)
    if initial_credits is not None:
        params["initial_credits"] = float(initial_credits)
    spending_policy = str(spending_policy)

    if spending_policy == "fixed":
        # The threshold is meaningless without the dynamic adjustment; keep
        # it out of the label/metadata so two fixed-policy rows never differ
        # only in an ignored knob.
        policy = FixedSpendingPolicy()
        wealth_threshold = None
        label = "fixed"
    elif spending_policy == "dynamic":
        if wealth_threshold is None:
            wealth_threshold = params["initial_credits"]
        wealth_threshold = float(wealth_threshold)
        policy = DynamicSpendingPolicy(wealth_threshold=wealth_threshold)
        label = f"dynamic (m={wealth_threshold:g})"
    else:
        raise ValueError(
            f"unknown spending_policy {spending_policy!r}; "
            f"known policies: {', '.join(SPENDING_POLICIES)}"
        )

    outcome = _run_policy(params, policy, label, seed, kernel=kernel, dtype=dtype)
    metadata = dict(
        params,
        scale=str(scale),
        seed=seed,
        spending_policy=spending_policy,
        spending_threshold_m=wealth_threshold,
        kernel=kernel,
        dtype=dtype,
    )
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(**outcome["row"])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[outcome["series"]],
        metadata=metadata,
    )


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Compare fixed spending rates against the wealth-proportional adjustment."""
    params = _scale_params(scale)
    threshold = params["initial_credits"]

    policies = {
        "without adjustment": FixedSpendingPolicy(),
        "with adjustment": DynamicSpendingPolicy(wealth_threshold=threshold),
    }

    table = ResultTable(title=TITLE, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for label, policy in policies.items():
        outcome = _run_policy(params, policy, label, seed)
        series.append(outcome["series"])
        table.add_row(**outcome["row"])

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed, spending_threshold_m=threshold),
    )
