"""Figs. 7 and 8 — evolution of the Gini index for different average wealths.

Sec. VI-B of the paper tracks the Gini index of the credit distribution
over time for average wealths ``c ∈ {50, 100, 200}``:

* Fig. 7 — symmetric utilization (``ū = {1, ..., 1}``): the Gini index
  always converges regardless of the initial credit amount;
* Fig. 8 — asymmetric utilization: the Gini also converges, and the larger
  ``c`` is, the larger the stabilized Gini index.

Both figures share a runner parameterised by the utilization mode.  The
returned series are the Gini-index trajectories (one per ``c``); the table
reports the stabilized Gini, a convergence flag and the bankrupt fraction.

Reproduction notes:

* A market whose utilizations are *exactly* symmetric converges to the
  Bose–Einstein equilibrium whose Gini is ≈ 0.5 for every ``c``, so the
  visible ordering by ``c`` in the paper's Fig. 7 requires the small
  utilization heterogeneity that a real protocol inevitably realises.  The
  Fig. 7 runner therefore applies a 5% realised spending-rate noise on top
  of the symmetric configuration (``spending_rate_noise=0.05``); Fig. 8
  uses the fully heterogeneous (asymmetric) configuration with no extra
  noise.  EXPERIMENTS.md discusses the sensitivity.
* The time to reach the equilibrium grows with ``c`` (the wealth profile
  has to spread/condense over a range proportional to ``c``), so at the
  ``default`` scale the horizon of each run scales linearly with ``c``
  (the paper instead uses one long 40000 s horizon for all three curves).
"""

from __future__ import annotations

from repro.core.metrics import bankruptcy_fraction
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.options import KernelOptions
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.utils.records import ResultTable

__all__ = [
    "run_symmetric",
    "run_asymmetric",
    "run_gini_evolution",
    "run_point_symmetric",
    "run_point_asymmetric",
]

TITLE_SYMMETRIC = "Fig. 7 — Gini evolution, symmetric utilization"
TITLE_ASYMMETRIC = "Fig. 8 — Gini evolution, asymmetric utilization"

#: Parameters the `run_point_*` runners accept as sweep axes.
SWEEP_PARAMS = ("average_wealth", "num_peers", "horizon", "kernel", "dtype")


def _scale_params(scale: str) -> dict:
    return scale_parameters(
        scale,
        smoke=dict(
            num_peers=60, horizon_per_wealth=12.0, min_horizon=300.0, step=2.0,
            wealth_levels=[10, 30],
        ),
        default=dict(
            num_peers=200, horizon_per_wealth=60.0, min_horizon=3000.0, step=2.0,
            wealth_levels=[50, 100, 200],
        ),
        paper=dict(
            num_peers=1000, horizon_per_wealth=200.0, min_horizon=40000.0, step=1.0,
            wealth_levels=[50, 100, 200],
        ),
    )


def _run_one_wealth(
    params: dict,
    utilization: UtilizationMode,
    wealth: float,
    seed: int,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> dict:
    """Run one (utilization, average wealth) market and summarise it."""
    symmetric = utilization is UtilizationMode.SYMMETRIC
    if horizon is None:
        horizon = max(params["min_horizon"], params["horizon_per_wealth"] * float(wealth))
    config = MarketSimConfig(
        num_peers=params["num_peers"],
        initial_credits=float(wealth),
        horizon=horizon,
        step=params["step"],
        utilization=utilization,
        spending_rate_noise=0.05 if symmetric else 0.0,
        sample_interval=max(params["step"], horizon / 120.0),
        seed=seed,
        options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
    )
    result = CreditMarketSimulator.run_config(config)
    gini_series = result.recorder.gini_series
    gini_series.label = f"c={wealth:g}"
    return {
        "series": gini_series,
        "horizon": horizon,
        "row": dict(
            average_wealth_c=float(wealth),
            stabilized_gini=result.stabilized_gini,
            final_gini=result.final_gini,
            converged=result.recorder.has_converged(),
            bankrupt_fraction=bankruptcy_fraction(result.final_wealths),
            total_transfers=result.total_transfers,
        ),
    }


def _run_point(
    utilization: UtilizationMode,
    scale: str,
    seed: int,
    average_wealth: float,
    num_peers: int | None,
    horizon: float | None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Shared point-runner implementation for the Fig. 7/8 sweep axes."""
    params = _scale_params(scale)
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        horizon = float(horizon)
    average_wealth = float(average_wealth)
    symmetric = utilization is UtilizationMode.SYMMETRIC
    title = TITLE_SYMMETRIC if symmetric else TITLE_ASYMMETRIC
    experiment_id = "fig7" if symmetric else "fig8"

    outcome = _run_one_wealth(
        params, utilization, average_wealth, seed, horizon=horizon,
        kernel=kernel, dtype=dtype,
    )
    metadata = dict(
        params,
        scale=str(scale),
        seed=seed,
        average_wealth=average_wealth,
        horizon=outcome["horizon"],
        utilization=utilization.value,
        kernel=kernel,
        dtype=dtype,
    )
    table = ResultTable(title=title, metadata=metadata)
    table.add_row(**outcome["row"])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        tables=[table],
        series=[outcome["series"]],
        metadata=metadata,
    )


def run_point_symmetric(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    average_wealth: float = 100.0,
    num_peers: int | None = None,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Fig. 7 sweep shard: one average wealth under symmetric utilization.

    ``horizon`` defaults to the scale preset's wealth-proportional horizon
    (``max(min_horizon, horizon_per_wealth * c)``); ``kernel`` / ``dtype``
    select the shared kernel options of the market simulator.
    """
    return _run_point(
        UtilizationMode.SYMMETRIC, scale, seed, average_wealth, num_peers, horizon,
        kernel=kernel, dtype=dtype,
    )


def run_point_asymmetric(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    average_wealth: float = 100.0,
    num_peers: int | None = None,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Fig. 8 sweep shard: one average wealth under asymmetric utilization."""
    return _run_point(
        UtilizationMode.ASYMMETRIC, scale, seed, average_wealth, num_peers, horizon,
        kernel=kernel, dtype=dtype,
    )


def run_gini_evolution(
    utilization: UtilizationMode,
    scale: str = Scale.DEFAULT,
    seed: int = 0,
) -> ExperimentResult:
    """Shared implementation for Figs. 7 and 8."""
    params = _scale_params(scale)
    symmetric = utilization is UtilizationMode.SYMMETRIC
    title = TITLE_SYMMETRIC if symmetric else TITLE_ASYMMETRIC
    experiment_id = "fig7" if symmetric else "fig8"

    table = ResultTable(title=title, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for wealth in params["wealth_levels"]:
        outcome = _run_one_wealth(params, utilization, wealth, seed)
        series.append(outcome["series"])
        table.add_row(**outcome["row"])

    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed, utilization=utilization.value),
    )


def run_symmetric(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Fig. 7 — symmetric utilization."""
    return run_gini_evolution(UtilizationMode.SYMMETRIC, scale=scale, seed=seed)


def run_asymmetric(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Fig. 8 — asymmetric utilization."""
    return run_gini_evolution(UtilizationMode.ASYMMETRIC, scale=scale, seed=seed)
