"""Fig. 1 — credit spending-rate distributions with and without condensation.

The paper's motivating experiment (Sec. III-A): a mesh P2P live-streaming
swarm on a scale-free overlay is run for a long time in two configurations:

* **case A (condensation)** — large initial wealth (paper: ``c = 200``) and
  non-uniform chunk prices, Poisson-distributed with a mean of 1 credit;
  the credit distribution condenses (Gini ≈ 0.9) and most peers end up
  with very low credit spending (= download) rates;
* **case B (healthy)** — small initial wealth (paper: ``c = 12``) and
  uniform pricing at 1 credit per chunk; spending rates stay balanced
  (Gini ≈ 0.1).

The runner reproduces both cases with the chunk-level streaming simulator
and reports the per-peer spending-rate profile and its Gini index.  The
``default`` scale shrinks the population and horizon (and the case-A wealth
proportionally) so the benchmark completes in about a minute; the shape —
case A's spending-rate Gini far above case B's, and case A's mean spending
rate depressed — is preserved.

Interpretation note: the paper says peers "charge different credits for
selling different chunks, which follow a Poisson distribution with an
average of 1 credit per chunk".  We realise this as a per-seller flat price
drawn from a shifted Poisson with mean 1 (so every seller has a stable,
heterogeneous price), which is the reading that produces sustained income
asymmetry and hence condensation; the per-(seller, chunk) variant is
available as :class:`repro.core.pricing.PoissonPricing` and is exercised in
the pricing ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics import gini_index, wealth_summary
from repro.core.pricing import PerPeerFlatPricing, UniformPricing
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import StreamingSimConfig
from repro.p2psim.streaming_sim import StreamingMarketSimulator
from repro.utils.records import ResultTable, SeriesRecord
from repro.utils.rng import make_rng

__all__ = ["run"]

EXPERIMENT_ID = "fig1"
TITLE = "Fig. 1 — Distribution of credit spending rates, with and without condensation"


def _poisson_seller_prices(num_peers: int, mean_price: float, seed: int) -> PerPeerFlatPricing:
    """Per-seller flat prices ``1 + Poisson(mean_price - 1)`` (mean ``mean_price``)."""
    rng = make_rng(seed, "fig1-prices")
    prices = {
        peer: 1.0 + float(rng.poisson(max(0.0, mean_price - 1.0)))
        for peer in range(num_peers)
    }
    return PerPeerFlatPricing(prices)


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Run both Fig. 1 cases and return spending-rate profiles and Gini indices."""
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=40, horizon=150.0, wealth_condensed=30.0, wealth_healthy=8.0),
        default=dict(num_peers=80, horizon=1600.0, wealth_condensed=60.0, wealth_healthy=12.0),
        paper=dict(num_peers=500, horizon=20000.0, wealth_condensed=200.0, wealth_healthy=12.0),
    )

    cases = {
        "condensed (non-uniform prices)": dict(
            initial_credits=params["wealth_condensed"],
            pricing=_poisson_seller_prices(params["num_peers"], 2.0, seed),
        ),
        "healthy (uniform prices)": dict(
            initial_credits=params["wealth_healthy"],
            pricing=UniformPricing(1.0),
        ),
    }

    table = ResultTable(title=TITLE, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for label, case in cases.items():
        config = StreamingSimConfig(
            num_peers=params["num_peers"],
            initial_credits=case["initial_credits"],
            horizon=params["horizon"],
            pricing=case["pricing"],
            upload_capacity=1,
            seed_fanout=max(4, params["num_peers"] // 7),
            sample_interval=max(10.0, params["horizon"] / 20.0),
            seed=seed,
        )
        result = StreamingMarketSimulator.run_config(config)
        rates = np.sort(result.spending_rates)
        profile = SeriesRecord(label=f"spending rates — {label}")
        for index, rate in enumerate(rates):
            profile.append(float(index), float(rate))
        series.append(profile)
        summary = wealth_summary(result.final_wealths)
        table.add_row(
            case=label,
            initial_credits=case["initial_credits"],
            spending_rate_gini=gini_index(result.spending_rates),
            wealth_gini=summary["gini"],
            mean_spending_rate=float(np.mean(result.spending_rates)),
            mean_continuity=float(np.mean(result.continuity)),
            bankrupt_fraction=summary["bankrupt_fraction"],
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed),
    )
