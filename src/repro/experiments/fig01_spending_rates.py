"""Fig. 1 — credit spending-rate distributions with and without condensation.

The paper's motivating experiment (Sec. III-A): a mesh P2P live-streaming
swarm on a scale-free overlay is run for a long time in two configurations:

* **case A (condensation)** — large initial wealth (paper: ``c = 200``) and
  non-uniform chunk prices, Poisson-distributed with a mean of 1 credit;
  the credit distribution condenses (Gini ≈ 0.9) and most peers end up
  with very low credit spending (= download) rates;
* **case B (healthy)** — small initial wealth (paper: ``c = 12``) and
  uniform pricing at 1 credit per chunk; spending rates stay balanced
  (Gini ≈ 0.1).

The runner reproduces both cases with the chunk-level streaming simulator
and reports the per-peer spending-rate profile and its Gini index.  The
``default`` scale shrinks the population and horizon (and the case-A wealth
proportionally) so the benchmark completes in about a minute; the shape —
case A's spending-rate Gini far above case B's, and case A's mean spending
rate depressed — is preserved.

Interpretation note: the paper says peers "charge different credits for
selling different chunks, which follow a Poisson distribution with an
average of 1 credit per chunk".  We realise this as a per-seller flat price
drawn from ``Poisson(1)`` — mean exactly the documented 1 credit — so every
seller has a stable, heterogeneous price, which is the reading that
produces sustained income asymmetry and hence condensation.  The draw
includes zero-price sellers (~37% at mean 1): they give chunks away, earn
nothing, and deepen the income asymmetry driving case A.  The
per-(seller, chunk) variant is available as
:class:`repro.core.pricing.PoissonPricing` and is exercised in the pricing
ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import gini_index, wealth_summary
from repro.core.pricing import PerPeerFlatPricing, PricingScheme, UniformPricing
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import StreamingSimConfig
from repro.p2psim.options import KernelOptions
from repro.p2psim.streaming_sim import StreamingMarketSimulator
from repro.utils.records import ResultTable, SeriesRecord
from repro.utils.rng import make_rng

__all__ = ["run", "run_point", "MEAN_CHUNK_PRICE", "PRICING_MODELS"]

EXPERIMENT_ID = "fig1"
TITLE = "Fig. 1 — Distribution of credit spending rates, with and without condensation"

#: The paper's documented average chunk price: "a Poisson distribution with
#: an average of 1 credit per chunk".  Both pricing models realise this mean.
MEAN_CHUNK_PRICE = 1.0

#: Pricing models `run_point` accepts for its ``pricing_model`` axis.
PRICING_MODELS = ("uniform", "poisson-seller")

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = (
    "initial_credits",
    "pricing_model",
    "mean_price",
    "num_peers",
    "horizon",
    "kernel",
    "dtype",
)


def _poisson_seller_prices(num_peers: int, mean_price: float, seed: int) -> PerPeerFlatPricing:
    """Per-seller flat prices drawn from ``Poisson(mean_price)``.

    The realised mean matches the documented average price (the paper's
    1 credit); zero-price sellers are kept — they earn nothing, which is
    part of the income asymmetry behind condensation.
    """
    rng = make_rng(seed, "fig1-prices")
    prices = {peer: float(rng.poisson(mean_price)) for peer in range(num_peers)}
    return PerPeerFlatPricing(prices)


def _make_pricing(pricing_model: str, mean_price: float, num_peers: int, seed: int) -> PricingScheme:
    """Instantiate the pricing scheme for one Fig. 1 case."""
    if pricing_model == "uniform":
        return UniformPricing(mean_price)
    if pricing_model == "poisson-seller":
        return _poisson_seller_prices(num_peers, mean_price, seed)
    raise ValueError(
        f"unknown pricing_model {pricing_model!r}; known models: {', '.join(PRICING_MODELS)}"
    )


def _run_case(
    params: dict,
    initial_credits: float,
    pricing: PricingScheme,
    seed: int,
    kernel: str | None = None,
    dtype: str | None = None,
) -> dict:
    """Run one streaming-market configuration and summarise it."""
    config = StreamingSimConfig(
        num_peers=params["num_peers"],
        initial_credits=initial_credits,
        horizon=params["horizon"],
        pricing=pricing,
        upload_capacity=1,
        seed_fanout=max(4, params["num_peers"] // 7),
        sample_interval=max(10.0, params["horizon"] / 20.0),
        seed=seed,
        options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
    )
    result = StreamingMarketSimulator.run_config(config)
    summary = wealth_summary(result.final_wealths)
    return {
        "result": result,
        "spending_rate_gini": gini_index(result.spending_rates),
        "wealth_gini": summary["gini"],
        "mean_spending_rate": float(np.mean(result.spending_rates)),
        "mean_continuity": float(np.mean(result.continuity)),
        "bankrupt_fraction": summary["bankrupt_fraction"],
    }


def _profile_series(label: str, spending_rates: np.ndarray) -> SeriesRecord:
    """Sorted per-peer spending-rate profile as a plottable series."""
    profile = SeriesRecord(label=label)
    for index, rate in enumerate(np.sort(spending_rates)):
        profile.append(float(index), float(rate))
    return profile


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    initial_credits: float | None = None,
    pricing_model: str = "uniform",
    mean_price: float = MEAN_CHUNK_PRICE,
    num_peers: int | None = None,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Run a single Fig. 1 streaming-market configuration as a sweep shard.

    The sweep axes cross the paper's two levers — initial wealth and the
    pricing model (``uniform`` vs ``poisson-seller``) — plus the mean
    chunk price, the usual population/horizon knobs and the shared kernel
    options: the streaming scheduling ``kernel`` (``vectorized``/``loop``,
    bit-identical results) and the state ``dtype`` (``float64``/
    ``float32``; the narrow dtype is statistically, not bitwise,
    equivalent).  ``initial_credits`` defaults to the scale preset's
    healthy-case wealth.
    """
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=40, horizon=150.0, wealth_condensed=30.0, wealth_healthy=8.0),
        default=dict(num_peers=80, horizon=1600.0, wealth_condensed=60.0, wealth_healthy=12.0),
        paper=dict(num_peers=500, horizon=20000.0, wealth_condensed=200.0, wealth_healthy=12.0),
    )
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        params["horizon"] = float(horizon)
    if initial_credits is None:
        initial_credits = params["wealth_healthy"]
    initial_credits = float(initial_credits)
    mean_price = float(mean_price)
    pricing_model = str(pricing_model)

    pricing = _make_pricing(pricing_model, mean_price, params["num_peers"], seed)
    outcome = _run_case(params, initial_credits, pricing, seed, kernel=kernel, dtype=dtype)
    realized_mean_price = float(
        np.mean([pricing.price(peer, 0) for peer in range(params["num_peers"])])
    )

    metadata = dict(
        params,
        scale=str(scale),
        seed=seed,
        initial_credits=initial_credits,
        pricing_model=pricing_model,
        mean_price=mean_price,
        kernel=kernel,
        dtype=dtype,
    )
    label = f"{pricing_model} prices, c={initial_credits:g}"
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(
        case=label,
        initial_credits=initial_credits,
        realized_mean_price=realized_mean_price,
        spending_rate_gini=outcome["spending_rate_gini"],
        wealth_gini=outcome["wealth_gini"],
        mean_spending_rate=outcome["mean_spending_rate"],
        mean_continuity=outcome["mean_continuity"],
        bankrupt_fraction=outcome["bankrupt_fraction"],
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[_profile_series(f"spending rates — {label}", outcome["result"].spending_rates)],
        metadata=metadata,
    )


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Run both Fig. 1 cases and return spending-rate profiles and Gini indices."""
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=40, horizon=150.0, wealth_condensed=30.0, wealth_healthy=8.0),
        default=dict(num_peers=80, horizon=1600.0, wealth_condensed=60.0, wealth_healthy=12.0),
        paper=dict(num_peers=500, horizon=20000.0, wealth_condensed=200.0, wealth_healthy=12.0),
    )

    cases = {
        "condensed (non-uniform prices)": dict(
            initial_credits=params["wealth_condensed"],
            pricing=_poisson_seller_prices(params["num_peers"], MEAN_CHUNK_PRICE, seed),
        ),
        "healthy (uniform prices)": dict(
            initial_credits=params["wealth_healthy"],
            pricing=UniformPricing(MEAN_CHUNK_PRICE),
        ),
    }

    table = ResultTable(title=TITLE, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for label, case in cases.items():
        outcome = _run_case(params, case["initial_credits"], case["pricing"], seed)
        series.append(
            _profile_series(
                f"spending rates — {label}", outcome["result"].spending_rates
            )
        )
        table.add_row(
            case=label,
            initial_credits=case["initial_credits"],
            spending_rate_gini=outcome["spending_rate_gini"],
            wealth_gini=outcome["wealth_gini"],
            mean_spending_rate=outcome["mean_spending_rate"],
            mean_continuity=outcome["mean_continuity"],
            bankrupt_fraction=outcome["bankrupt_fraction"],
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed),
    )
