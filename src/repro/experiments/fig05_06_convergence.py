"""Figs. 5 and 6 — convergence of the credit distribution over time.

Sec. VI-A of the paper runs the streaming market with symmetric utilization
for 40000 seconds on a 1000-peer overlay and plots the sorted
credit-queue-length profile at several sampling times:

* Fig. 5 (early stage, first half of the run): the profiles at successive
  sampling times differ markedly — the distribution is still spreading;
* Fig. 6 (later stage, second half): the profiles overlap — the queue-length
  distribution has converged to its equilibrium shape.

The runner produces the sorted wealth profiles at several early and late
sampling times and a convergence statistic: the mean L1 distance between
consecutive sorted profiles, which should be much larger in the early stage
than in the late stage.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import MarketSimConfig, StreamingSimConfig, UtilizationMode
from repro.p2psim.options import KernelOptions
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.p2psim.streaming_sim import StreamingMarketSimulator
from repro.utils.records import ResultTable, SeriesRecord

__all__ = ["run", "run_point", "profile_distance"]

EXPERIMENT_ID = "fig5_6"
TITLE = "Figs. 5-6 — convergence of the credit distribution (early vs late profiles)"

#: Simulators `run_point` accepts for its ``simulator`` axis: the
#: transaction-level market simulator (fast, the default) or the
#: chunk-level streaming simulator (the paper's actual Sec. VI-A setting).
SIMULATORS = ("market", "streaming")

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = (
    "num_peers",
    "horizon",
    "initial_credits",
    "num_snapshots",
    "simulator",
    "kernel",
    "dtype",
)


def profile_distance(profiles: List[np.ndarray]) -> float:
    """Mean L1 distance (per peer) between consecutive sorted wealth profiles."""
    if len(profiles) < 2:
        return 0.0
    distances = []
    for previous, current in zip(profiles, profiles[1:]):
        size = min(previous.size, current.size)
        if size == 0:
            continue
        distances.append(float(np.mean(np.abs(previous[:size] - current[:size]))))
    return float(np.mean(distances)) if distances else 0.0


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    num_peers: int | None = None,
    horizon: float | None = None,
    initial_credits: float | None = None,
    num_snapshots: int | None = None,
    simulator: str = "market",
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Run one convergence study as a sweep shard.

    The sweep axes are the convergence horizon and the population (plus
    initial wealth and snapshot count); each defaults to the scale preset.
    Sweeping ``horizon`` reproduces the paper's early/late contrast at
    several observation windows, sweeping ``num_peers`` its size
    sensitivity.  ``simulator="streaming"`` runs the chunk-level streaming
    market instead of the transaction-level one (Sec. VI-A's actual
    setting), ``kernel`` selects the batched (``"vectorized"``) or
    per-peer (``"loop"``) round implementation of either simulator — both
    kernels produce bit-identical results — and ``dtype`` the state
    representation (``float64``/``float32``).
    """
    simulator = str(simulator)
    if simulator not in SIMULATORS:
        raise ValueError(
            f"unknown simulator {simulator!r}; known simulators: {', '.join(SIMULATORS)}"
        )
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=60, horizon=600.0, step=2.0, initial_credits=20.0, num_snapshots=3),
        default=dict(
            num_peers=300, horizon=8000.0, step=2.0, initial_credits=50.0, num_snapshots=4
        ),
        paper=dict(
            num_peers=1000, horizon=40000.0, step=2.0, initial_credits=100.0, num_snapshots=5
        ),
    )
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        params["horizon"] = float(horizon)
    if initial_credits is not None:
        params["initial_credits"] = float(initial_credits)
    if num_snapshots is not None:
        params["num_snapshots"] = int(num_snapshots)

    horizon = params["horizon"]
    count = params["num_snapshots"]
    # Early snapshots fall inside the transient (the spread of an initially
    # equal wealth vector takes on the order of c^2 seconds under symmetric
    # utilization), late snapshots in the converged second half of the run.
    early_times = list(np.geomspace(horizon * 0.005, horizon * 0.15, count))
    late_times = list(np.linspace(horizon * 0.6, horizon, count))
    if simulator == "streaming":
        streaming_config = StreamingSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=horizon,
            sample_interval=max(1.0, horizon / 200.0),
            seed=seed,
            options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
        )
        result = StreamingMarketSimulator.run_config(
            streaming_config, snapshot_times=early_times + late_times
        )
    else:
        config = MarketSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=horizon,
            step=params["step"],
            utilization=UtilizationMode.SYMMETRIC,
            sample_interval=max(params["step"], horizon / 200.0),
            seed=seed,
            options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
        )
        result = CreditMarketSimulator.run_config(
            config, snapshot_times=early_times + late_times
        )

    snapshots = result.recorder.snapshots
    early_profiles = [snapshots[t] for t in early_times if t in snapshots]
    late_profiles = [snapshots[t] for t in late_times if t in snapshots]

    series = []
    for label, times, profiles in (
        ("early", early_times, early_profiles),
        ("late", late_times, late_profiles),
    ):
        for snap_time, profile in zip(times, profiles):
            curve = SeriesRecord(label=f"{label} t={snap_time:.0f}s")
            step = max(1, profile.size // 200)
            for index, wealth in enumerate(profile[::step]):
                curve.append(float(index * step), float(wealth))
            series.append(curve)

    metadata = dict(
        params, scale=str(scale), seed=seed, simulator=simulator, kernel=kernel, dtype=dtype
    )
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(
        stage="early (Fig. 5)",
        num_profiles=len(early_profiles),
        mean_profile_distance=profile_distance(early_profiles),
        final_gini=result.recorder.gini_at(horizon * 0.5),
    )
    table.add_row(
        stage="late (Fig. 6)",
        num_profiles=len(late_profiles),
        mean_profile_distance=profile_distance(late_profiles),
        final_gini=result.final_gini,
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=metadata,
    )


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Run the symmetric-utilization market and compare early vs late wealth profiles."""
    return run_point(scale=scale, seed=seed)
