"""Fig. 9 — the effect of taxation on the skewness of the credit distribution.

Sec. VI-C of the paper introduces an income tax: peers whose wealth exceeds
a threshold pay a fixed proportion of their income to the system, and the
system returns one credit to every peer once it has collected ``N`` of
them.  The experiment compares no taxation against tax rates of 0.1 and 0.2
combined with thresholds of 50 and 80 (average wealth 100, asymmetric
utilization), with three observations:

1. taxation prevents the distribution from evolving toward extreme skew;
2. raising the tax *threshold* (toward the average wealth) lowers the Gini;
3. when the threshold is far below the average wealth, raising the tax rate
   has almost no additional effect — it only helps when the threshold is
   close to the average wealth.
"""

from __future__ import annotations

from typing import Optional

from repro.core.taxation import NoTax, ThresholdIncomeTax
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.market_sim import CreditMarketSimulator
from repro.p2psim.options import KernelOptions
from repro.utils.records import ResultTable

__all__ = ["run", "run_point"]

EXPERIMENT_ID = "fig9"
TITLE = "Fig. 9 — Gini index under different tax rates and thresholds"

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = ("tax_rate", "tax_threshold", "num_peers", "horizon", "kernel", "dtype")


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    tax_rate: float = 0.0,
    tax_threshold: float = 50.0,
    num_peers: int | None = None,
    horizon: float | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
) -> ExperimentResult:
    """Run one ``(tax_rate, tax_threshold)`` grid point of the Fig. 9 study.

    ``tax_rate=0`` means no taxation.  Population and horizon default to
    the scale preset but are sweepable too (the taxation grid of the
    sensitivity study varies rate × threshold at a fixed population).
    ``kernel`` selects the round implementation (``vectorized``/``loop``,
    bit-identical) and ``dtype`` the state representation (``float64``/
    ``float32``).
    """
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=60, horizon=400.0, step=2.0, initial_credits=30.0),
        default=dict(num_peers=200, horizon=5000.0, step=2.0, initial_credits=100.0),
        paper=dict(num_peers=1000, horizon=20000.0, step=1.0, initial_credits=100.0),
    )
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if horizon is not None:
        params["horizon"] = float(horizon)
    tax_rate = float(tax_rate)
    tax_threshold = float(tax_threshold)

    if tax_rate <= 0.0:
        policy: object = NoTax()
        label = "no taxation"
    else:
        policy = ThresholdIncomeTax(rate=tax_rate, threshold=tax_threshold)
        label = f"rate={tax_rate:g} thres.={tax_threshold:g}"
    config = MarketSimConfig(
        num_peers=params["num_peers"],
        initial_credits=params["initial_credits"],
        horizon=params["horizon"],
        step=params["step"],
        utilization=UtilizationMode.ASYMMETRIC,
        tax_policy=policy,
        sample_interval=max(params["step"], params["horizon"] / 100.0),
        seed=seed,
        options=KernelOptions.resolve(kernel=kernel, dtype=dtype),
    )
    result = CreditMarketSimulator.run_config(config)
    gini_series = result.recorder.gini_series
    gini_series.label = label

    metadata = dict(
        params,
        scale=str(scale),
        seed=seed,
        tax_rate=tax_rate,
        tax_threshold=tax_threshold,
        kernel=kernel,
        dtype=dtype,
    )
    collected: Optional[float] = getattr(policy, "total_collected", None)
    rebated: Optional[float] = getattr(policy, "total_rebated", None)
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(
        taxation=label,
        tax_rate=tax_rate,
        tax_threshold=tax_threshold,
        stabilized_gini=result.stabilized_gini,
        final_gini=result.final_gini,
        total_tax_collected=0.0 if collected is None else collected,
        total_tax_rebated=0.0 if rebated is None else rebated,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[gini_series],
        metadata=metadata,
    )


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Compare no-tax against the paper's four (rate, threshold) combinations."""
    params = scale_parameters(
        scale,
        smoke=dict(
            num_peers=60,
            horizon=400.0,
            step=2.0,
            initial_credits=30.0,
            tax_settings=[(None, None), (0.2, 24.0)],
        ),
        default=dict(
            num_peers=200,
            horizon=5000.0,
            step=2.0,
            initial_credits=100.0,
            tax_settings=[(None, None), (0.1, 50.0), (0.2, 50.0), (0.1, 80.0), (0.2, 80.0)],
        ),
        paper=dict(
            num_peers=1000,
            horizon=20000.0,
            step=1.0,
            initial_credits=100.0,
            tax_settings=[(None, None), (0.1, 50.0), (0.2, 50.0), (0.1, 80.0), (0.2, 80.0)],
        ),
    )

    table = ResultTable(title=TITLE, metadata=dict(params, scale=str(scale), seed=seed))
    series = []
    for rate, threshold in params["tax_settings"]:
        if rate is None:
            policy = NoTax()
            label = "no taxation"
        else:
            policy = ThresholdIncomeTax(rate=rate, threshold=threshold)
            label = f"rate={rate:g} thres.={threshold:g}"
        config = MarketSimConfig(
            num_peers=params["num_peers"],
            initial_credits=params["initial_credits"],
            horizon=params["horizon"],
            step=params["step"],
            utilization=UtilizationMode.ASYMMETRIC,
            tax_policy=policy,
            sample_interval=max(params["step"], params["horizon"] / 100.0),
            seed=seed,
        )
        result = CreditMarketSimulator.run_config(config)
        gini_series = result.recorder.gini_series
        gini_series.label = label
        series.append(gini_series)
        collected: Optional[float] = getattr(policy, "total_collected", None)
        rebated: Optional[float] = getattr(policy, "total_rebated", None)
        table.add_row(
            taxation=label,
            tax_rate=0.0 if rate is None else rate,
            tax_threshold=0.0 if threshold is None else threshold,
            stabilized_gini=result.stabilized_gini,
            final_gini=result.final_gini,
            total_tax_collected=0.0 if collected is None else collected,
            total_tax_rebated=0.0 if rebated is None else rebated,
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=series,
        metadata=dict(params, scale=str(scale), seed=seed),
    )
