"""Fig. 4 — content-exchange efficiency ``1 − Q{B_i = 0}`` vs average wealth ``c``.

Eq. (9) of the paper: under symmetric utilization the actual credit
departure rate of a peer is ``μ_i (1 − Q{B_i = 0}) ≈ μ_i (1 − e^{−c})``, so
the efficiency of content exchange saturates exponentially in the average
wealth — too little initial credit throttles downloads even though it keeps
the distribution balanced.

The runner reports, for a sweep of ``c``:

* the large-N approximation ``1 − e^{−c}`` (Eq. 9),
* the exact finite-N expression ``1 − ((N−1)/N)^M`` from Eq. (8),
* the exact closed-Jackson value ``P(B_i > 0)`` from Buzen's algorithm for
  a moderate N (a consistency check on all three routes).
"""

from __future__ import annotations

from repro.core.condensation import exact_exchange_efficiency, exchange_efficiency
from repro.experiments.common import ExperimentResult, Scale, scale_parameters
from repro.queueing.closed import ClosedJacksonNetwork
from repro.utils.records import ResultTable, SeriesRecord

__all__ = ["run", "run_point"]

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4 — exchange efficiency 1 - Q{B_i = 0} vs average wealth c"

#: Parameters `run_point` accepts as sweep axes.
SWEEP_PARAMS = ("average_wealth", "num_peers", "buzen_peers")


def _efficiency_row(wealth: float, num_peers: int, buzen_peers: int) -> dict:
    """The three efficiency estimates at one average wealth ``c``."""
    total = int(round(wealth * num_peers))
    buzen_total = int(round(wealth * buzen_peers))
    network = ClosedJacksonNetwork([1.0] * buzen_peers, buzen_total)
    return dict(
        average_wealth_c=float(wealth),
        efficiency_eq9=exchange_efficiency(float(wealth)),
        efficiency_finite_N=exact_exchange_efficiency(num_peers, total),
        efficiency_exact_jackson=float(network.relative_throughput(0)),
    )


def run_point(
    scale: str = Scale.DEFAULT,
    seed: int = 0,
    average_wealth: float = 1.0,
    num_peers: int | None = None,
    buzen_peers: int | None = None,
) -> ExperimentResult:
    """Evaluate Eq. 9 and its exact references at a single wealth ``c``.

    Fully analytic (``seed`` is accepted for interface uniformity);
    ``num_peers``/``buzen_peers`` default to the scale preset.
    """
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=20, buzen_peers=10),
        default=dict(num_peers=1000, buzen_peers=50),
        paper=dict(num_peers=1000, buzen_peers=100),
    )
    if num_peers is not None:
        params["num_peers"] = int(num_peers)
    if buzen_peers is not None:
        params["buzen_peers"] = int(buzen_peers)
    average_wealth = float(average_wealth)

    metadata = dict(params, scale=str(scale), seed=seed, average_wealth=average_wealth)
    table = ResultTable(title=TITLE, metadata=metadata)
    table.add_row(**_efficiency_row(average_wealth, params["num_peers"], params["buzen_peers"]))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[],
        metadata=metadata,
    )


def run(scale: str = Scale.DEFAULT, seed: int = 0) -> ExperimentResult:
    """Sweep average wealth ``c`` and report the three efficiency estimates."""
    params = scale_parameters(
        scale,
        smoke=dict(num_peers=20, wealth_levels=[0.5, 1, 2, 4], buzen_peers=10),
        default=dict(
            num_peers=1000,
            wealth_levels=[0.25, 0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10],
            buzen_peers=50,
        ),
        paper=dict(
            num_peers=1000,
            wealth_levels=[0.25, 0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10],
            buzen_peers=100,
        ),
    )

    num_peers = params["num_peers"]
    buzen_peers = params["buzen_peers"]
    table = ResultTable(title=TITLE, metadata=dict(scale=str(scale)))
    curve_eq9 = SeriesRecord(label="1 - e^{-c} (Eq. 9)")
    curve_exact_n = SeriesRecord(label=f"1 - ((N-1)/N)^M, N={num_peers}")
    curve_buzen = SeriesRecord(label=f"exact P(B_i > 0), N={buzen_peers}")

    for wealth in params["wealth_levels"]:
        row = _efficiency_row(float(wealth), num_peers, buzen_peers)
        curve_eq9.append(float(wealth), row["efficiency_eq9"])
        curve_exact_n.append(float(wealth), row["efficiency_finite_N"])
        curve_buzen.append(float(wealth), row["efficiency_exact_jackson"])
        table.add_row(**row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table],
        series=[curve_eq9, curve_exact_n, curve_buzen],
        metadata=dict(params, scale=str(scale)),
    )
