"""Shared utilities: deterministic seeding, result records, summary statistics.

The utilities in this package are intentionally dependency-light (numpy only)
so every other subsystem can use them without layering problems.
"""

from repro.utils.rng import SeedSequenceFactory, derive_seed, make_rng
from repro.utils.records import (
    ResultRecord,
    ResultTable,
    SeriesRecord,
    rows_to_csv,
)
from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    describe,
    geometric_mean,
    relative_error,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_square_matrix,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "make_rng",
    "ResultRecord",
    "ResultTable",
    "SeriesRecord",
    "rows_to_csv",
    "RunningStat",
    "confidence_interval",
    "describe",
    "geometric_mean",
    "relative_error",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability_vector",
    "check_square_matrix",
]
