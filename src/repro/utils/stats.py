"""Small statistics helpers used by recorders, experiments and tests."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "RunningStat",
    "confidence_interval",
    "describe",
    "geometric_mean",
    "relative_error",
]


class RunningStat:
    """Online mean/variance accumulator (Welford's algorithm).

    Useful inside simulators where storing every sample would be wasteful.

    Examples
    --------
    >>> stat = RunningStat()
    >>> for value in [1.0, 2.0, 3.0]:
    ...     stat.push(value)
    >>> stat.mean
    2.0
    >>> round(stat.variance, 6)
    1.0
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.push(value)

    @property
    def count(self) -> int:
        """Number of observations pushed so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new accumulator equivalent to having pushed both streams."""
        merged = RunningStat()
        total = self._count + other._count
        if total == 0:
            return merged
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._count * other._count / total
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Return a normal-approximation confidence interval for the mean of ``samples``.

    With fewer than two samples the interval degenerates to ``(mean, mean)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    mean = float(arr.mean())
    if arr.size < 2:
        return (mean, mean)
    # Normal quantile via the inverse error function; avoids a scipy import here.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half_width = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (mean - half_width, mean + half_width)


def _erfinv(value: float) -> float:
    """Inverse error function: Winitzki initial guess + Newton refinement.

    The Winitzki approximation alone has ~1e-3 relative error, which is
    visible in the third digit of high-confidence z-values (z(99%)).  Two
    Newton steps on ``erf(x) - value`` (derivative ``2/sqrt(pi) e^{-x^2}``)
    push the error below 1e-12 over the confidence range used here.
    """
    if value == 0.0:
        return 0.0
    a = 0.147
    sign = 1.0 if value >= 0 else -1.0
    magnitude = abs(value)
    ln_term = math.log(1.0 - magnitude * magnitude)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = math.sqrt(math.sqrt(first * first - ln_term / a) - first)
    for _ in range(2):
        residual = math.erf(x) - magnitude
        x -= residual * math.sqrt(math.pi) / 2.0 * math.exp(x * x)
    return sign * x


def describe(samples: Sequence[float]) -> Dict[str, float]:
    """Return a dictionary of summary statistics for ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "p75": float(np.percentile(arr, 75)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def relative_error(measured: float, reference: float) -> float:
    """Return ``|measured - reference| / |reference|`` (absolute error if reference is 0)."""
    measured = float(measured)
    reference = float(reference)
    if reference == 0.0:
        return abs(measured)
    return abs(measured - reference) / abs(reference)
