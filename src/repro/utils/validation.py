"""Input-validation helpers shared across the library.

These helpers raise ``ValueError`` (or ``TypeError`` where appropriate) with
messages that name the offending argument, so failures at the public API
surface are actionable.
"""

from __future__ import annotations

import warnings
from typing import Sequence, Union

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability_vector",
    "check_square_matrix",
    "check_stochastic_matrix",
    "check_index_capacity",
    "check_exact_float_range",
    "FLOAT32_EXACT_INT_MAX",
]

Number = Union[int, float]

#: Largest integer magnitude float32 represents exactly (2**24).  Integer
#: credit totals beyond it silently lose units to rounding under the narrow
#: dtype switch.
FLOAT32_EXACT_INT_MAX = 2**24


def check_positive(value: Number, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: Number, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_fraction(value: Number, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_probability_vector(vector: Sequence[Number], name: str, *, atol: float = 1e-9) -> np.ndarray:
    """Validate that ``vector`` is non-negative and sums to one.

    Returns the vector as a float ndarray (renormalised exactly to sum 1 to
    absorb floating-point drift below ``atol``).
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if not np.isclose(total, 1.0, atol=atol, rtol=0.0):
        raise ValueError(f"{name} must sum to 1 (got {total!r})")
    return arr / total


def check_index_capacity(count: int, index_dtype: "np.dtype", name: str) -> int:
    """Validate that ``count`` ids are representable in ``index_dtype``.

    The narrow-dtype kernels store peer ids and edge destinations as int32;
    a population at or beyond ``2**31 - 1`` would silently wrap, so the
    simulators reject such configurations up front with an actionable
    message (switch back to the default int64/float64 representation).
    """
    count = int(count)
    if count < 0:
        raise ValueError(f"{name} must be non-negative, got {count!r}")
    limit = int(np.iinfo(index_dtype).max)
    if count >= limit:
        raise ValueError(
            f"{name} ({count}) exceeds the capacity of index dtype "
            f"{np.dtype(index_dtype).name} (max {limit}); use the default "
            "float64/int64 representation for populations this large"
        )
    return count


def check_exact_float_range(total: Number, float_dtype: "np.dtype", name: str) -> float:
    """Warn when an integer-valued total exceeds float32's exact range.

    Credit incomes are integer counts, exact in float32 only up to
    ``2**24``; beyond that, wealth totals accumulate rounding error under
    the narrow dtype switch.  The configuration is still allowed — the
    float32 path is statistically, not bitwise, equivalent anyway — but the
    caller is warned so silent precision loss never surprises.
    """
    total = float(total)
    if np.dtype(float_dtype) == np.float32 and total > FLOAT32_EXACT_INT_MAX:
        warnings.warn(
            f"{name} ({total:g}) exceeds float32's exact-integer range "
            f"(2**24 = {FLOAT32_EXACT_INT_MAX}); credit totals will lose "
            "precision under dtype='float32' — use the default 'float64' "
            "for exact accounting",
            UserWarning,
            stacklevel=3,
        )
    return total


def check_square_matrix(matrix: Sequence[Sequence[Number]], name: str) -> np.ndarray:
    """Validate that ``matrix`` is a two-dimensional square array."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite entries")
    return arr


def check_stochastic_matrix(
    matrix: Sequence[Sequence[Number]], name: str, *, atol: float = 1e-8
) -> np.ndarray:
    """Validate that ``matrix`` is square, non-negative and row-stochastic.

    Rows are renormalised exactly to sum 1 to absorb floating-point drift
    below ``atol``.
    """
    arr = check_square_matrix(matrix, name)
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    arr = np.clip(arr, 0.0, None)
    row_sums = arr.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol, rtol=0.0):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(
            f"{name} rows must each sum to 1; row {bad} sums to {row_sums[bad]!r}"
        )
    return arr / row_sums[:, None]
