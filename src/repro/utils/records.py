"""Structured result records for experiments and benchmarks.

Experiment runners return :class:`ResultTable` objects (rows of named
values) and :class:`SeriesRecord` objects (time series).  Keeping results in
plain, typed containers makes it easy for benchmarks to print the same rows
the paper reports and for tests to make assertions about experiment output
without parsing text.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ResultRecord", "ResultTable", "SeriesRecord", "rows_to_csv"]


@dataclass(frozen=True)
class ResultRecord:
    """A single named result row: a mapping of column name to value."""

    values: Mapping[str, object]

    def __getitem__(self, key: str) -> object:
        return self.values[key]

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def get(self, key: str, default: object = None) -> object:
        """Return ``values[key]`` or ``default`` when the column is absent."""
        return self.values.get(key, default)

    def as_dict(self) -> Dict[str, object]:
        """Return a plain mutable dict copy of the row."""
        return dict(self.values)


@dataclass
class ResultTable:
    """An ordered collection of result rows sharing (mostly) the same columns.

    Parameters
    ----------
    title:
        Human-readable label, e.g. ``"Fig. 3 — Gini index vs average wealth"``.
    rows:
        Row records.  Use :meth:`add_row` to append.
    metadata:
        Free-form experiment metadata (seed, horizon, population size...).
    """

    title: str
    rows: List[ResultRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> ResultRecord:
        """Append a row built from keyword arguments and return it."""
        record = ResultRecord(dict(values))
        self.rows.append(record)
        return record

    def column(self, name: str) -> List[object]:
        """Return the values of column ``name`` across all rows (missing -> None)."""
        return [row.get(name) for row in self.rows]

    def columns(self) -> List[str]:
        """Return the union of column names, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row.values:
                seen.setdefault(key, None)
        return list(seen)

    def filter(self, **criteria: object) -> "ResultTable":
        """Return a new table containing rows matching all ``column=value`` criteria."""
        matched = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(title=self.title, rows=list(matched), metadata=dict(self.metadata))

    def to_csv(self) -> str:
        """Render the table as CSV text (header + one line per row)."""
        return rows_to_csv(self.rows, self.columns())

    def format(self, float_precision: int = 4) -> str:
        """Render the table as aligned plain text, suitable for benchmark output."""
        columns = self.columns()
        if not columns:
            return f"{self.title}\n(empty)"

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.{float_precision}g}"
            return str(value)

        body = [[fmt(row.get(col, "")) for col in columns] for row in self.rows]
        widths = [
            max(len(col), *(len(line[idx]) for line in body)) if body else len(col)
            for idx, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(widths[idx]) for idx, col in enumerate(columns))
        lines = [self.title, header, "  ".join("-" * w for w in widths)]
        for line in body:
            lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(line)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.rows)


@dataclass
class SeriesRecord:
    """A labelled time series (or any x/y series) produced by an experiment.

    Attributes
    ----------
    label:
        Legend label, e.g. ``"c=100"``.
    x:
        Sequence of x values (time in seconds, peer fraction, ...).
    y:
        Sequence of y values, same length as ``x``.
    metadata:
        Free-form extra information about the series.
    """

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def append(self, x: float, y: float) -> None:
        """Append one ``(x, y)`` point to the series."""
        self.x.append(float(x))
        self.y.append(float(y))

    def final_value(self) -> float:
        """Return the last y value (raises ``IndexError`` if the series is empty)."""
        return self.y[-1]

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of the series — a convergence estimate."""
        if not self.y:
            raise ValueError("cannot take the tail mean of an empty series")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        count = max(1, int(round(len(self.y) * fraction)))
        tail = self.y[-count:]
        return float(sum(tail) / len(tail))

    def __len__(self) -> int:
        return len(self.x)

    def points(self) -> List[Tuple[float, float]]:
        """Return the series as a list of ``(x, y)`` tuples."""
        return list(zip(self.x, self.y))


def rows_to_csv(rows: Iterable[ResultRecord], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise ``rows`` to CSV text, optionally restricting/ordering columns."""
    rows = list(rows)
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row.values:
                seen.setdefault(key, None)
        columns = list(seen)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in columns})
    return buffer.getvalue()
