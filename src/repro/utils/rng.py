"""Deterministic random-number management.

Every stochastic component in the library draws randomness from a
``numpy.random.Generator`` that is derived from an explicit integer seed.
Experiments pass a single top-level seed; sub-components receive
independently-derived child streams so that adding a new component never
perturbs the random draws of existing ones ("stream stability").
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

__all__ = ["derive_seed", "make_rng", "SeedSequenceFactory"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and an arbitrary label path.

    The derivation hashes the base seed together with the string form of the
    labels, so the same ``(base_seed, labels)`` pair always yields the same
    child seed, and distinct label paths yield (with overwhelming
    probability) distinct seeds.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    labels:
        Any hashable/str-convertible objects identifying the consumer, e.g.
        ``derive_seed(7, "peer", 42)``.

    Returns
    -------
    int
        A 63-bit non-negative integer suitable for ``numpy.random.default_rng``.
    """
    payload = repr((int(base_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def make_rng(seed: Optional[int], *labels: object) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` for ``seed`` and a label path.

    ``seed=None`` produces a non-deterministic generator (used only in
    interactive exploration; experiments always pass a seed).
    """
    if seed is None:
        return np.random.default_rng()
    if labels:
        return np.random.default_rng(derive_seed(seed, *labels))
    return np.random.default_rng(int(seed))


class SeedSequenceFactory:
    """Hand out independent child RNG streams from a single base seed.

    The factory remembers which labels have been issued so collisions (two
    components accidentally requesting the same stream) are detected early.

    Examples
    --------
    >>> factory = SeedSequenceFactory(123)
    >>> rng_a = factory.stream("overlay")
    >>> rng_b = factory.stream("pricing")
    >>> factory.issued_labels == {("overlay",), ("pricing",)}
    True
    """

    def __init__(self, base_seed: int) -> None:
        self._base_seed = int(base_seed)
        self._issued: set = set()

    @property
    def base_seed(self) -> int:
        """The base seed this factory derives every stream from."""
        return self._base_seed

    @property
    def issued_labels(self) -> set:
        """The set of label tuples for which streams have been issued."""
        return set(self._issued)

    def stream(self, *labels: object, allow_reissue: bool = False) -> np.random.Generator:
        """Return a generator for the given label path.

        Parameters
        ----------
        labels:
            Identifies the consumer, e.g. ``("peer", 17)``.
        allow_reissue:
            If False (default), requesting the same label path twice raises
            ``ValueError`` — usually a sign of an accidental stream share.
        """
        key = tuple(str(label) for label in labels)
        if key in self._issued and not allow_reissue:
            raise ValueError(f"RNG stream {key!r} was already issued from this factory")
        self._issued.add(key)
        return make_rng(self._base_seed, *labels)

    def child_seed(self, *labels: object) -> int:
        """Return the integer child seed for a label path without issuing it."""
        return derive_seed(self._base_seed, *labels)
