"""Workload generators: demand profiles, wealth allocations and churn traces."""

from repro.workloads.demand import (
    elastic_chunk_rates,
    streaming_chunk_rates,
    zipf_demand_weights,
)
from repro.workloads.wealth import (
    equal_initial_wealth,
    exponential_initial_wealth,
    pareto_initial_wealth,
)
from repro.workloads.churn_traces import ChurnTraceEvent, generate_churn_trace

__all__ = [
    "streaming_chunk_rates",
    "elastic_chunk_rates",
    "zipf_demand_weights",
    "equal_initial_wealth",
    "exponential_initial_wealth",
    "pareto_initial_wealth",
    "ChurnTraceEvent",
    "generate_churn_trace",
]
