"""Pre-generated churn traces.

For experiments that must be replayed identically across simulators (e.g.
comparing the market simulator against the streaming simulator under the
same arrivals and departures), churn can be generated ahead of time as a
trace of timestamped join/leave events rather than drawn online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.overlay.churn import ChurnConfig
from repro.utils.rng import make_rng

__all__ = ["ChurnTraceEvent", "generate_churn_trace"]


@dataclass(frozen=True)
class ChurnTraceEvent:
    """One event of a churn trace."""

    time: float
    peer_id: int
    action: str  # "join" or "leave"


def generate_churn_trace(
    config: ChurnConfig,
    horizon: float,
    initial_peers: int = 0,
    first_new_peer_id: int = 0,
    seed: Optional[int] = None,
) -> List[ChurnTraceEvent]:
    """Generate a time-sorted churn trace for the given configuration.

    Parameters
    ----------
    config:
        Arrival rate / mean lifespan parameters.
    horizon:
        Trace length in seconds.
    initial_peers:
        Number of peers present at time zero; when
        ``config.churn_initial_peers`` is True they receive exponential
        lifetimes and contribute leave events (their ids are
        ``first_new_peer_id - initial_peers .. first_new_peer_id - 1``).
    first_new_peer_id:
        Id assigned to the first arriving peer; later arrivals count up.
    seed:
        RNG seed.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if initial_peers < 0:
        raise ValueError("initial_peers must be non-negative")
    rng = make_rng(seed, "churn-trace")
    events: List[ChurnTraceEvent] = []

    if config.churn_initial_peers:
        for offset in range(initial_peers):
            peer_id = first_new_peer_id - initial_peers + offset
            lifetime = float(rng.exponential(config.mean_lifespan))
            if lifetime < horizon:
                events.append(ChurnTraceEvent(lifetime, peer_id, "leave"))

    time = 0.0
    next_id = first_new_peer_id
    while True:
        time += float(rng.exponential(1.0 / config.arrival_rate))
        if time >= horizon:
            break
        events.append(ChurnTraceEvent(time, next_id, "join"))
        departure = time + float(rng.exponential(config.mean_lifespan))
        if departure < horizon:
            events.append(ChurnTraceEvent(departure, next_id, "leave"))
        next_id += 1

    events.sort(key=lambda event: (event.time, event.action, event.peer_id))
    return events
