"""Chunk-demand workload generators.

Sec. V-C of the paper distinguishes two content-distribution regimes:

* *streaming* — every peer downloads at exactly the stream rate ``r``, so
  its aggregate purchase rate is fixed and split over its neighbours;
* *elastic* (file sharing) — aggregate download rates differ across peers.

These helpers build the ``chunk_rates`` mappings consumed by
:class:`repro.core.market.CreditMarket`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = ["streaming_chunk_rates", "elastic_chunk_rates", "zipf_demand_weights"]


def streaming_chunk_rates(
    topology: OverlayTopology, streaming_rate: float = 1.0
) -> Dict[int, Dict[int, float]]:
    """Streaming demand: every peer downloads ``streaming_rate`` chunks/s, split evenly.

    This is the Sec. V-C case 1 workload under which utilization is
    symmetric and no condensation occurs.
    """
    check_positive(streaming_rate, "streaming_rate")
    rates: Dict[int, Dict[int, float]] = {}
    for buyer in topology.peers():
        neighbors = sorted(topology.neighbors(buyer))
        if not neighbors:
            rates[buyer] = {}
            continue
        share = streaming_rate / len(neighbors)
        rates[buyer] = {seller: share for seller in neighbors}
    return rates


def elastic_chunk_rates(
    topology: OverlayTopology,
    mean_rate: float = 1.0,
    dispersion: float = 0.5,
    seed: Optional[int] = None,
) -> Dict[int, Dict[int, float]]:
    """Elastic (file-sharing) demand: per-peer aggregate download rates differ.

    Aggregate download rates are drawn from a lognormal distribution with
    the requested mean and coefficient of variation ``dispersion`` — the
    Sec. V-C case 2 workload under which utilizations become heterogeneous.
    """
    check_positive(mean_rate, "mean_rate")
    if dispersion < 0:
        raise ValueError("dispersion must be non-negative")
    rng = make_rng(seed, "elastic-demand")
    rates: Dict[int, Dict[int, float]] = {}
    sigma = float(np.sqrt(np.log(1.0 + dispersion**2)))
    mu = float(np.log(mean_rate) - sigma**2 / 2.0)
    for buyer in topology.peers():
        neighbors = sorted(topology.neighbors(buyer))
        if not neighbors:
            rates[buyer] = {}
            continue
        aggregate = float(rng.lognormal(mu, sigma)) if dispersion > 0 else mean_rate
        share = aggregate / len(neighbors)
        rates[buyer] = {seller: share for seller in neighbors}
    return rates


def zipf_demand_weights(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Zipf popularity weights over ``num_items`` content items (sums to 1).

    Useful for elastic workloads where peers' demand concentrates on a few
    popular files.
    """
    if num_items < 1:
        raise ValueError("num_items must be at least 1")
    check_positive(exponent, "exponent")
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()
