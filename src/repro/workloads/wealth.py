"""Initial-wealth allocation strategies.

The paper endows every peer with the same initial credit amount ``c``; the
alternative allocators here support ablations on whether the *initial*
shape of the wealth distribution matters for the long-run equilibrium (it
does not, for a closed Jackson network — only the total does).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = ["equal_initial_wealth", "exponential_initial_wealth", "pareto_initial_wealth"]


def equal_initial_wealth(peer_ids: Sequence[int], average_wealth: float) -> Dict[int, float]:
    """Every peer starts with exactly ``average_wealth`` credits (the paper's setting)."""
    check_positive(average_wealth, "average_wealth")
    return {int(peer): float(average_wealth) for peer in peer_ids}


def exponential_initial_wealth(
    peer_ids: Sequence[int], average_wealth: float, seed: Optional[int] = None
) -> Dict[int, float]:
    """Exponentially distributed initial wealth with the given mean (total rescaled exactly)."""
    check_positive(average_wealth, "average_wealth")
    peer_ids = [int(peer) for peer in peer_ids]
    rng = make_rng(seed, "exp-wealth")
    draws = rng.exponential(average_wealth, size=len(peer_ids))
    draws *= average_wealth * len(peer_ids) / draws.sum()
    return dict(zip(peer_ids, draws.tolist()))


def pareto_initial_wealth(
    peer_ids: Sequence[int],
    average_wealth: float,
    tail_index: float = 1.5,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Pareto-distributed initial wealth (heavy tail) with the given mean.

    ``tail_index`` must exceed 1 for the mean to exist; smaller values give
    heavier tails (more initial inequality).
    """
    check_positive(average_wealth, "average_wealth")
    if tail_index <= 1.0:
        raise ValueError("tail_index must exceed 1 for a finite mean")
    peer_ids = [int(peer) for peer in peer_ids]
    rng = make_rng(seed, "pareto-wealth")
    draws = rng.pareto(tail_index, size=len(peer_ids)) + 1.0
    draws *= average_wealth * len(peer_ids) / draws.sum()
    return dict(zip(peer_ids, draws.tolist()))
