"""Zero-dependency telemetry core: emitter, timing spans, active-emitter context.

A :class:`MetricsEmitter` turns instrumentation points scattered through
the simulators and the runner into a flat stream of *events* — plain JSON
dicts — fanned out to pluggable sinks (:mod:`repro.obs.sinks`).  Five
event shapes cover everything the stack emits:

``counter``
    Monotonic occurrence counts (cache hits, shards executed).
``gauge``
    Last-value-wins measurements (steps per second of one
    ``advance_rounds`` call).
``point``
    One sample of a named time series — ``x`` is *simulation* time, so a
    run's Gini/population trajectory can be charted live while it runs.
``span``
    A timed region with nesting info (``depth``/``parent`` reflect the
    emitter's span stack at exit), produced by ``with emitter.span(...)``
    or, for regions timed manually, :meth:`MetricsEmitter.timing`.
``mark``
    A point-in-time lifecycle annotation with free-form fields (shard
    committed, sweep started).

Strictly observational by design
--------------------------------
Telemetry must never perturb a run: events carry wall-clock timestamps
and never touch the simulators' RNG streams, and the **disabled** emitter
is a no-op — every method checks ``self.enabled`` first and returns
without allocating (``span()`` hands back a shared no-op context
manager).  Instrumented code therefore runs byte-identical to
uninstrumented code, and the hot paths stay at full speed when nobody is
listening (the CI bench gate enforces both properties).

The *active* emitter lives in a :class:`contextvars.ContextVar`, so each
thread observes its own installation — the ``repro serve`` daemon runs
every sweep job in its own thread with its own emitter + in-memory sink,
and concurrent jobs never see each other's metrics.  Simulators fetch the
active emitter via :func:`get_emitter` at run time instead of storing it
on ``self``: checkpoint pickles stay free of sink handles, and a run
restored in another process simply reattaches to whatever emitter is
active there.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["MetricsEmitter", "DISABLED", "get_emitter", "use_emitter"]


class _NoopSpan:
    """Shared do-nothing context manager returned by disabled ``span()`` calls."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live timing span; emits one ``span`` event when the block exits."""

    __slots__ = ("_emitter", "name", "_start")

    def __init__(self, emitter: "MetricsEmitter", name: str) -> None:
        self._emitter = emitter
        self.name = name

    def __enter__(self) -> "_Span":
        self._emitter._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._emitter._stack
        stack.pop()
        self._emitter._emit(
            {
                "type": "span",
                "name": self.name,
                "duration": duration,
                "depth": len(stack),
                "parent": stack[-1] if stack else None,
                "ts": time.time(),
            }
        )
        return False


class MetricsEmitter:
    """Fans instrumentation events out to a list of sinks.

    Parameters
    ----------
    sinks:
        Initial sink list; anything with an ``emit(event: dict)`` method
        qualifies (see :mod:`repro.obs.sinks`).
    enabled:
        ``False`` builds a permanently disabled emitter whose every
        method is a guard-and-return no-op (the module-level
        :data:`DISABLED` singleton is the default active emitter).
    """

    __slots__ = ("enabled", "_sinks", "_stack")

    def __init__(self, sinks: Iterable[object] = (), enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._sinks: List[object] = list(sinks)
        self._stack: List[str] = []

    def add_sink(self, sink: object) -> object:
        """Attach ``sink`` and return it (for inline construction)."""
        self._sinks.append(sink)
        return sink

    def _emit(self, event: Dict[str, object]) -> None:
        for sink in self._sinks:
            sink.emit(event)

    # ------------------------------------------------------------------ event kinds

    def counter(self, name: str, value: float = 1.0) -> None:
        """Count ``value`` occurrences of ``name``."""
        if not self.enabled:
            return
        self._emit(
            {"type": "counter", "name": name, "value": float(value), "ts": time.time()}
        )

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of measurement ``name``."""
        if not self.enabled:
            return
        self._emit(
            {"type": "gauge", "name": name, "value": float(value), "ts": time.time()}
        )

    def point(self, name: str, x: float, y: float) -> None:
        """Append one ``(x, y)`` sample to time series ``name``."""
        if not self.enabled:
            return
        self._emit(
            {
                "type": "point",
                "name": name,
                "x": float(x),
                "y": float(y),
                "ts": time.time(),
            }
        )

    def mark(self, name: str, **fields: object) -> None:
        """Record a point-in-time lifecycle event with free-form ``fields``."""
        if not self.enabled:
            return
        event: Dict[str, object] = {"type": "mark", "name": name, "ts": time.time()}
        if fields:
            event["fields"] = fields
        self._emit(event)

    def span(self, name: str) -> object:
        """Context manager timing a region; spans nest via the emitter's stack."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name)

    def timing(self, name: str, duration: float) -> None:
        """Emit a pre-measured duration as a ``span`` event.

        For regions whose start/end do not bracket cleanly into a ``with``
        block (e.g. a checkpoint restore that only counts on success).
        The event carries the emitter's *current* span stack as its
        nesting context.
        """
        if not self.enabled:
            return
        stack = self._stack
        self._emit(
            {
                "type": "span",
                "name": name,
                "duration": float(duration),
                "depth": len(stack),
                "parent": stack[-1] if stack else None,
                "ts": time.time(),
            }
        )


#: The default active emitter: permanently disabled, sink-less, shared.
DISABLED = MetricsEmitter(enabled=False)

_ACTIVE: ContextVar[Optional[MetricsEmitter]] = ContextVar(
    "repro-obs-emitter", default=None
)


def get_emitter() -> MetricsEmitter:
    """The active emitter of the current thread/context (:data:`DISABLED` if none).

    Hot loops should fetch this once per batch and branch on
    ``emitter.enabled`` so the disabled path stays allocation-free.
    """
    active = _ACTIVE.get()
    return active if active is not None else DISABLED


@contextmanager
def use_emitter(emitter: MetricsEmitter) -> Iterator[MetricsEmitter]:
    """Install ``emitter`` as the active emitter for the enclosed block.

    Installation is scoped to the current thread's context, so concurrent
    jobs (e.g. ``repro serve`` worker threads) each observe only their
    own emitter.
    """
    token = _ACTIVE.set(emitter)
    try:
        yield emitter
    finally:
        _ACTIVE.reset(token)
