"""Pluggable event sinks for :class:`~repro.obs.emitter.MetricsEmitter`.

A sink is anything with an ``emit(event: dict)`` method.  Three stdlib-only
implementations cover the repo's needs:

* :class:`MemorySink` — appends events to a list and aggregates them into
  dashboard-ready counters/gauges/series/span summaries.  This is what the
  ``repro serve`` daemon attaches to every job (CPython list appends are
  atomic under the GIL, so the HTTP threads snapshot a running job's
  events without locking the hot path).
* :class:`JSONLSink` — streams events to a JSON-lines file, one event per
  line, flushed per event so ``tail -f`` shows a run live; read back with
  :meth:`JSONLSink.read`.
* :class:`CallbackSink` — forwards every event to a callable (ad-hoc
  hooks, test probes, bridges to external pipelines).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, List

__all__ = ["MemorySink", "JSONLSink", "CallbackSink"]


class MemorySink:
    """Collects events in memory and aggregates them on demand."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------ aggregates

    def _snapshot_events(self) -> List[Dict[str, object]]:
        # Copy-on-read: the emitting thread may still be appending.
        return list(self.events)

    def counters(self) -> Dict[str, float]:
        """Summed counter values by name."""
        totals: Dict[str, float] = {}
        for event in self._snapshot_events():
            if event["type"] == "counter":
                name = str(event["name"])
                totals[name] = totals.get(name, 0.0) + float(event["value"])  # type: ignore[arg-type]
        return totals

    def gauges(self) -> Dict[str, float]:
        """Last recorded gauge value by name."""
        latest: Dict[str, float] = {}
        for event in self._snapshot_events():
            if event["type"] == "gauge":
                latest[str(event["name"])] = float(event["value"])  # type: ignore[arg-type]
        return latest

    def series(self) -> Dict[str, Dict[str, List[float]]]:
        """Every ``point`` series as ``{name: {"x": [...], "y": [...]}}``."""
        out: Dict[str, Dict[str, List[float]]] = {}
        for event in self._snapshot_events():
            if event["type"] == "point":
                slot = out.setdefault(str(event["name"]), {"x": [], "y": []})
                slot["x"].append(float(event["x"]))  # type: ignore[arg-type]
                slot["y"].append(float(event["y"]))  # type: ignore[arg-type]
        return out

    def spans(self) -> Dict[str, Dict[str, float]]:
        """Per-name span summary: count, total/max/mean duration (seconds)."""
        out: Dict[str, Dict[str, float]] = {}
        for event in self._snapshot_events():
            if event["type"] == "span":
                name = str(event["name"])
                summary = out.setdefault(
                    name, {"count": 0.0, "total": 0.0, "max": 0.0}
                )
                duration = float(event["duration"])  # type: ignore[arg-type]
                summary["count"] += 1.0
                summary["total"] += duration
                summary["max"] = max(summary["max"], duration)
        for summary in out.values():
            summary["mean"] = summary["total"] / summary["count"]
        return out

    def marks(self) -> List[Dict[str, object]]:
        """Every ``mark`` event, in emission order."""
        return [event for event in self._snapshot_events() if event["type"] == "mark"]

    def span_events(self) -> List[Dict[str, object]]:
        """Every raw ``span`` event, in emission (exit-time) order."""
        return [event for event in self._snapshot_events() if event["type"] == "span"]

    def snapshot(self) -> Dict[str, object]:
        """One JSON-safe aggregate of everything recorded so far."""
        return {
            "events": len(self.events),
            "counters": self.counters(),
            "gauges": self.gauges(),
            "series": self.series(),
            "spans": self.spans(),
            "marks": self.marks(),
        }


class JSONLSink:
    """Streams events to a JSON-lines file (one event per line, flushed)."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, object]) -> None:
        self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def read(path: os.PathLike | str) -> List[Dict[str, object]]:
        """Read a JSONL event file back into the list of event dicts."""
        events: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events


class CallbackSink:
    """Forwards every event to ``callback`` (exceptions propagate to the emitter)."""

    def __init__(self, callback: Callable[[Dict[str, object]], None]) -> None:
        self.callback = callback

    def emit(self, event: Dict[str, object]) -> None:
        self.callback(event)
