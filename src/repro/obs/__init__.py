"""Observability subsystem: metrics emitter, sinks, bench views, sweep daemon.

``repro.obs`` layers a strictly observational telemetry pipeline over the
simulators and the runner:

* :mod:`repro.obs.emitter` — :class:`MetricsEmitter` (counters, gauges,
  time-series points, nested timing spans, lifecycle marks) plus the
  context-scoped active-emitter installation (:func:`get_emitter` /
  :func:`use_emitter`).  The default emitter is :data:`DISABLED` — a
  guaranteed no-op on every hot path.
* :mod:`repro.obs.sinks` — pluggable event sinks: in-memory aggregation
  (:class:`MemorySink`), JSON-lines streaming (:class:`JSONLSink`),
  callback forwarding (:class:`CallbackSink`).
* :mod:`repro.obs.bench` — the ``BENCH_*.json`` perf-trajectory
  aggregation backing the daemon's ``/bench`` view.
* :mod:`repro.obs.server` — the ``repro serve`` resident sweep daemon
  (imported lazily; pulls in the runner stack).

Instrumented runs are byte-identical to uninstrumented ones: telemetry
reads simulator state and wall clocks, never the RNG streams.
"""

from repro.obs.bench import default_bench_root, load_bench_history
from repro.obs.emitter import DISABLED, MetricsEmitter, get_emitter, use_emitter
from repro.obs.sinks import CallbackSink, JSONLSink, MemorySink

__all__ = [
    "CallbackSink",
    "DISABLED",
    "JSONLSink",
    "MemorySink",
    "MetricsEmitter",
    "default_bench_root",
    "get_emitter",
    "load_bench_history",
    "use_emitter",
]
