"""Aggregate the committed ``BENCH_*.json`` recordings into one view.

The repo commits one benchmark recording per subsystem (`BENCH_simkernel`,
`BENCH_streamkernel`, `BENCH_runner`) as the CI regression baselines; this
module is their first *consumer*: :func:`load_bench_history` reads every
``BENCH_*.json`` under a root directory and condenses the kernel-format
recordings (the ones with a ``populations`` table) into per-population
throughput rows, which the ``repro serve`` daemon exposes at ``/bench`` as
a dashboard-ready perf-trajectory view.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["default_bench_root", "load_bench_history"]


def default_bench_root() -> Path:
    """The repo root for a source checkout (``BENCH_*.json`` live there).

    Resolves relative to the installed ``repro`` package
    (``<root>/src/repro`` in the source layout); callers running against
    an installed wheel should pass an explicit root instead.
    """
    import repro

    return Path(repro.__file__).resolve().parents[2]


def _throughput_rows(record: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-population throughput/speedup rows of one kernel-format recording."""
    rows: List[Dict[str, object]] = []
    for population in record.get("populations", []):  # type: ignore[union-attr]
        if not isinstance(population, dict):
            continue
        row: Dict[str, object] = {}
        if "num_peers" in population:
            row["num_peers"] = population["num_peers"]
        for key, value in population.items():
            if key.endswith("_per_second") or key == "speedup":
                row[key] = value
        if row:
            rows.append(row)
    return rows


def load_bench_history(root: Optional[Path] = None) -> Dict[str, object]:
    """Read every ``BENCH_*.json`` under ``root`` into one aggregate dict.

    Returns ``{"root", "files", "benchmarks", "kernels"}``: ``benchmarks``
    holds every raw recording keyed by file name (unparseable files get an
    ``{"error": ...}`` placeholder instead of failing the whole view), and
    ``kernels`` the condensed throughput rows of the kernel-format
    recordings — the numbers the CI bench gate also regresses against.
    """
    root = Path(root) if root is not None else default_bench_root()
    files = sorted(root.glob("BENCH_*.json"))
    benchmarks: Dict[str, object] = {}
    kernels: Dict[str, object] = {}
    for path in files:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            benchmarks[path.name] = {"error": f"{type(error).__name__}: {error}"}
            continue
        benchmarks[path.name] = record
        if isinstance(record, dict) and record.get("populations"):
            rows = _throughput_rows(record)
            if rows:
                kernels[path.name] = {
                    "profile": record.get("profile"),
                    "rows": rows,
                }
    return {
        "root": str(root),
        "files": [path.name for path in files],
        "benchmarks": benchmarks,
        "kernels": kernels,
    }
