"""``repro serve`` — a resident sweep daemon with live per-run metrics.

A stdlib-only (:mod:`http.server`) JSON API around the existing runner
stack: clients POST sweep jobs, the daemon schedules each job onto
:func:`repro.runner.run_sweep` in its own worker thread with its own
:class:`~repro.obs.emitter.MetricsEmitter` + :class:`~repro.obs.sinks.\
MemorySink`, and the per-round series the simulators emit (Gini,
bankrupt fraction, population, steps/s) stream back over HTTP while the
job runs.  Because telemetry is strictly observational and jobs execute
through the ordinary executor + artifact cache, a sweep submitted over
HTTP produces byte-identical artifacts — same cache keys, same result
bytes — as the same sweep run through ``repro sweep``.

Endpoints
---------
``GET  /healthz``
    Liveness probe: ``{"status": "ok", "runs": <count>}``.
``GET  /runs``
    Every submitted job, newest last, with status and timings.
``POST /runs``
    Submit a job.  Body: ``{"target": "fig7", "params": {"average_wealth":
    [8, 16]}, "scale": "smoke", "reps": 1, "seed": 0, "jobs": 1,
    "intra_jobs": 1, "shards": 4, "partitioner": "overlay",
    "shard_backend": "thread"}`` — ``target`` is a sweepable experiment
    id or a named scenario bundle; everything else is optional.  The
    spatial shard keys apply ambiently (results and cache keys are
    identical to unsharded jobs); invalid values are rejected with
    ``400`` at submission.  Returns ``201`` with the job description
    (including its ``id``).
``GET  /runs/<id>``
    One job's description: status (``pending/running/done/failed``),
    spec summary, executed/cached shard counts, error text on failure.
``GET  /runs/<id>/metrics``
    Live metrics snapshot: counters, gauges, per-round series
    (``{"name": {"x": [...], "y": [...]}}``), span summaries, marks.
``GET  /runs/<id>/result``
    The finished job's shard payloads (the exact JSON artifacts the
    cache stores), ``409`` while the job is still running.
``GET  /bench``
    The committed ``BENCH_*.json`` perf-trajectory view
    (:func:`repro.obs.bench.load_bench_history`).
``POST /shutdown``
    Stop the daemon (it is a local, trusted-network tool; bind it to
    loopback, which is the default).

Per-round simulator series stream only for shards that execute *in
process* (``jobs=1``, the daemon default): a process-pool worker's
emitter is the disabled default.  Shard lifecycle counters and cache
statistics are always emitted from the scheduling thread.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.obs.bench import load_bench_history
from repro.obs.emitter import MetricsEmitter, use_emitter
from repro.obs.sinks import MemorySink

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runner.grid import SweepSpec
    from repro.runner.plan import ExecutionPlan

__all__ = ["SweepJob", "SweepService", "ReproServer", "spec_from_request", "serve"]


def spec_from_request(payload: Mapping[str, object]) -> "SweepSpec":
    """Build a validated :class:`~repro.runner.grid.SweepSpec` from a job request.

    ``params`` maps axis names to value lists (scalars are wrapped), the
    rest mirrors the CLI's sweep options.  Raises ``KeyError``/
    ``ValueError`` for missing targets, unknown experiments or axes —
    surfaced to the client as a 400.
    """
    from repro.runner.grid import ParamGrid, build_spec

    if "target" not in payload or not str(payload["target"]).strip():
        raise ValueError("job request must name a 'target' experiment or scenario")
    params = payload.get("params") or {}
    if not isinstance(params, Mapping):
        raise ValueError("'params' must map axis names to value lists")
    grid = None
    if params:
        grid = ParamGrid(
            {
                str(name): list(values) if isinstance(values, (list, tuple)) else [values]
                for name, values in params.items()
            }
        )
    scale = payload.get("scale")
    return build_spec(
        str(payload["target"]),
        grid=grid,
        replications=int(payload.get("reps", 1)),  # type: ignore[arg-type]
        base_seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
        scale=str(scale) if scale is not None else None,
    )


def _plan_for(
    intra_jobs: int,
    shards: Optional[int],
    partitioner: Optional[str],
    shard_backend: Optional[str],
) -> "ExecutionPlan":
    """Validated :class:`~repro.runner.plan.ExecutionPlan` for a job's knobs."""
    from repro.runner import ExecutionPlan

    return ExecutionPlan(
        intra_jobs=intra_jobs,
        shards=shards,
        partitioner=partitioner,
        shard_backend=shard_backend,
    )


class SweepJob:
    """One submitted sweep job: spec, scheduling knobs, live metrics, result."""

    def __init__(
        self,
        job_id: str,
        spec: "SweepSpec",
        jobs: int,
        intra_jobs: int,
        cache_dir: Optional[str],
        shards: Optional[int] = None,
        partitioner: Optional[str] = None,
        shard_backend: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.jobs = jobs
        self.intra_jobs = intra_jobs
        self.cache_dir = cache_dir
        self.shards = shards
        self.partitioner = partitioner
        self.shard_backend = shard_backend
        self.status = "pending"
        self.error: Optional[str] = None
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.sink = MemorySink()
        self.summary: Optional[Dict[str, object]] = None
        self.payloads: Optional[List[Dict[str, object]]] = None

    def describe(self) -> Dict[str, object]:
        """JSON-safe description for ``/runs`` and ``/runs/<id>``."""
        description: Dict[str, object] = {
            "id": self.id,
            "spec": self.spec.describe(),
            "experiment_id": self.spec.experiment_id,
            "status": self.status,
            "jobs": self.jobs,
            "intra_jobs": self.intra_jobs,
            "shards": self.shards,
            "partitioner": self.partitioner,
            "shard_backend": self.shard_backend,
            "cache_dir": self.cache_dir,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
        }
        if self.error is not None:
            description["error"] = self.error
        if self.summary is not None:
            description["summary"] = self.summary
        return description


class SweepService:
    """Schedules submitted jobs onto the runner, one worker thread per job."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        default_jobs: int = 1,
        default_intra_jobs: int = 1,
        default_shards: Optional[int] = None,
        default_partitioner: Optional[str] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.default_jobs = default_jobs
        self.default_intra_jobs = default_intra_jobs
        self.default_shards = default_shards
        self.default_partitioner = default_partitioner
        self._jobs: Dict[str, SweepJob] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._threads: Dict[str, threading.Thread] = {}

    def submit(self, payload: Mapping[str, object]) -> SweepJob:
        """Validate a job request, register it and start its worker thread."""
        spec = spec_from_request(payload)
        jobs = int(payload.get("jobs", self.default_jobs))  # type: ignore[arg-type]
        intra_jobs = int(payload.get("intra_jobs", self.default_intra_jobs))  # type: ignore[arg-type]
        cache_dir = payload.get("cache_dir", self.cache_dir)
        raw_shards = payload.get("shards", self.default_shards)
        shards = int(raw_shards) if raw_shards is not None else None  # type: ignore[arg-type]
        partitioner = payload.get("partitioner", self.default_partitioner)
        shard_backend = payload.get("shard_backend")
        # Building the plan up front validates the spatial shard settings at
        # submission time, so a bad request 400s instead of failing its
        # worker thread later.
        _plan_for(
            intra_jobs,
            shards,
            str(partitioner) if partitioner is not None else None,
            str(shard_backend) if shard_backend is not None else None,
        )
        with self._lock:
            job = SweepJob(
                f"run-{next(self._ids):04d}",
                spec,
                jobs=jobs,
                intra_jobs=intra_jobs,
                cache_dir=str(cache_dir) if cache_dir else None,
                shards=shards,
                partitioner=str(partitioner) if partitioner is not None else None,
                shard_backend=str(shard_backend) if shard_backend is not None else None,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            thread = threading.Thread(
                target=self._execute, args=(job,), name=f"repro-serve-{job.id}", daemon=True
            )
            self._threads[job.id] = thread
        thread.start()
        return job

    def get(self, job_id: str) -> Optional[SweepJob]:
        """The job registered under ``job_id`` (``None`` if unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Dict[str, object]]:
        """Descriptions of every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id].describe() for job_id in self._order]

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker thread to finish (tests and clean shutdown)."""
        with self._lock:
            threads = list(self._threads.values())
        for thread in threads:
            thread.join(timeout)

    def _execute(self, job: SweepJob) -> None:
        from repro.runner import ArtifactCache, run_sweep

        job.status = "running"
        job.started = time.time()
        emitter = MetricsEmitter(sinks=[job.sink])
        try:
            cache = ArtifactCache(job.cache_dir) if job.cache_dir else None
            with use_emitter(emitter):
                report = run_sweep(
                    job.spec,  # type: ignore[arg-type]
                    jobs=job.jobs,
                    cache=cache,
                    plan=_plan_for(
                        job.intra_jobs, job.shards, job.partitioner, job.shard_backend
                    ),
                )
            job.payloads = [shard.payload for shard in report.shards]
            job.summary = {
                "describe": report.describe(),
                "summary_line": report.summary_line(),
                "shards": len(report.shards),
                "executed": report.executed,
                "cached": report.cached,
                "duration": report.duration,
                "cache_stats": report.cache_stats,
            }
            job.status = "done"
        except BaseException as error:  # noqa: BLE001 - reported over HTTP
            job.error = f"{type(error).__name__}: {error}"
            job.status = "failed"
        finally:
            job.finished = time.time()


_RUN_PATH = re.compile(r"^/runs/(?P<job_id>[^/]+)(?P<tail>/metrics|/result)?$")


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON API; the owning :class:`ReproServer` holds the state."""

    server: "ReproServer"
    protocol_version = "HTTP/1.1"

    # Silence the default per-request stderr lines; the daemon is the UI.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------ GET routes

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path != "/" and path.endswith("/"):
            path = path.rstrip("/")
        if path == "/healthz":
            self._send_json(
                {"status": "ok", "runs": len(self.server.service.list())}
            )
            return
        if path == "/runs":
            self._send_json({"runs": self.server.service.list()})
            return
        if path == "/bench":
            self._send_json(load_bench_history(self.server.bench_root))
            return
        match = _RUN_PATH.match(path)
        if match:
            job = self.server.service.get(match.group("job_id"))
            if job is None:
                self._error(404, f"unknown run {match.group('job_id')!r}")
                return
            tail = match.group("tail")
            if tail == "/metrics":
                self._send_json({"id": job.id, "status": job.status, **job.sink.snapshot()})
            elif tail == "/result":
                if job.payloads is None:
                    self._error(409, f"run {job.id} is {job.status}; no result yet")
                else:
                    self._send_json({"id": job.id, "shards": job.payloads})
            else:
                self._send_json(job.describe())
            return
        self._error(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------ POST routes

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/runs":
            try:
                payload = self._read_body()
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                self._error(400, f"request body is not valid JSON: {error}")
                return
            if not isinstance(payload, Mapping):
                self._error(400, "request body must be a JSON object")
                return
            try:
                job = self.server.service.submit(payload)
            except (KeyError, ValueError, TypeError) as error:
                message = error.args[0] if error.args else str(error)
                self._error(400, str(message))
                return
            self._send_json(job.describe(), status=201)
            return
        if path == "/shutdown":
            self._send_json({"status": "shutting down"})
            # shutdown() blocks until serve_forever returns; do it from a
            # helper thread so this handler can finish its response first.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        self._error(404, f"unknown path {path!r}")


class ReproServer(ThreadingHTTPServer):
    """The resident sweep daemon: ThreadingHTTPServer + job service + bench view.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`);
    the default host is loopback — the API is unauthenticated by design
    and must not be exposed beyond the local machine.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        intra_jobs: int = 1,
        shards: Optional[int] = None,
        partitioner: Optional[str] = None,
        bench_root: Optional[str] = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = SweepService(
            cache_dir=cache_dir,
            default_jobs=jobs,
            default_intra_jobs=intra_jobs,
            default_shards=shards,
            default_partitioner=partitioner,
        )
        self.bench_root = Path(bench_root) if bench_root else None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        return int(self.server_address[1])


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    intra_jobs: int = 1,
    shards: Optional[int] = None,
    partitioner: Optional[str] = None,
    bench_root: Optional[str] = None,
) -> int:
    """Run the daemon until interrupted or shut down over HTTP (CLI entry)."""
    server = ReproServer(
        host=host,
        port=port,
        cache_dir=cache_dir,
        jobs=jobs,
        intra_jobs=intra_jobs,
        shards=shards,
        partitioner=partitioner,
        bench_root=bench_root,
    )
    print(f"repro serve listening on http://{host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
