"""A BitTorrent-like tit-for-tat barter baseline (no currency).

The paper motivates credit incentives by noting that barter (tit-for-tat)
works for file sharing but serves streaming poorly (Sec. I).  This baseline
implements a round-based tit-for-tat swarm: every round each peer unchokes
the neighbours that uploaded the most to it in the previous round (plus one
optimistic unchoke) and uploads up to its capacity to unchoked neighbours
that still need chunks.  It reports per-peer download rates and their
dispersion, so it can be compared with the credit market on the same
overlay and demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.core.metrics import gini_index
from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng

__all__ = ["TitForTatResult", "TitForTatSwarm"]


@dataclass(frozen=True)
class TitForTatResult:
    """Outcome of a tit-for-tat swarm simulation.

    Attributes
    ----------
    download_rates:
        Average chunks received per round, per peer.
    completion_fraction:
        Fraction of the content each peer ended up holding.
    download_gini:
        Gini index of the download rates (dispersion of service quality).
    free_rider_rate:
        Mean download rate of the peers configured as free riders (0 upload
        capacity); tit-for-tat should starve them.
    """

    download_rates: np.ndarray
    completion_fraction: np.ndarray
    download_gini: float
    free_rider_rate: float


class TitForTatSwarm:
    """Round-based tit-for-tat content swarm.

    Parameters
    ----------
    topology:
        The overlay; exchanges happen only between neighbours.
    num_chunks:
        Size of the shared content in chunks.
    upload_capacity:
        Chunks a cooperating peer can upload per round.
    unchoke_slots:
        Number of reciprocal unchoke slots per peer per round.
    free_rider_fraction:
        Fraction of peers that never upload (capacity 0).
    initial_seed_fraction:
        Fraction of peers that start with the full content.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        topology: OverlayTopology,
        num_chunks: int = 200,
        upload_capacity: int = 4,
        unchoke_slots: int = 3,
        free_rider_fraction: float = 0.0,
        initial_seed_fraction: float = 0.05,
        seed: Optional[int] = None,
    ) -> None:
        if topology.num_peers < 2:
            raise ValueError("the swarm needs at least 2 peers")
        if num_chunks < 1:
            raise ValueError("num_chunks must be at least 1")
        if upload_capacity < 1:
            raise ValueError("upload_capacity must be at least 1")
        if unchoke_slots < 1:
            raise ValueError("unchoke_slots must be at least 1")
        if not 0.0 <= free_rider_fraction < 1.0:
            raise ValueError("free_rider_fraction must be in [0, 1)")
        if not 0.0 < initial_seed_fraction <= 1.0:
            raise ValueError("initial_seed_fraction must be in (0, 1]")
        self.topology = topology
        self.num_chunks = int(num_chunks)
        self.upload_capacity = int(upload_capacity)
        self.unchoke_slots = int(unchoke_slots)
        self._rng = make_rng(seed, "titfortat")

        peers = topology.peers()
        self.holdings: Dict[int, Set[int]] = {peer: set() for peer in peers}
        num_seeds = max(1, int(round(len(peers) * initial_seed_fraction)))
        seed_peers = self._rng.choice(peers, size=num_seeds, replace=False)
        for peer in seed_peers:
            self.holdings[int(peer)] = set(range(self.num_chunks))
        num_free_riders = int(round(len(peers) * free_rider_fraction))
        eligible = [peer for peer in peers if peer not in {int(p) for p in seed_peers}]
        chosen = (
            self._rng.choice(eligible, size=min(num_free_riders, len(eligible)), replace=False)
            if num_free_riders and eligible
            else []
        )
        self.free_riders: Set[int] = {int(peer) for peer in chosen}
        # Cumulative chunks received from each neighbour; reciprocity ranks on
        # this history, so one-off optimistic unchokes do not buy lasting slots.
        self._received_total: Dict[int, Dict[int, int]] = {peer: {} for peer in peers}
        self._downloaded: Dict[int, int] = {peer: 0 for peer in peers}

    # ------------------------------------------------------------------ one round

    def _select_unchoked(self, peer: int) -> Set[int]:
        """Reciprocity-ranked unchoke set plus one random optimistic unchoke.

        Only neighbours that actually uploaded something in the previous
        round compete for the reciprocal slots; everyone else (including
        free riders) can only be reached through the single optimistic
        unchoke, which is what starves non-contributors in BitTorrent.
        """
        neighbors = list(self.topology.neighbors(peer))
        if not neighbors:
            return set()
        if len(self.holdings[peer]) >= self.num_chunks:
            # Seeds have nothing to reciprocate for; like BitTorrent seeds they
            # simply rotate their slots over random neighbours.
            count = min(self.unchoke_slots + 1, len(neighbors))
            chosen = self._rng.choice(neighbors, size=count, replace=False)
            return {int(neighbor) for neighbor in chosen}
        received = self._received_total[peer]
        contributors = [n for n in neighbors if received.get(n, 0) > 0]
        ranked = sorted(contributors, key=lambda n: received[n], reverse=True)
        unchoked = set(ranked[: self.unchoke_slots])
        others = [n for n in neighbors if n not in unchoked]
        if others:
            unchoked.add(int(self._rng.choice(others)))
        return unchoked

    def step(self) -> int:
        """Run one round of unchoking and uploads; returns chunks transferred."""
        peers = self.topology.peers()
        unchoked_map = {peer: self._select_unchoked(peer) for peer in peers}
        transferred = 0
        order = list(peers)
        self._rng.shuffle(order)
        for uploader in order:
            if uploader in self.free_riders:
                continue
            budget = self.upload_capacity
            targets = [peer for peer in unchoked_map[uploader] if peer in self.holdings]
            self._rng.shuffle(targets)
            for target in targets:
                if budget <= 0:
                    break
                missing = list(self.holdings[uploader] - self.holdings[target])
                if not missing:
                    continue
                chunk = int(self._rng.choice(missing))
                self.holdings[target].add(chunk)
                self._downloaded[target] += 1
                totals = self._received_total[target]
                totals[uploader] = totals.get(uploader, 0) + 1
                budget -= 1
                transferred += 1
        return transferred

    # ------------------------------------------------------------------ simulation

    def run(self, num_rounds: int = 200) -> TitForTatResult:
        """Run ``num_rounds`` rounds and return download statistics."""
        if num_rounds < 1:
            raise ValueError("num_rounds must be at least 1")
        for _ in range(int(num_rounds)):
            self.step()
        peers = self.topology.peers()
        rates = np.array([self._downloaded[peer] / float(num_rounds) for peer in peers])
        completion = np.array(
            [len(self.holdings[peer]) / float(self.num_chunks) for peer in peers]
        )
        free_rider_rates = [
            self._downloaded[peer] / float(num_rounds) for peer in self.free_riders
        ]
        return TitForTatResult(
            download_rates=rates,
            completion_fraction=completion,
            download_gini=gini_index(rates) if rates.sum() > 0 else 0.0,
            free_rider_rate=float(np.mean(free_rider_rates)) if free_rider_rates else 0.0,
        )
