"""A Friedman–Halpern–Kash style scrip system baseline.

The scrip-system model (Friedman et al., ACM EC'06 — reference [8] of the
paper) studies a population in which, at random times, one agent wants a
service that some other agent can provide; the requester pays one unit of
scrip if it has any, otherwise the request fails.  The headline result the
paper cites is that *too much* total scrip makes the system collapse (once
everybody is satiated with scrip nobody volunteers to work), while too
little scrip starves requesters — the same "average wealth matters" message
as the paper's Theorems 2–3, in a stylised setting.

The implementation here is an agent-based Monte-Carlo of that model with a
simple satiation rule: an agent asked to provide service accepts with
probability 1 while its scrip holding is below its satiation point and
refuses once it holds at least that much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.metrics import gini_index
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = ["ScripSystemResult", "ScripSystem"]


@dataclass(frozen=True)
class ScripSystemResult:
    """Outcome of a scrip-system simulation.

    Attributes
    ----------
    success_rate:
        Fraction of service requests that were actually served (the paper's
        notion of system efficiency).
    failure_no_money:
        Fraction of requests that failed because the requester had no scrip.
    failure_no_provider:
        Fraction of requests that failed because every capable provider was
        satiated and refused to work.
    final_gini:
        Gini index of the final scrip distribution.
    final_holdings:
        Final scrip holdings per agent.
    """

    success_rate: float
    failure_no_money: float
    failure_no_provider: float
    final_gini: float
    final_holdings: np.ndarray


class ScripSystem:
    """Agent-based scrip-system simulator.

    Parameters
    ----------
    num_agents:
        Population size.
    average_scrip:
        Initial (and total/agent) amount of scrip per agent — the knob whose
        sweet spot the Friedman et al. analysis identifies.
    satiation_point:
        Scrip holding at which an agent stops volunteering to provide
        service.
    provider_fraction:
        Probability that a random agent is able to serve a given request
        (models the fraction of peers holding the requested object).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        num_agents: int = 100,
        average_scrip: float = 5.0,
        satiation_point: float = 10.0,
        provider_fraction: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        if num_agents < 2:
            raise ValueError("num_agents must be at least 2")
        check_positive(average_scrip, "average_scrip")
        check_positive(satiation_point, "satiation_point")
        if not 0.0 < provider_fraction <= 1.0:
            raise ValueError("provider_fraction must be in (0, 1]")
        self.num_agents = int(num_agents)
        self.average_scrip = float(average_scrip)
        self.satiation_point = float(satiation_point)
        self.provider_fraction = float(provider_fraction)
        self._rng = make_rng(seed, "scrip-system")

    def run(self, num_requests: int = 50_000) -> ScripSystemResult:
        """Simulate ``num_requests`` service requests and return aggregate statistics."""
        if num_requests < 1:
            raise ValueError("num_requests must be at least 1")
        rng = self._rng
        holdings = np.full(self.num_agents, self.average_scrip)
        served = 0
        failed_no_money = 0
        failed_no_provider = 0
        for _ in range(int(num_requests)):
            requester = int(rng.integers(self.num_agents))
            if holdings[requester] < 1.0:
                failed_no_money += 1
                continue
            # Draw the set of agents able to provide this particular service.
            capable = rng.random(self.num_agents) < self.provider_fraction
            capable[requester] = False
            willing = capable & (holdings < self.satiation_point)
            candidates = np.flatnonzero(willing)
            if candidates.size == 0:
                failed_no_provider += 1
                continue
            provider = int(rng.choice(candidates))
            holdings[requester] -= 1.0
            holdings[provider] += 1.0
            served += 1
        total = float(num_requests)
        return ScripSystemResult(
            success_rate=served / total,
            failure_no_money=failed_no_money / total,
            failure_no_provider=failed_no_provider / total,
            final_gini=gini_index(holdings),
            final_holdings=holdings,
        )

    def sweep_average_scrip(
        self, scrip_levels, num_requests: int = 20_000
    ) -> "list[ScripSystemResult]":
        """Run the model at several total-scrip levels (the Friedman et al. sweep)."""
        results = []
        for level in scrip_levels:
            system = ScripSystem(
                num_agents=self.num_agents,
                average_scrip=float(level),
                satiation_point=self.satiation_point,
                provider_fraction=self.provider_fraction,
                seed=int(self._rng.integers(2**31 - 1)),
            )
            results.append(system.run(num_requests=num_requests))
        return results
