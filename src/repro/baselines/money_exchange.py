"""Econophysics money-exchange models (Drăgulescu–Yakovenko and variants).

The paper traces the idea of wealth condensation to the economics and
econophysics literature ([13], [17], [27]).  The canonical toy models are
random pairwise money exchanges in a closed economy:

* ``"uniform"`` — the two traders pool their money and split it uniformly
  at random (yields an exponential/Boltzmann–Gibbs wealth distribution,
  Gini → 0.5);
* ``"fixed"`` — a fixed amount moves from one random trader to the other
  (also exponential in equilibrium, with a reflecting floor at zero);
* ``"proportional"`` — the loser gives a fixed *fraction* of its wealth
  (yields a heavier-tailed, more condensed distribution);
* ``"savings"`` — each trader keeps a savings fraction and the remainder is
  pooled and split (Chakraborti–Chakrabarti; higher savings → more equal).

These provide reference Gini values against which the Jackson-network
wealth distributions of the paper can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.metrics import gini_index, wealth_summary
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, check_positive

__all__ = ["MoneyExchangeResult", "simulate_money_exchange"]

_VALID_RULES = ("uniform", "fixed", "proportional", "savings")


@dataclass(frozen=True)
class MoneyExchangeResult:
    """Outcome of a money-exchange simulation.

    Attributes
    ----------
    rule:
        The exchange rule simulated.
    final_wealths:
        Final wealth of every agent.
    final_gini:
        Gini index of the final wealth distribution.
    summary:
        Full wealth summary (mean, median, top shares, ...).
    """

    rule: str
    final_wealths: np.ndarray
    final_gini: float
    summary: dict


def simulate_money_exchange(
    num_agents: int = 500,
    average_wealth: float = 100.0,
    num_exchanges: int = 200_000,
    rule: str = "uniform",
    exchange_amount: float = 1.0,
    exchange_fraction: float = 0.1,
    savings_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> MoneyExchangeResult:
    """Simulate a closed random-exchange economy and return the final distribution.

    Parameters
    ----------
    num_agents:
        Population size.
    average_wealth:
        Initial wealth per agent (the economy's total is conserved).
    num_exchanges:
        Number of pairwise exchange events.
    rule:
        One of ``"uniform"``, ``"fixed"``, ``"proportional"``, ``"savings"``.
    exchange_amount:
        Amount moved per event under the ``"fixed"`` rule.
    exchange_fraction:
        Fraction of the loser's wealth moved under ``"proportional"``.
    savings_fraction:
        Fraction each trader keeps under ``"savings"``.
    seed:
        RNG seed.
    """
    if num_agents < 2:
        raise ValueError("num_agents must be at least 2")
    check_positive(average_wealth, "average_wealth")
    if num_exchanges < 1:
        raise ValueError("num_exchanges must be at least 1")
    if rule not in _VALID_RULES:
        raise ValueError(f"rule must be one of {_VALID_RULES}, got {rule!r}")
    check_positive(exchange_amount, "exchange_amount")
    check_fraction(exchange_fraction, "exchange_fraction")
    check_fraction(savings_fraction, "savings_fraction")

    rng = make_rng(seed, "money-exchange", rule)
    wealth = np.full(int(num_agents), float(average_wealth))

    for _ in range(int(num_exchanges)):
        i, j = rng.choice(num_agents, size=2, replace=False)
        if rule == "uniform":
            pool = wealth[i] + wealth[j]
            share = rng.random()
            wealth[i] = pool * share
            wealth[j] = pool * (1.0 - share)
        elif rule == "fixed":
            loser, winner = (i, j) if rng.random() < 0.5 else (j, i)
            amount = min(exchange_amount, wealth[loser])
            wealth[loser] -= amount
            wealth[winner] += amount
        elif rule == "proportional":
            loser, winner = (i, j) if rng.random() < 0.5 else (j, i)
            amount = exchange_fraction * wealth[loser]
            wealth[loser] -= amount
            wealth[winner] += amount
        else:  # savings
            pool = (1.0 - savings_fraction) * (wealth[i] + wealth[j])
            share = rng.random()
            kept_i = savings_fraction * wealth[i]
            kept_j = savings_fraction * wealth[j]
            wealth[i] = kept_i + pool * share
            wealth[j] = kept_j + pool * (1.0 - share)

    return MoneyExchangeResult(
        rule=rule,
        final_wealths=wealth,
        final_gini=gini_index(wealth),
        summary=wealth_summary(wealth),
    )
