"""Baseline and comparison models from the paper's related-work section.

These models position the credit-market analysis against the alternatives
the paper discusses (Sec. II):

* :class:`~repro.baselines.scrip_system.ScripSystem` — a Friedman/Halpern/
  Kash-style scrip system where peers alternate between wanting service and
  providing it; used to study performance as a function of the total amount
  of internal currency.
* :class:`~repro.baselines.credit_network.CreditNetwork` — a Dandekar et
  al.-style pairwise credit-line network, measuring liquidity (transaction
  success) and bankruptcy probability versus credit capacity and density.
* :class:`~repro.baselines.titfortat.TitForTatSwarm` — a BitTorrent-like
  barter baseline (no currency at all) for download-rate comparisons.
* :func:`~repro.baselines.money_exchange.simulate_money_exchange` —
  Drăgulescu–Yakovenko random-exchange economies, the classic econophysics
  models of money distribution the paper cites as inspiration for wealth
  condensation.
"""

from repro.baselines.scrip_system import ScripSystem, ScripSystemResult
from repro.baselines.credit_network import CreditNetwork, CreditNetworkResult
from repro.baselines.titfortat import TitForTatSwarm, TitForTatResult
from repro.baselines.money_exchange import (
    MoneyExchangeResult,
    simulate_money_exchange,
)

__all__ = [
    "ScripSystem",
    "ScripSystemResult",
    "CreditNetwork",
    "CreditNetworkResult",
    "TitForTatSwarm",
    "TitForTatResult",
    "MoneyExchangeResult",
    "simulate_money_exchange",
]
