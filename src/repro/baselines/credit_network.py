"""A Dandekar et al.-style pairwise credit network baseline.

Reference [22] of the paper models trust as pairwise credit lines: an edge
``(u, v)`` with capacity ``C`` means ``u`` is willing to be owed up to ``C``
units by ``v`` (and vice versa, tracked separately).  A payment from buyer
to seller succeeds if there is enough residual credit along some path
between them; repeated transactions shift credit around and the questions
are *liquidity* (what fraction of payments succeed in steady state) and
*bankruptcy* (how often a node ends up unable to pay anyone).

Dandekar et al. show, via simulation on complete graphs and other dense
topologies, that liquidity improves with credit capacity and network
density — the baseline the paper contrasts with its analytical treatment.
This implementation supports arbitrary overlay topologies, single-hop or
shortest-path multi-hop payment routing, and reports success rate and
bankruptcy probability.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.metrics import gini_index
from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = ["CreditNetworkResult", "CreditNetwork"]


@dataclass(frozen=True)
class CreditNetworkResult:
    """Outcome of a credit-network simulation.

    Attributes
    ----------
    success_rate:
        Fraction of attempted payments that found sufficient credit.
    bankruptcy_probability:
        Fraction of (agent, time) samples at which the agent could not pay
        one unit to any neighbour — Dandekar et al.'s robustness metric.
    final_gini:
        Gini index of each node's total outgoing purchasing power at the end.
    purchasing_power:
        Final residual outgoing credit per node.
    """

    success_rate: float
    bankruptcy_probability: float
    final_gini: float
    purchasing_power: np.ndarray


class CreditNetwork:
    """Pairwise credit-line network with unit payments.

    Parameters
    ----------
    topology:
        The trust graph; every edge carries ``credit_capacity`` in each
        direction initially.
    credit_capacity:
        Initial credit line per direction per edge.
    multi_hop:
        When True payments may be routed along shortest residual paths
        (breadth-first search); when False only direct neighbours can be
        paid.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        topology: OverlayTopology,
        credit_capacity: float = 2.0,
        multi_hop: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if topology.num_peers < 2:
            raise ValueError("the credit network needs at least 2 nodes")
        check_positive(credit_capacity, "credit_capacity")
        self.topology = topology
        self.credit_capacity = float(credit_capacity)
        self.multi_hop = bool(multi_hop)
        self._rng = make_rng(seed, "credit-network")
        # residual[u][v] = how much more v may pay u along edge (u, v).
        self._residual: Dict[int, Dict[int, float]] = {
            node: {neighbor: self.credit_capacity for neighbor in topology.neighbors(node)}
            for node in topology.peers()
        }

    # ------------------------------------------------------------------ payments

    def residual(self, creditor: int, debtor: int) -> float:
        """Remaining credit ``debtor`` may draw against ``creditor``."""
        return self._residual[creditor].get(debtor, 0.0)

    def _find_path(self, payer: int, payee: int) -> Optional[List[int]]:
        """Shortest path from payer to payee along edges with residual credit."""
        if payer == payee:
            return [payer]
        parents: Dict[int, int] = {payer: payer}
        frontier = deque([payer])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.topology.neighbors(node):
                # The payer pushes one unit toward the payee: the hop node ->
                # neighbor consumes credit that `neighbor` extends to `node`.
                if neighbor in parents:
                    continue
                if self._residual.get(neighbor, {}).get(node, 0.0) < 1.0:
                    continue
                parents[neighbor] = node
                if neighbor == payee:
                    path = [payee]
                    while path[-1] != payer:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append(neighbor)
        return None

    def pay(self, payer: int, payee: int, amount: float = 1.0) -> bool:
        """Attempt a payment of ``amount`` (integral units of 1) from payer to payee."""
        if amount != 1.0:
            raise ValueError("this baseline settles unit payments only")
        if self.multi_hop:
            path = self._find_path(payer, payee)
            if path is None:
                return False
            for upstream, downstream in zip(path, path[1:]):
                self._residual[downstream][upstream] -= 1.0
                self._residual.setdefault(upstream, {}).setdefault(downstream, 0.0)
                self._residual[upstream][downstream] += 1.0
            return True
        if self._residual.get(payee, {}).get(payer, 0.0) < 1.0:
            return False
        self._residual[payee][payer] -= 1.0
        self._residual[payer][payee] = self._residual[payer].get(payee, 0.0) + 1.0
        return True

    # ------------------------------------------------------------------ metrics

    def purchasing_power(self, node: int) -> float:
        """Total credit ``node`` can currently draw from its neighbours."""
        return float(
            sum(
                self._residual[neighbor].get(node, 0.0)
                for neighbor in self.topology.neighbors(node)
            )
        )

    def is_bankrupt(self, node: int) -> bool:
        """Whether ``node`` cannot pay even one unit to any neighbour."""
        return self.purchasing_power(node) < 1.0

    # ------------------------------------------------------------------ simulation

    def run(self, num_payments: int = 20_000, sample_every: int = 100) -> CreditNetworkResult:
        """Simulate random unit payments between random node pairs.

        Parameters
        ----------
        num_payments:
            Number of payment attempts.
        sample_every:
            Interval (in payments) at which bankruptcy is sampled across nodes.
        """
        if num_payments < 1:
            raise ValueError("num_payments must be at least 1")
        rng = self._rng
        nodes = self.topology.peers()
        successes = 0
        bankrupt_samples: List[float] = []
        for attempt in range(int(num_payments)):
            payer, payee = rng.choice(nodes, size=2, replace=False)
            if self.pay(int(payer), int(payee)):
                successes += 1
            if sample_every and attempt % sample_every == 0:
                bankrupt_samples.append(
                    float(np.mean([self.is_bankrupt(node) for node in nodes]))
                )
        power = np.array([self.purchasing_power(node) for node in nodes])
        return CreditNetworkResult(
            success_rate=successes / float(num_payments),
            bankruptcy_probability=float(np.mean(bankrupt_samples)) if bankrupt_samples else 0.0,
            final_gini=gini_index(power),
            purchasing_power=power,
        )
