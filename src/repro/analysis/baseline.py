"""Committed baseline of grandfathered findings.

A baseline lets the CI gate block *new* findings while known, justified
ones ride along.  Entries match on ``(rule, path, content-hash)`` — the
hash covers the rule id plus the stripped source line, so unrelated edits
that merely shift line numbers do not invalidate the baseline, while any
change to the flagged line itself re-surfaces the finding for review.

Regeneration (``repro analyze --write-baseline``) preserves the written
justification of every surviving entry, so the reviewable "why is this
allowed" record outlives reformatting.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.core import STATUS_ACTIVE, STATUS_BASELINED, Finding

__all__ = ["BaselineEntry", "Baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    content_hash: str
    #: Informational only — where the finding sat when the entry was written.
    line: int
    snippet: str
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.content_hash)


class Baseline:
    """An ordered collection of grandfathered findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        source = Path(path)
        if not source.is_file():
            return cls()
        payload = json.loads(source.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline format version {version!r} in {source} "
                f"(expected {_FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                content_hash=str(item["content_hash"]),
                line=int(item.get("line", 0)),
                snippet=str(item.get("snippet", "")),
                justification=str(item.get("justification", "")),
            )
            for item in payload.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "content_hash": entry.content_hash,
                    "line": entry.line,
                    "snippet": entry.snippet,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, findings: Sequence[Finding]) -> None:
        """Mark baselined findings in place (count-aware per key)."""
        budget: Counter[Tuple[str, str, str]] = Counter(entry.key for entry in self.entries)
        reasons: Dict[Tuple[str, str, str], str] = {}
        for entry in self.entries:
            reasons.setdefault(entry.key, entry.justification)
        for finding in findings:
            if finding.status != STATUS_ACTIVE:
                continue
            if budget.get(finding.key, 0) > 0:
                budget[finding.key] -= 1
                finding.status = STATUS_BASELINED
                finding.justification = reasons.get(finding.key, "")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """Baseline every gating finding, keeping surviving justifications."""
        carried: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                carried.setdefault(entry.key, entry.justification)
        entries = [
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                content_hash=finding.content_hash,
                line=finding.line,
                snippet=finding.snippet,
                justification=carried.get(finding.key, ""),
            )
            for finding in sorted(
                (f for f in findings if f.status in (STATUS_ACTIVE, STATUS_BASELINED)),
                key=Finding.sort_key,
            )
        ]
        return cls(entries)
