"""File discovery, suppression parsing and analysis orchestration.

This is the driver: it finds the ``.py`` files under the requested paths
(in sorted order — the analyzer eats its own DET002 dogfood), parses each
one, runs every in-scope rule, applies ``# repro: noqa`` suppressions and
the committed baseline, and assembles a :class:`Report`.

Suppression syntax, on the flagged line::

    risky_call()  # repro: noqa DET003 -- wall time feeds the log line only

The rule list and the ``-- reason`` are both mandatory: a suppression
without either does not suppress and is itself reported (NOQA001), and a
suppression that matches no finding is reported as stale (NOQA002) so
dead annotations cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.baseline import Baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.core import (
    STATUS_ACTIVE,
    STATUS_BASELINED,
    STATUS_SUPPRESSED,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
)

__all__ = ["Suppression", "Report", "iter_python_files", "analyze_file", "analyze_paths"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")
_RULE_ID_RE = re.compile(r"[A-Z]+\d+")

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".artifact-cache"}


@dataclass
class Suppression:
    """One parsed ``# repro: noqa`` annotation."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Set while matching findings; unused suppressions become NOQA002.
    used: bool = False


@dataclass
class Report:
    """Everything one analyzer run produced."""

    paths: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_ACTIVE]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_SUPPRESSED]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_BASELINED]

    def per_rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """All ``.py`` files under ``paths``, sorted, caches skipped."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                    continue
                found.append(candidate)
        elif path.is_file():
            found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # De-duplicate while preserving the sorted-per-root order.
    seen: Dict[Path, None] = {}
    for path in found:
        seen.setdefault(path, None)
    return list(seen)


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every comment token; strings never match."""
    comments: List[Tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable files already gate via PARSE001; any comments the
        # tokenizer managed to produce before failing are still honoured.
        pass
    return comments


def parse_suppressions(source: str) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Extract suppressions; malformed ones come back as (line, problem)."""
    suppressions: List[Suppression] = []
    malformed: List[Tuple[int, str]] = []
    for lineno, comment in _comment_tokens(source):
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        rest = match.group("rest")
        if "--" in rest:
            codes_part, _, reason = rest.partition("--")
        else:
            codes_part, reason = rest, ""
        rules = tuple(_RULE_ID_RE.findall(codes_part))
        reason = reason.strip()
        if not rules:
            malformed.append(
                (lineno, "suppression names no rule ids (e.g. `# repro: noqa DET001 -- why`)")
            )
            continue
        if not reason:
            malformed.append(
                (lineno, "suppression has no `-- reason` justification; it will not suppress")
            )
            continue
        suppressions.append(Suppression(line=lineno, rules=rules, reason=reason))
    return suppressions, malformed


def _display_path(path: Path) -> str:
    """Stable report spelling: relative to cwd when possible, posix slashes."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_file(
    path: Path,
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run every in-scope rule over one file, suppressions applied."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        line = error.lineno or 1
        return [
            Finding(
                rule="PARSE001",
                severity=Severity.ERROR,
                path=display,
                line=line,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
                snippet="",
            )
        ]
    ctx = FileContext(path=display, source=source, tree=tree)
    active_rules = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active_rules:
        if not config.in_scope(rule.id, ctx):
            continue
        findings.extend(rule.check(ctx, config))

    suppressions, malformed = parse_suppressions(source)
    for lineno, problem in malformed:
        findings.append(
            Finding(
                rule="NOQA001",
                severity=Severity.WARNING,
                path=display,
                line=lineno,
                col=0,
                message=problem,
                snippet=ctx.snippet(lineno),
            )
        )
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    for finding in findings:
        for suppression in by_line.get(finding.line, []):
            if finding.rule in suppression.rules and finding.rule not in ("NOQA001", "NOQA002"):
                finding.status = STATUS_SUPPRESSED
                finding.justification = suppression.reason
                suppression.used = True
                break
    for suppression in suppressions:
        if not suppression.used:
            findings.append(
                Finding(
                    rule="NOQA002",
                    severity=Severity.WARNING,
                    path=display,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"suppression for {', '.join(suppression.rules)} matched no "
                        "finding on this line — remove the stale annotation"
                    ),
                    snippet=ctx.snippet(suppression.line),
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> Report:
    """Analyze every file under ``paths`` and apply the baseline."""
    report = Report(paths=[str(p) for p in paths])
    for path in iter_python_files(paths):
        report.findings.extend(analyze_file(path, config=config, rules=rules))
        report.files_analyzed += 1
    if baseline is not None:
        baseline.apply(report.findings)
    report.findings.sort(key=Finding.sort_key)
    return report
