"""File discovery, suppression parsing and two-pass analysis orchestration.

This is the driver: it finds the ``.py`` files under the requested paths
(in sorted order — the analyzer eats its own DET002 dogfood), parses each
one, runs every in-scope per-file rule, builds the cached project model
(pass 1) and runs the cross-module rules over it (pass 2), applies
``# repro: noqa`` suppressions and the committed baseline, and assembles
a :class:`Report`.

Suppression syntax, on the flagged line::

    risky_call()  # repro: noqa DET003 -- wall time feeds the log line only

The rule list and the ``-- reason`` are both mandatory: a suppression
without either does not suppress and is itself reported (NOQA001), and a
suppression that matches no finding is reported as stale (NOQA002) so
dead annotations cannot accumulate.  Project-rule findings route through
the same suppression machinery: NOQA002 is only decided after pass 2.

Incremental mode: with a cache directory, pass 1 re-parses only modules
whose content hash changed; with ``changed_only`` the per-file pass and
the report are additionally restricted to changed files plus their
transitive reverse importers (the files whose cross-module facts could
have shifted).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.baseline import Baseline
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.core import (
    STATUS_ACTIVE,
    STATUS_BASELINED,
    STATUS_SUPPRESSED,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
)
from repro.analysis.project import ProjectCache, ProjectModel

__all__ = [
    "Suppression",
    "Report",
    "iter_python_files",
    "analyze_file",
    "analyze_paths",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")
_RULE_ID_RE = re.compile(r"[A-Z]+\d+")

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".artifact-cache", ".repro-analysis-cache"}


@dataclass
class Suppression:
    """One parsed ``# repro: noqa`` annotation."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Set while matching findings; unused suppressions become NOQA002.
    used: bool = False


@dataclass
class Report:
    """Everything one analyzer run produced."""

    paths: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    #: Pass-1 model statistics (all zero when no project pass ran).
    modules_total: int = 0
    modules_reparsed: int = 0
    modules_cached: int = 0
    #: ``--changed`` bookkeeping: was the report restricted, and to what.
    changed_only: bool = False
    files_selected: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_ACTIVE]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_SUPPRESSED]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_BASELINED]

    def per_rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """All ``.py`` files under ``paths``, sorted, caches skipped."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                    continue
                found.append(candidate)
        elif path.is_file():
            found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # De-duplicate while preserving the sorted-per-root order.
    seen: Dict[Path, None] = {}
    for path in found:
        seen.setdefault(path, None)
    return list(seen)


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every comment token; strings never match."""
    comments: List[Tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable files already gate via PARSE001; any comments the
        # tokenizer managed to produce before failing are still honoured.
        pass
    return comments


def parse_suppressions(source: str) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Extract suppressions; malformed ones come back as (line, problem)."""
    suppressions: List[Suppression] = []
    malformed: List[Tuple[int, str]] = []
    for lineno, comment in _comment_tokens(source):
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        rest = match.group("rest")
        if "--" in rest:
            codes_part, _, reason = rest.partition("--")
        else:
            codes_part, reason = rest, ""
        rules = tuple(_RULE_ID_RE.findall(codes_part))
        reason = reason.strip()
        if not rules:
            malformed.append(
                (lineno, "suppression names no rule ids (e.g. `# repro: noqa DET001 -- why`)")
            )
            continue
        if not reason:
            malformed.append(
                (lineno, "suppression has no `-- reason` justification; it will not suppress")
            )
            continue
        suppressions.append(Suppression(line=lineno, rules=rules, reason=reason))
    return suppressions, malformed


def _display_path(path: Path) -> str:
    """Stable report spelling: relative to cwd when possible, posix slashes."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _FileEntry:
    """One discovered file's state while the two passes run."""

    display: str
    source: str
    tree: Optional[ast.Module] = None
    ctx: Optional[FileContext] = None
    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    malformed: List[Tuple[int, str]] = field(default_factory=list)


def _load_file(path: Path) -> _FileEntry:
    """Read + parse one file; a syntax error becomes a PARSE001 finding."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    entry = _FileEntry(display=display, source=source)
    entry.suppressions, entry.malformed = parse_suppressions(source)
    try:
        entry.tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        line = error.lineno or 1
        entry.findings.append(
            Finding(
                rule="PARSE001",
                severity=Severity.ERROR,
                path=display,
                line=line,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
                snippet="",
            )
        )
        return entry
    entry.ctx = FileContext(path=display, source=source, tree=entry.tree)
    return entry


def _run_file_rules(
    entry: _FileEntry, config: AnalysisConfig, rules: Sequence[Rule]
) -> None:
    if entry.ctx is None:
        return
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if not config.in_scope(rule.id, entry.ctx):
            continue
        entry.findings.extend(rule.check(entry.ctx, config))


def _finalize_file(entry: _FileEntry) -> List[Finding]:
    """Apply suppressions and emit the NOQA hygiene findings for one file."""

    def snippet(line: int) -> str:
        if entry.ctx is not None:
            return entry.ctx.snippet(line)
        lines = entry.source.splitlines()
        return lines[line - 1].strip() if 1 <= line <= len(lines) else ""

    findings = entry.findings
    for lineno, problem in entry.malformed:
        findings.append(
            Finding(
                rule="NOQA001",
                severity=Severity.WARNING,
                path=entry.display,
                line=lineno,
                col=0,
                message=problem,
                snippet=snippet(lineno),
            )
        )
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in entry.suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    for finding in findings:
        for suppression in by_line.get(finding.line, []):
            if finding.rule in suppression.rules and finding.rule not in ("NOQA001", "NOQA002"):
                finding.status = STATUS_SUPPRESSED
                finding.justification = suppression.reason
                suppression.used = True
                break
    for suppression in entry.suppressions:
        if not suppression.used:
            findings.append(
                Finding(
                    rule="NOQA002",
                    severity=Severity.WARNING,
                    path=entry.display,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"suppression for {', '.join(suppression.rules)} matched no "
                        "finding on this line — remove the stale annotation"
                    ),
                    snippet=snippet(suppression.line),
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_file(
    path: Path,
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run every in-scope per-file rule over one file, suppressions applied.

    Project rules need the whole-program model and are skipped here; use
    :func:`analyze_paths` to run them.
    """
    entry = _load_file(path)
    _run_file_rules(entry, config, list(rules) if rules is not None else all_rules())
    return _finalize_file(entry)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    changed_only: bool = False,
) -> Report:
    """Analyze every file under ``paths``: both passes, baseline applied.

    ``cache_dir`` enables the incremental project-model cache (pass 1
    re-parses only content-changed modules).  ``changed_only`` further
    restricts the per-file pass — and the report — to changed files plus
    their transitive reverse importers; pass 1 still summarizes every
    file (from cache where unchanged) so cross-module rules always see
    the whole program.
    """
    report = Report(paths=[str(p) for p in paths], changed_only=changed_only)
    active_rules = list(rules) if rules is not None else all_rules()
    project_rules = [rule for rule in active_rules if isinstance(rule, ProjectRule)]

    entries: List[_FileEntry] = []
    by_display: Dict[str, _FileEntry] = {}
    for path in iter_python_files(paths):
        entry = _load_file(path)
        entries.append(entry)
        by_display[entry.display] = entry

    model: Optional[ProjectModel] = None
    if project_rules or changed_only:
        cache: Optional[ProjectCache] = None
        cached = None
        if cache_dir is not None:
            cache = ProjectCache(cache_dir)
            cached = cache.load()
        model = ProjectModel.build(
            [(entry.display, entry.source) for entry in entries],
            cached=cached,
            trees={
                entry.display: entry.tree for entry in entries if entry.tree is not None
            },
        )
        if cache is not None:
            cache.save(model.summaries)
        report.modules_total = len(model.summaries)
        report.modules_reparsed = model.cache_misses
        report.modules_cached = model.cache_hits

    selected: Set[str] = set(by_display)
    if changed_only and model is not None:
        selected = model.reverse_importers(model.changed_paths) | model.changed_paths

    for entry in entries:
        if entry.display not in selected:
            continue
        _run_file_rules(entry, config, active_rules)

    if model is not None:
        for rule in project_rules:
            for finding in rule.check_project(model, config):
                target = by_display.get(finding.path)
                if target is None or finding.path not in selected:
                    continue
                target.findings.append(finding)

    for entry in entries:
        if entry.display not in selected:
            continue
        report.findings.extend(_finalize_file(entry))
        report.files_analyzed += 1
    report.files_selected = len(selected & set(by_display))

    if baseline is not None:
        baseline.apply(report.findings)
    report.findings.sort(key=Finding.sort_key)
    return report
