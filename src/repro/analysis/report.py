"""Human and JSON renderings of an analyzer :class:`Report`.

The JSON document is the machine interface: CI uploads it as an artifact
and ``repro serve``'s dashboard can consume it alongside the benchmark
history (the shapes follow the same convention — a version field, flat
record lists, and a summary block).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.core import STATUS_ACTIVE, Finding
from repro.analysis.walker import Report

__all__ = ["render_human", "render_json", "write_json"]

_REPORT_VERSION = 1


def render_human(report: Report, verbose: bool = False) -> str:
    """Grouped, greppable text: ``path:line:col: RULE severity: message``.

    Non-gating findings (suppressed/baselined) are listed only with
    ``verbose``; the summary always counts them so a quiet report still
    says what was waved through.
    """
    lines: List[str] = []
    current_path = None
    for finding in report.findings:
        if finding.status != STATUS_ACTIVE and not verbose:
            continue
        if finding.path != current_path:
            if current_path is not None:
                lines.append("")
            current_path = finding.path
        lines.append(finding.format())
    if lines:
        lines.append("")
    counts = report.per_rule_counts()
    per_rule = ", ".join(f"{rule}={count}" for rule, count in counts.items())
    summary = (
        f"{report.files_analyzed} files analyzed: "
        f"{len(report.active)} finding(s)"
        + (f" ({per_rule})" if per_rule else "")
        + f", {len(report.baselined)} baselined, {len(report.suppressed)} suppressed"
    )
    lines.append(summary)
    if report.modules_total:
        model_line = (
            f"project model: {report.modules_total} modules, "
            f"{report.modules_reparsed} re-parsed, "
            f"{report.modules_cached} from cache"
        )
        if report.changed_only:
            model_line += f"; --changed selected {report.files_selected} file(s)"
        lines.append(model_line)
    return "\n".join(lines)


def _finding_record(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
        "content_hash": finding.content_hash,
        "status": finding.status,
        "justification": finding.justification,
    }


def render_json(report: Report) -> Dict[str, object]:
    return {
        "version": _REPORT_VERSION,
        "paths": list(report.paths),
        "files_analyzed": report.files_analyzed,
        "findings": [_finding_record(f) for f in report.findings],
        "summary": {
            "active": len(report.active),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "per_rule": report.per_rule_counts(),
        },
        "project_model": {
            "modules_total": report.modules_total,
            "modules_reparsed": report.modules_reparsed,
            "modules_cached": report.modules_cached,
            "changed_only": report.changed_only,
            "files_selected": report.files_selected,
        },
    }


def write_json(report: Report, path: Union[str, Path]) -> None:
    Path(path).write_text(
        json.dumps(render_json(report), indent=2) + "\n", encoding="utf-8"
    )
