"""Cross-module provenance fixpoints over the project model.

The SEED rules need one question answered transitively: *does this call
eventually produce a sanctioned seed or generator?*  A site like
``make_rng(child_seed(base, "fig7"), ...)`` is fine even though neither
name is ``derive_seed`` — ``child_seed`` returns a ``derive_seed`` call
three modules away.  These helpers compute the closure once per run:

* :func:`seed_returning_functions` — canonical ids of functions whose
  return value descends from :data:`~repro.analysis.project.DERIVE_SEED`
  (or from an injected parameter, which is provenance the caller owns);
* :func:`rng_returning_functions` — canonical ids of functions whose
  return value is a generator built by a sanctioned constructor.

Both are least fixpoints over recorded return tags, resolved through the
model's alias/re-export machinery, so adding a forwarding wrapper in any
module keeps call sites everywhere else clean without new config.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.analysis.project import (
    DERIVE_SEED,
    RNG_CONSTRUCTOR_TARGETS,
    ProjectModel,
)

__all__ = [
    "canonical_rng_constructors",
    "seed_returning_functions",
    "rng_returning_functions",
    "resolve_call_tag",
]


def _both_spellings(target: str) -> Set[str]:
    """A sanctioned id in canonical *and* external-dotted form.

    When the defining module is part of the model, references resolve to
    ``repro.utils.rng:make_rng``; when only part of the tree is analyzed
    (``repro analyze examples``) the same reference stays the plain
    dotted ``repro.utils.rng.make_rng``.  Both must count.
    """
    return {target, target.replace(":", ".")}


def canonical_rng_constructors(model: ProjectModel) -> Set[str]:
    """The sanctioned constructor set, canonicalized against ``model``."""
    canonical: Set[str] = set()
    for target in RNG_CONSTRUCTOR_TARGETS:
        canonical.update(_both_spellings(target))
        resolved = model.resolve(target.replace(":", "."), module="")
        if resolved is not None:
            canonical.add(resolved)
    return canonical


def resolve_call_tag(model: ProjectModel, tag: str, module: str) -> Optional[str]:
    """Canonical target of a ``call:<raw>`` provenance tag, or ``None``."""
    if not tag.startswith("call:"):
        return None
    return model.resolve(tag[len("call:") :], module)


def _return_closure(model: ProjectModel, base: Set[str], accept_param: bool) -> Set[str]:
    """Least fixpoint: functions whose some return reaches ``base``.

    ``accept_param`` additionally admits functions that return one of
    their own parameters — provenance then belongs to the caller, which
    is what the taint check at the call site already validates.
    """
    members: Set[str] = set(base)
    # Pre-resolve every function's return-call targets once.
    resolved: Dict[str, Tuple[Tuple[str, ...], bool]] = {}
    for summary in model.summaries.values():
        for qual, facts in summary.functions.items():
            canonical = f"{summary.module}:{qual}"
            targets = tuple(
                t
                for t in (
                    resolve_call_tag(model, tag, summary.module)
                    for tag in facts.return_tags
                    if tag.startswith("call:")
                )
                if t is not None
            )
            returns_param = accept_param and "param" in facts.return_tags
            resolved[canonical] = (targets, returns_param)
    changed = True
    while changed:
        changed = False
        for canonical, (targets, returns_param) in resolved.items():
            if canonical in members:
                continue
            if returns_param or any(target in members for target in targets):
                members.add(canonical)
                changed = True
    return members


def seed_returning_functions(model: ProjectModel) -> Set[str]:
    """Canonical ids whose return value carries sanctioned seed provenance."""
    return _return_closure(model, base=_both_spellings(DERIVE_SEED), accept_param=True)


def rng_returning_functions(model: ProjectModel) -> Set[str]:
    """Canonical ids whose return value is a sanctioned generator."""
    return _return_closure(
        model, base=canonical_rng_constructors(model), accept_param=False
    )
