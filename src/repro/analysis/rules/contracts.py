"""SWEEP001/SWEEP002 — registry/scenario contract drift as lint errors.

``repro.experiments.registry.SWEEPS`` promises that each experiment's
``SWEEP_PARAMS`` axes are exactly the keyword knobs its ``run_point``
accepts, and every scenario bundle in ``repro.runner.grid.SCENARIOS``
builds grids over those axes.  Both contracts are enforced only at sweep
time today — a renamed axis surfaces as a ``TypeError`` halfway through
a long sweep.  These rules check them statically against the project
model's recorded signatures and registry literals.

SWEEP001
    Declared ``SWEEP_PARAMS`` axes vs the resolved ``run_point``
    signature, both directions: an axis the runner does not accept is an
    immediate sweep crash; an accepted knob that is not declared is a
    parameter sweeps can never reach.

SWEEP002
    ``SweepSpec(...)`` constructions with a constant experiment id:
    every statically visible grid axis must be declared for that
    experiment, and the experiment id itself must be registered.

Axes every runner takes implicitly (``seed``, ``scale``) are exempt in
both directions.  Entries whose runner or params reference cannot be
resolved in the model are skipped, not guessed at.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, Severity, register
from repro.analysis.project import ModuleSummary, ProjectModel, SpecFact

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.config import AnalysisConfig

__all__ = ["RegistrySignatureRule", "ScenarioAxesRule"]

#: Knobs the sweep machinery injects itself; never part of the contract.
_IMPLICIT = {"seed", "scale"}


def _declared_axes(model: ProjectModel) -> Dict[str, Set[str]]:
    """experiment id -> declared SWEEP_PARAMS axes, from registry literals."""
    declared: Dict[str, Set[str]] = {}
    for summary in model.summaries.values():
        for entry in summary.registry_entries:
            params_ref = model.resolve(entry.params, summary.module)
            axes: Optional[Tuple[str, ...]] = (
                model.string_tuple(params_ref) if params_ref is not None else None
            )
            if axes is not None:
                declared[entry.experiment_id] = set(axes)
    return declared


@register
class RegistrySignatureRule(ProjectRule):
    id = "SWEEP001"
    severity = Severity.ERROR
    summary = (
        "SWEEP_PARAMS axes must match the run_point keyword signature "
        "in both directions"
    )

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            for entry in summary.registry_entries:
                runner_ref = model.resolve(entry.runner, summary.module)
                params_ref = model.resolve(entry.params, summary.module)
                runner = model.function(runner_ref) if runner_ref is not None else None
                axes = model.string_tuple(params_ref) if params_ref is not None else None
                if runner is None or axes is None:
                    continue  # unresolvable reference: no static claim to make
                if config.allowed_context_for_path(self.id, summary.path, "SWEEPS"):
                    continue
                accepted = set(runner.params) - _IMPLICIT
                declared = set(axes) - _IMPLICIT
                missing = sorted(declared - accepted)
                if missing and not runner.has_varkw:
                    yield self.project_finding(
                        path=summary.path,
                        line=entry.line,
                        col=entry.col,
                        snippet=entry.snippet,
                        message=(
                            f"sweep `{entry.experiment_id}` declares ax"
                            f"{'es' if len(missing) > 1 else 'is'} "
                            f"{', '.join(missing)} that `{runner_ref}` does not "
                            "accept — sweeping it raises TypeError at run time"
                        ),
                    )
                extra = sorted(accepted - declared)
                if extra:
                    yield self.project_finding(
                        path=summary.path,
                        line=entry.line,
                        col=entry.col,
                        snippet=entry.snippet,
                        message=(
                            f"`{runner_ref}` accepts parameter"
                            f"{'s' if len(extra) > 1 else ''} {', '.join(extra)} "
                            f"not declared in SWEEP_PARAMS for "
                            f"`{entry.experiment_id}` — sweeps can never reach "
                            "them; declare the axis or drop the knob"
                        ),
                    )


@register
class ScenarioAxesRule(ProjectRule):
    id = "SWEEP002"
    severity = Severity.ERROR
    summary = (
        "scenario bundles must build grids over axes the target "
        "experiment declares"
    )

    def _fact_axes(
        self, model: ProjectModel, summary: ModuleSummary, fact: SpecFact
    ) -> Set[str]:
        axes = set(fact.axes)
        for helper in fact.helpers:
            helper_ref = model.resolve(helper, summary.module)
            helper_fn = model.function(helper_ref) if helper_ref is not None else None
            if helper_fn is not None:
                axes.update(helper_fn.axis_keys)
        return axes

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        declared = _declared_axes(model)
        if not declared:
            return  # no registry in the model (partial analysis): no claims
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            for fact in summary.spec_facts:
                if fact.experiment_id is None or not fact.resolvable:
                    continue
                if config.allowed_context_for_path(self.id, summary.path, fact.qualname):
                    continue
                if fact.experiment_id not in declared:
                    yield self.project_finding(
                        path=summary.path,
                        line=fact.line,
                        col=fact.col,
                        snippet=fact.snippet,
                        message=(
                            f"SweepSpec targets `{fact.experiment_id}`, which is "
                            "not a registered sweepable experiment"
                        ),
                    )
                    continue
                allowed = declared[fact.experiment_id] | _IMPLICIT
                unknown = sorted(self._fact_axes(model, summary, fact) - allowed)
                if unknown:
                    yield self.project_finding(
                        path=summary.path,
                        line=fact.line,
                        col=fact.col,
                        snippet=fact.snippet,
                        message=(
                            f"grid ax{'es' if len(unknown) > 1 else 'is'} "
                            f"{', '.join(unknown)} not declared in SWEEP_PARAMS "
                            f"for `{fact.experiment_id}` — the sweep would fail "
                            "axis validation; declare the axis or fix the name"
                        ),
                    )
