"""THREAD001/THREAD002 — shared state across ``repro serve`` threads.

The sweep daemon runs each job in its own worker thread while the HTTP
handler threads read job state; the paper's determinism story survives
that concurrency only if shared structures are lock-disciplined and
telemetry emitters are resolved inside the thread that uses them.

THREAD001
    In a thread-spawning module, a mutable container (dict/list/set)
    reachable from more than one method of a lock-carrying or
    thread-targeted class must be accessed under the class's lock on
    *every* path — one unlocked read is enough to observe a dict mid-
    resize.  Module-level mutable globals mutated without a lock in such
    modules are flagged the same way.  Plain attribute rebinding
    (``job.status = "done"``) is deliberately not flagged: it is an
    atomic store under the GIL and the daemon's single-writer job
    lifecycle depends on it — the rule targets structures with
    non-atomic invariants.

THREAD002
    ContextVar-scoped emitters do not propagate to new threads, so
    ``get_emitter()`` results captured before ``Thread.start()`` (bound
    to ``self``, a module global, or a closure the thread runs) silently
    pin the *spawning* context's emitter.  Threads must resolve the
    emitter after start — or receive one explicitly via ``args=``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Set

from repro.analysis.core import Finding, ProjectRule, Severity, register
from repro.analysis.project import ClassFacts, ModuleSummary, ProjectModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.config import AnalysisConfig

__all__ = ["UnlockedSharedStateRule", "EmitterCaptureRule"]


def _thread_shared_classes(summary: ModuleSummary) -> Set[str]:
    """Classes in a thread-spawning module whose instances cross threads.

    Conservative: a class participates if it carries a lock attribute
    (the author already believes it is shared) or one of its methods is a
    ``Thread(target=...)``.
    """
    if not summary.spawns_threads:
        return set()
    shared: Set[str] = set()
    thread_methods = {
        target.split(":", 1)[1].split(".")[-1]
        for target in summary.thread_targets
        if target.startswith(("self:", "local:"))
    }
    for name, facts in summary.classes.items():
        if facts.lock_attrs:
            shared.add(name)
        elif thread_methods & set(facts.methods):
            shared.add(name)
    return shared


def _shared_attrs(facts: ClassFacts) -> Set[str]:
    """Mutable attrs touched from >1 method with at least one mutation."""
    methods_by_attr: Dict[str, Set[str]] = {}
    mutated: Set[str] = set()
    for access in facts.accesses:
        methods_by_attr.setdefault(access.attr, set()).add(access.method)
        if access.mutation:
            mutated.add(access.attr)
    return {
        attr for attr, methods in methods_by_attr.items()
        if attr in mutated and len(methods) > 1
    }


@register
class UnlockedSharedStateRule(ProjectRule):
    id = "THREAD001"
    severity = Severity.ERROR
    summary = (
        "mutable state shared between worker threads and the main thread "
        "must hold the lock on every access path"
    )

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            if not summary.spawns_threads:
                continue
            for class_name in sorted(_thread_shared_classes(summary)):
                facts = summary.classes[class_name]
                if not facts.lock_attrs:
                    # No lock at all: flag each shared attr at its definition.
                    for attr in sorted(_shared_attrs(facts)):
                        line, col, kind = facts.mutable_attrs[attr][:3]
                        qualname = f"{class_name}.__init__"
                        if config.allowed_context_for_path(self.id, summary.path, qualname):
                            continue
                        yield self.project_finding(
                            path=summary.path,
                            line=line,
                            col=col,
                            snippet="",
                            message=(
                                f"`{class_name}.{attr}` ({kind}) is mutated from "
                                "multiple methods of a thread-shared class that "
                                "has no lock — add a threading.Lock and hold it "
                                "on every access"
                            ),
                        )
                    continue
                shared = _shared_attrs(facts)
                for access in facts.accesses:
                    if access.attr not in shared or access.locked:
                        continue
                    qualname = f"{class_name}.{access.method}"
                    if config.allowed_context_for_path(self.id, summary.path, qualname):
                        continue
                    action = "mutated" if access.mutation else "read"
                    yield self.project_finding(
                        path=summary.path,
                        line=access.line,
                        col=access.col,
                        snippet=access.snippet,
                        message=(
                            f"`self.{access.attr}` is {action} in "
                            f"`{qualname}` without holding "
                            f"`self.{facts.lock_attrs[0]}` — this container is "
                            "shared with worker threads and every access path "
                            "must be locked"
                        ),
                    )
            for qualname, name, line, col, snippet in summary.global_mutations:
                if config.allowed_context_for_path(self.id, summary.path, qualname):
                    continue
                yield self.project_finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    snippet=snippet,
                    message=(
                        f"module global `{name}` is mutated without a lock in a "
                        "thread-spawning module — worker threads can observe "
                        "the container mid-update"
                    ),
                )


@register
class EmitterCaptureRule(ProjectRule):
    id = "THREAD002"
    severity = Severity.ERROR
    summary = (
        "ContextVar emitters must be resolved inside the running thread, "
        "not captured before Thread.start()"
    )

    _KIND_DETAIL = {
        "stored-attribute": (
            "stored on self at construction time; the ContextVar binding "
            "active later is ignored"
        ),
        "module-global": (
            "bound to a module global at import time; every run and every "
            "thread then shares the import-time emitter"
        ),
        "thread-closure": (
            "captured into a closure that runs on a new thread; ContextVars "
            "do not propagate to threads, so the worker sees a stale emitter"
        ),
    }

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            for capture in summary.emitter_captures:
                qualname = capture.qualname
                if config.allowed_context_for_path(self.id, summary.path, qualname):
                    continue
                detail = self._KIND_DETAIL.get(capture.kind, capture.kind)
                yield self.project_finding(
                    path=summary.path,
                    line=capture.line,
                    col=capture.col,
                    snippet=capture.snippet,
                    message=(
                        f"`get_emitter()` result {detail} — call get_emitter() "
                        "at use time inside the thread, or pass the emitter "
                        "explicitly via Thread(args=...)"
                    ),
                )
