"""Determinism rules: RNG injection, ordered iteration, wall-clock reads.

These encode the reproducibility contract the dynamic suite asserts by
example (loop/vectorized bit-identity, jobs=1 vs jobs=N byte-identity,
warm-cache equivalence): results may depend only on the config, the seed
and the code — never on interpreter hash seeds, filesystem order, global
RNG state or the time of day.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Finding, Rule, Severity, register

__all__ = ["GlobalRngRule", "UnorderedIterationRule", "WallClockRule"]

#: numpy.random attributes that *construct* injectable generators — the
#: sanctioned spellings.  Everything else on numpy.random (poisson, rand,
#: seed, shuffle, ...) touches or samples hidden global state.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: stdlib ``random`` attributes that construct injectable instances.
#: ``SystemRandom`` is deliberately NOT allowed — OS entropy is
#: nondeterministic by design.
_STDLIB_RANDOM_ALLOWED = {"Random"}

#: Call targets that read the wall clock.  Monotonic duration sources
#: (``time.perf_counter``, ``time.monotonic``) are never flagged: they
#: measure spans, not timestamps, and cannot leak into result content.
_WALLCLOCK_TARGETS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Set-producing method names: only sets (and frozensets) grow these, so a
#: call like ``a.union(b)`` is treated as set-valued.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Filesystem listings whose order is platform-dependent.
_FS_LIST_TARGETS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_LIST_METHODS = {"iterdir", "glob", "rglob", "scandir"}


@register
class GlobalRngRule(Rule):
    """DET001 — randomness must come from an injected Generator."""

    id = "DET001"
    severity = Severity.ERROR
    summary = (
        "global/module-level RNG call (np.random.*, random.*) in simulation "
        "code; draw from an injected numpy Generator (utils.rng.make_rng)"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            message: Optional[str] = None
            if target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_ALLOWED:
                    message = (
                        f"call to global numpy RNG `{target}` — draw from an "
                        "injected `np.random.Generator` instead"
                    )
            elif target.startswith("random."):
                attr = target.split(".", 1)[1]
                if "." not in attr and attr not in _STDLIB_RANDOM_ALLOWED:
                    message = (
                        f"call to stdlib global RNG `{target}` — use an injected "
                        "`random.Random(seed)` or numpy Generator instead"
                    )
            if message is not None and config.allowed_context(self.id, ctx, node) is None:
                yield self.finding(ctx, node, message)


class _SetLocalCollector(ast.NodeVisitor):
    """Names assigned a set-valued expression anywhere in the module.

    Mostly flow-insensitive: a name that ever holds a set is treated as
    set-valued at every iteration site.  The one flow fact honoured is
    the sanitizing reassignment — ``x = sorted(x)`` (or ``list(sorted(x))``)
    re-binds the name to an explicitly ordered list, which is exactly the
    fix DET002 asks for, so the name stops counting as set-valued from
    then on.  Remaining false positives are cheap to silence with
    ``sorted(...)`` at the iteration site or a noqa.
    """

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def _rebind(self, name: str, value: ast.expr) -> None:
        if _is_sanitizing_expr(value):
            self.set_names.discard(name)
        elif _is_set_expr(value, self.set_names):
            self.set_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._rebind(target.id, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._rebind(node.target.id, node.value)
        self.generic_visit(node)


def _is_sanitizing_expr(node: ast.expr) -> bool:
    """True for ``sorted(...)`` and ``list/tuple(sorted(...))`` wrappers."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return False
    if node.func.id == "sorted":
        return True
    return (
        node.func.id in ("list", "tuple")
        and bool(node.args)
        and _is_sanitizing_expr(node.args[0])
    )


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


@register
class UnorderedIterationRule(Rule):
    """DET002 — iteration feeding results must have explicit order."""

    id = "DET002"
    severity = Severity.ERROR
    summary = (
        "iteration over a set or a filesystem listing without sorted(...); "
        "set/dir order is interpreter- and platform-dependent"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        collector = _SetLocalCollector()
        collector.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                message = self._diagnose(ctx, candidate, collector.set_names)
                if message is None:
                    continue
                if config.allowed_context(self.id, ctx, candidate) is not None:
                    continue
                yield self.finding(ctx, candidate, message)

    def _diagnose(
        self, ctx: FileContext, node: ast.expr, set_names: Set[str]
    ) -> Optional[str]:
        # `list(s)` / `tuple(s)` preserve the unordered traversal; unwrap.
        unwrapped = node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "iter", "reversed", "enumerate")
            and node.args
        ):
            unwrapped = node.args[0]
        if _is_set_expr(unwrapped, set_names):
            return (
                "iteration over a set has no deterministic order — wrap the "
                "iterable in sorted(...) before it can feed results"
            )
        target = ctx.imports.resolve(unwrapped.func) if isinstance(unwrapped, ast.Call) else None
        if target in _FS_LIST_TARGETS:
            return (
                f"`{target}` returns entries in platform-dependent order — "
                "wrap the listing in sorted(...)"
            )
        if (
            isinstance(unwrapped, ast.Call)
            and isinstance(unwrapped.func, ast.Attribute)
            and unwrapped.func.attr in _FS_LIST_METHODS
            and target is None
        ):
            return (
                f"`.{unwrapped.func.attr}()` yields filesystem entries in "
                "platform-dependent order — wrap the listing in sorted(...)"
            )
        return None


@register
class WallClockRule(Rule):
    """DET003 — result paths never read the wall clock."""

    id = "DET003"
    severity = Severity.ERROR
    summary = (
        "wall-clock read (time.time, datetime.now, ...) in a result path; "
        "use monotonic spans for durations or move to obs/"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target not in _WALLCLOCK_TARGETS:
                continue
            if config.allowed_context(self.id, ctx, node) is not None:
                continue
            yield self.finding(
                ctx,
                node,
                f"wall-clock read `{target}` in a result path — results must "
                "depend only on config, seed and code (monotonic "
                "`time.perf_counter` is fine for durations)",
            )
