"""SEED001/SEED002 — project-wide RNG/seed provenance taint tracking.

The paper's economies are comparable only because every run replays
bit-identically from ``(config, seed, code)``.  That guarantee has one
chokepoint: every generator used on an execution path must take a seed
that descends from :func:`repro.utils.rng.derive_seed` or from a value
the caller injected (parameter, config field) — and the generator itself
must stay run-scoped.  Per-file DET001 catches global-RNG *calls*; these
rules catch the two ways a correctly-called generator still breaks
provenance:

SEED001
    An RNG constructor (``default_rng`` / ``make_rng`` / ``Random``)
    whose seed argument does not flow — through any number of call hops,
    resolved project-wide — from ``derive_seed`` or an injected value.
    Unseeded construction (``default_rng()``) is the degenerate case.

SEED002
    A generator escaping into state that outlives one run: a module
    global, a class attribute, or a default-argument value (evaluated
    once at import, then shared by every call).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Set

from repro.analysis.core import Finding, ProjectRule, Severity, register
from repro.analysis.flow import (
    canonical_rng_constructors,
    resolve_call_tag,
    rng_returning_functions,
    seed_returning_functions,
)
from repro.analysis.project import ProjectModel, RngSite

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.config import AnalysisConfig

__all__ = ["SeedProvenanceRule", "RngEscapeRule"]

#: Tags that carry sanctioned provenance on their own: a parameter is an
#: injection point, and an attribute/subscript read is a config or
#: instance field the constructor's caller owns.
_SANCTIONED_TAGS = {"param", "attr"}


def _site_sanctioned(
    model: ProjectModel, module: str, site: RngSite, seeders: Set[str]
) -> bool:
    for tag in site.tags:
        if tag in _SANCTIONED_TAGS:
            return True
        target = resolve_call_tag(model, tag, module)
        if target is not None and target in seeders:
            return True
    return False


@register
class SeedProvenanceRule(ProjectRule):
    id = "SEED001"
    severity = Severity.ERROR
    summary = (
        "generator seeds in simulation code must descend from derive_seed "
        "or an injected parameter/config field (traced across modules)"
    )

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        constructors = canonical_rng_constructors(model)
        seeders = seed_returning_functions(model)
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            for site in summary.rng_sites:
                canonical = model.resolve(site.constructor, summary.module)
                if canonical not in constructors:
                    continue
                if _site_sanctioned(model, summary.module, site, seeders):
                    continue
                if config.allowed_context_for_path(self.id, summary.path, site.qualname):
                    continue
                if "unseeded" in site.tags:
                    detail = "is constructed without a seed"
                elif "none" in site.tags:
                    detail = "is seeded with an explicit None"
                elif "literal" in site.tags:
                    detail = "is seeded with a hard-coded literal"
                else:
                    detail = (
                        "takes a seed with no traceable provenance "
                        f"(tags: {', '.join(site.tags)})"
                    )
                yield self.project_finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    snippet=site.snippet,
                    message=(
                        f"generator in `{site.qualname or '<module>'}` {detail} — "
                        "seeds must flow from derive_seed or an injected "
                        "parameter/config field so runs replay bit-identically"
                    ),
                )


@register
class RngEscapeRule(ProjectRule):
    id = "SEED002"
    severity = Severity.ERROR
    summary = (
        "generators must stay run-scoped: no module globals, class "
        "attributes or default-argument RNG values"
    )

    _KIND_DETAIL = {
        "module-global": "escapes into a module global",
        "class-attribute": "escapes into a class attribute shared by all instances",
        "default-argument": "is evaluated once as a default argument and shared by every call",
    }

    def check_project(
        self, model: ProjectModel, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        constructors = canonical_rng_constructors(model)
        makers = rng_returning_functions(model)
        for summary in model.summaries.values():
            if not config.covers_path(self.id, summary.path):
                continue
            for escape in summary.rng_escapes:
                canonical = model.resolve(escape.constructor, summary.module)
                if canonical not in constructors and canonical not in makers:
                    continue
                qualname = escape.qualname or escape.name
                if config.allowed_context_for_path(self.id, summary.path, qualname):
                    continue
                detail = self._KIND_DETAIL.get(escape.kind, escape.kind)
                yield self.project_finding(
                    path=summary.path,
                    line=escape.line,
                    col=escape.col,
                    snippet=escape.snippet,
                    message=(
                        f"generator bound to `{escape.name}` {detail} — RNG "
                        "state that outlives a run breaks replayability; "
                        "construct generators per run and pass them down"
                    ),
                )
