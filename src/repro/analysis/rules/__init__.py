"""Rule modules; importing this package registers every shipped rule."""

from repro.analysis.rules.determinism import (
    GlobalRngRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.structure import (
    KernelPairRule,
    ParseFailureRule,
    SuppressionHygieneRule,
    UnguardedEmitterRule,
    UnpicklableAttributeRule,
    UnusedSuppressionRule,
)

__all__ = [
    "GlobalRngRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "UnpicklableAttributeRule",
    "UnguardedEmitterRule",
    "KernelPairRule",
    "SuppressionHygieneRule",
    "UnusedSuppressionRule",
    "ParseFailureRule",
]
