"""Rule modules; importing this package registers every shipped rule."""

from repro.analysis.rules.contracts import RegistrySignatureRule, ScenarioAxesRule
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.seeds import RngEscapeRule, SeedProvenanceRule
from repro.analysis.rules.shards import ShardTaskPurityRule
from repro.analysis.rules.structure import (
    KernelPairRule,
    ParseFailureRule,
    SuppressionHygieneRule,
    UnguardedEmitterRule,
    UnpicklableAttributeRule,
    UnusedSuppressionRule,
)
from repro.analysis.rules.threads import EmitterCaptureRule, UnlockedSharedStateRule

__all__ = [
    "GlobalRngRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "UnpicklableAttributeRule",
    "UnguardedEmitterRule",
    "KernelPairRule",
    "SuppressionHygieneRule",
    "UnusedSuppressionRule",
    "ParseFailureRule",
    "SeedProvenanceRule",
    "RngEscapeRule",
    "UnlockedSharedStateRule",
    "EmitterCaptureRule",
    "ShardTaskPurityRule",
    "RegistrySignatureRule",
    "ScenarioAxesRule",
]
