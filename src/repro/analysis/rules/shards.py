"""SHARD001 — shard tasks must not mutate cross-shard state.

Spatial sharding (:func:`repro.runner.shard.run_shard_tasks`) executes
per-shard task callables concurrently inside one simulation round.  The
byte-identity contract — a sharded run is indistinguishable from the
monolithic one — holds only because every task is a pure function of its
arguments: tasks *return* per-shard results and the caller merges them in
deterministic shard order during the boundary-exchange phase at the round
barrier.  A task that writes shared state directly (simulator attributes,
enclosing-scope accumulators, module globals) races with its sibling
shards, and the merge order — hence the result — starts depending on
thread scheduling.

SHARD001 flags, inside any callable submitted to ``run_shard_tasks``:

* ``global`` / ``nonlocal`` declarations (a write is the only reason to
  declare them);
* assignments, augmented assignments and deletions targeting attributes
  or subscripts rooted at ``self`` or at any name free in the task (names
  captured from the enclosing scope or the module);
* known mutating method calls (``append``, ``update``, ``fill``, ...) on
  ``self`` attributes or free names.

Writes to the task's own parameters and locals are never flagged: task
arguments are per-shard by construction (the compliant idiom is
``functools.partial(pure_module_function, per_shard_args...)``), so local
mutation cannot cross a shard boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Finding, Rule, Severity, register

__all__ = ["ShardTaskPurityRule"]

#: Spellings of the shard-task executor the rule recognises.
_RUN_SHARD_TASKS = {
    "repro.runner.shard.run_shard_tasks",
    "repro.runner.run_shard_tasks",
}

#: Method names that mutate their receiver in place.  Shared with the
#: reviewer's intuition rather than exhaustive: a task calling any of
#: these on state it does not own is racing its sibling shards.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "extendleft", "popleft", "fill", "sort_indices",
    "put", "partial_sort", "resize", "setfield", "itemset",
}


def _root_name(node: ast.expr) -> Optional[str]:
    """The name at the base of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound inside ``func``: parameters, assignments, comprehensions.

    Anything *not* in this set that a task body writes through reaches
    beyond the task — enclosing scope, instance state or module globals.
    """
    names: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                names.add(node.name)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
            for target in ast.walk(node.optional_vars):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _module_functions(tree: ast.Module) -> Dict[str, ast.AST]:
    """Every function definition in the file, keyed by bare name."""
    functions: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return functions


class _TaskBodyChecker:
    """Scans one task callable's body for cross-shard writes."""

    def __init__(self, func: ast.AST, label: str) -> None:
        self.func = func
        self.label = label
        self.locals = _local_names(func)

    def _is_foreign(self, name: Optional[str]) -> bool:
        return name is not None and (name == "self" or name not in self.locals)

    def violations(self) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(self.func):
            yield from self._check_node(node)

    def _check_node(self, node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names = ", ".join(node.names)
            scope = "global" if isinstance(node, ast.Global) else "nonlocal"
            yield node, (
                f"shard task {self.label} declares `{scope} {names}` — "
                "shard tasks run concurrently and must not write shared "
                "scope; return the value and merge it in shard order"
            )
            return
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            yield from self._check_target(target)
        if isinstance(node, ast.Call):
            yield from self._check_call(node)

    def _check_target(self, target: ast.expr) -> Iterator[Tuple[ast.AST, str]]:
        # Tuple/list unpacking assigns element-wise; check each element.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(element)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return  # bare-name stores are task-local rebinding
        root = _root_name(target)
        if not self._is_foreign(root):
            return
        owner = "simulator state" if root == "self" else f"`{root}` (free in the task)"
        yield target, (
            f"shard task {self.label} writes through {owner} — "
            "cross-shard state may only change in the boundary-exchange "
            "phase after run_shard_tasks returns; return per-shard "
            "results instead"
        )

    def _check_call(self, node: ast.Call) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        root = _root_name(func.value)
        if not self._is_foreign(root):
            return
        receiver = "simulator state" if root == "self" else f"`{root}` (free in the task)"
        yield node, (
            f"shard task {self.label} calls `.{func.attr}()` on {receiver} — "
            "in-place mutation of shared state races sibling shards; "
            "return the value and merge it after run_shard_tasks"
        )


@register
class ShardTaskPurityRule(Rule):
    """SHARD001 — cross-shard state changes only in the boundary exchange."""

    id = "SHARD001"
    severity = Severity.ERROR
    summary = (
        "shard task mutates cross-shard state (self attributes, closure "
        "names, globals) outside the boundary-exchange phase"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        functions = _module_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target not in _RUN_SHARD_TASKS:
                continue
            tasks_expr = self._tasks_argument(node)
            if tasks_expr is None:
                continue
            for callable_node, label in self._task_callables(
                ctx.tree, tasks_expr, functions
            ):
                checker = _TaskBodyChecker(callable_node, label)
                for offender, message in checker.violations():
                    if config.allowed_context(self.id, ctx, offender) is not None:
                        continue
                    yield self.finding(ctx, offender, message)

    @staticmethod
    def _tasks_argument(call: ast.Call) -> Optional[ast.expr]:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "tasks":
                return keyword.value
        return None

    def _task_callables(
        self,
        tree: ast.Module,
        tasks_expr: ast.expr,
        functions: Dict[str, ast.AST],
    ) -> Iterator[Tuple[ast.AST, str]]:
        """Resolve the task-list expression to analysable callables."""
        for element in self._task_elements(tree, tasks_expr):
            yield from self._resolve_callable(element, functions)

    def _task_elements(
        self, tree: ast.Module, tasks_expr: ast.expr
    ) -> Iterator[ast.expr]:
        if isinstance(tasks_expr, (ast.List, ast.Tuple)):
            yield from tasks_expr.elts
        elif isinstance(tasks_expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            yield tasks_expr.elt
        elif isinstance(tasks_expr, ast.Name):
            # A name: chase same-file list assignments and .append() calls.
            yield from self._elements_bound_to(tree, tasks_expr.id)
        elif isinstance(tasks_expr, ast.Call):
            # list(<comprehension>) and friends.
            if (
                isinstance(tasks_expr.func, ast.Name)
                and tasks_expr.func.id in ("list", "tuple")
                and tasks_expr.args
            ):
                yield from self._task_elements(tree, tasks_expr.args[0])

    def _elements_bound_to(self, tree: ast.Module, name: str) -> Iterator[ast.expr]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        yield from self._task_elements(tree, node.value)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.args
            ):
                yield node.args[0]

    def _resolve_callable(
        self, element: ast.expr, functions: Dict[str, ast.AST]
    ) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(element, ast.Lambda):
            yield element, "(lambda)"
        elif isinstance(element, ast.Name):
            if element.id in functions:
                yield functions[element.id], f"`{element.id}`"
        elif isinstance(element, ast.Call):
            # functools.partial(fn, ...): the eventual callable is fn.
            func = element.func
            is_partial = (
                isinstance(func, ast.Attribute) and func.attr == "partial"
            ) or (isinstance(func, ast.Name) and func.id == "partial")
            if is_partial and element.args:
                yield from self._resolve_callable(element.args[0], functions)
