"""Structural rules: checkpoint safety, telemetry guards, kernel pairing.

PICKLE001 keeps simulator state compatible with ``CheckpointStore``'s
full-state pickles; OBS001 enforces the branch-on-local-bool pattern that
keeps the telemetry-overhead CI gate honest; KERNEL001 keeps every
loop/vectorized kernel pair reachable from its config switch so the
bit-identity tests keep comparing two live implementations.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import FileContext, Finding, Rule, Severity, register

__all__ = [
    "UnpicklableAttributeRule",
    "UnguardedEmitterRule",
    "KernelPairRule",
    "SuppressionHygieneRule",
    "UnusedSuppressionRule",
    "ParseFailureRule",
]

#: threading constructs that cannot be pickled.
_THREADING_UNPICKLABLE = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}

#: Emitter event methods (see repro.obs.emitter.MetricsEmitter).
_EMITTER_METHODS = {"counter", "gauge", "point", "mark", "timing", "span"}

_KERNEL_NAME_RE = re.compile(r"^(?P<stem>.+)_(?P<variant>loop|vectorized)$")


@register
class UnpicklableAttributeRule(Rule):
    """PICKLE001 — checkpointed state must stay picklable."""

    id = "PICKLE001"
    severity = Severity.ERROR
    summary = (
        "unpicklable attribute (lambda, open handle, lock, generator, "
        "nested function) assigned to self in checkpoint-bearing classes"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                nested = {
                    child.name
                    for child in ast.walk(method)
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not method
                }
                for node in ast.walk(method):
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        value = node.value
                        targets = node.targets
                    elif isinstance(node, ast.AnnAssign) and node.value is not None:
                        value = node.value
                        targets = [node.target]
                    else:
                        continue
                    if not any(_is_self_attribute(target) for target in targets):
                        continue
                    reason = self._diagnose(ctx, value, nested)
                    if reason is None:
                        continue
                    if config.allowed_context(self.id, ctx, node) is not None:
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"{reason} assigned to self in `{class_node.name}` — "
                        "this state flows through CheckpointStore pickles; "
                        "store picklable data and rebuild the object on use",
                    )

    def _diagnose(
        self, ctx: FileContext, value: ast.expr, nested: Set[str]
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.GeneratorExp):
            return "generator expression"
        if isinstance(value, ast.Name) and value.id in nested:
            return f"nested function `{value.id}` (closure)"
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id == "open":
                return "open file handle"
            target = ctx.imports.resolve(func)
            if target is not None and target.startswith("threading."):
                attr = target.split(".", 1)[1]
                if attr in _THREADING_UNPICKLABLE:
                    return f"`threading.{attr}()`"
        return None


def _is_self_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


@register
class UnguardedEmitterRule(Rule):
    """OBS001 — hot-loop telemetry must branch on a local enabled bool."""

    id = "OBS001"
    severity = Severity.WARNING
    summary = (
        "emitter call inside a per-round/per-tick loop without an "
        "`if <enabled-bool>:` guard (branch-on-local-bool pattern)"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_emitter_call(ctx, node):
                continue
            loop = self._enclosing_loop(ctx, node)
            if loop is None:
                continue
            if self._is_guarded(ctx, node, loop):
                continue
            if config.allowed_context(self.id, ctx, node) is not None:
                continue
            method = node.func.attr if isinstance(node.func, ast.Attribute) else "?"
            yield self.finding(
                ctx,
                node,
                f"`emitter.{method}(...)` runs on every loop iteration even "
                "when telemetry is disabled — hoist `enabled = "
                "emitter.enabled` out of the loop and guard the call with "
                "`if enabled:` (the pattern the telemetry-overhead gate "
                "assumes)",
            )

    def _is_emitter_call(self, ctx: FileContext, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _EMITTER_METHODS:
            return False
        base = func.value
        if isinstance(base, ast.Name) and "emitter" in base.id.lower():
            return True
        if isinstance(base, ast.Call):
            if isinstance(base.func, ast.Name) and base.func.id == "get_emitter":
                return True
            target = ctx.imports.resolve(base.func)
            if target is not None and target.endswith(".get_emitter"):
                return True
        return False

    def _enclosing_loop(self, ctx: FileContext, node: ast.Call) -> Optional[ast.AST]:
        """Nearest For/While above ``node`` within the same function."""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return None
        return None

    def _is_guarded(self, ctx: FileContext, node: ast.Call, loop: ast.AST) -> bool:
        current: ast.AST = node
        while current is not loop:
            parent = ctx.parent(current)
            if parent is None:
                return False
            if (
                isinstance(parent, ast.If)
                and _is_enabled_guard(parent.test)
                and any(current is stmt for stmt in parent.body)
            ):
                return True
            current = parent
        return False


def _is_enabled_guard(test: ast.expr) -> bool:
    """A plain local bool, an ``.enabled`` read, or an `and` of those."""
    if isinstance(test, ast.Name):
        return True
    if isinstance(test, ast.Attribute) and test.attr == "enabled":
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_enabled_guard(value) for value in test.values)
    return False


@register
class KernelPairRule(Rule):
    """KERNEL001 — loop/vectorized kernel pairs stay dispatchable."""

    id = "KERNEL001"
    severity = Severity.ERROR
    summary = (
        "a *_loop/*_vectorized kernel pair where one variant is never "
        "referenced, or whose module lacks a `.kernel` config switch"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        defs: Dict[str, List[ast.AST]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, []).append(node)
        pairs: Dict[str, Dict[str, List[ast.AST]]] = {}
        for name in sorted(defs):
            match = _KERNEL_NAME_RE.match(name)
            if match is not None:
                pairs.setdefault(match.group("stem"), {})[match.group("variant")] = defs[name]
        complete = {
            stem: variants
            for stem, variants in sorted(pairs.items())
            if {"loop", "vectorized"} <= set(variants)
        }
        if not complete:
            return
        references = self._reference_names(ctx, defs)
        kernel_switch = any(
            isinstance(node, ast.Attribute)
            and node.attr == "kernel"
            and isinstance(node.ctx, ast.Load)
            for node in ast.walk(ctx.tree)
        )
        for stem, variants in sorted(complete.items()):
            for variant in ("loop", "vectorized"):
                name = f"{stem}_{variant}"
                if name not in references:
                    yield self.finding(
                        ctx,
                        variants[variant][0],
                        f"kernel variant `{name}` is defined but never "
                        "dispatched — both members of a loop/vectorized pair "
                        "must stay reachable from the `kernel` config switch "
                        "so the bit-identity tests compare live code",
                    )
            if not kernel_switch:
                yield self.finding(
                    ctx,
                    variants["loop"][0],
                    f"kernel pair `{stem}_loop`/`{stem}_vectorized` has no "
                    "`.kernel` config switch in this module — the selection "
                    "must come from the run config, not an edit",
                )

    def _reference_names(
        self, ctx: FileContext, defs: Dict[str, List[ast.AST]]
    ) -> Set[str]:
        """Function names referenced outside their own definitions."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                name = node.attr
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
            if name is None or name not in defs:
                continue
            names.add(name)
        return names


# The three rules below are emitted by the walker (suppression parsing and
# file loading), not by AST visitation; they are registered so they appear
# in --list-rules, carry documented severities, and can be baselined.


@register
class SuppressionHygieneRule(Rule):
    """NOQA001 — suppressions must name rules and give a reason."""

    id = "NOQA001"
    severity = Severity.WARNING
    summary = (
        "malformed `# repro: noqa` — must be "
        "`# repro: noqa RULE123[, RULE456] -- reason`"
    )

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        return iter(())


@register
class UnusedSuppressionRule(Rule):
    """NOQA002 — suppressions that no longer match anything must go."""

    id = "NOQA002"
    severity = Severity.WARNING
    summary = "`# repro: noqa` suppression that matched no finding on its line"

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        return iter(())


@register
class ParseFailureRule(Rule):
    """PARSE001 — files the analyzer cannot parse gate the build."""

    id = "PARSE001"
    severity = Severity.ERROR
    summary = "source file failed to parse; the analyzer cannot vouch for it"

    def check(self, ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
        return iter(())
