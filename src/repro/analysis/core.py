"""Primitives of the determinism/checkpoint-safety static analyzer.

The analyzer encodes, as AST checks, the contracts the dynamic test suite
can only probe on the paths it happens to execute: simulation code draws
randomness exclusively from injected generators, iteration feeding results
is explicitly ordered, result paths never read the wall clock, simulator
state stays picklable for ``CheckpointStore``, hot-loop telemetry is
guarded by the branch-on-local-bool pattern, and every loop/vectorized
kernel pair stays reachable from its config switch.

This module holds the shared machinery: :class:`Finding` (one diagnostic,
with a content hash that survives line-number drift so baselines stay
stable), :class:`FileContext` (parsed source plus parent links and
qualified names), :class:`ImportMap` (static resolution of dotted call
targets through import aliases), and the rule registry.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.project import ProjectModel

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "ImportMap",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "select_rules",
]


class Severity(str, Enum):
    """How a finding is ranked in reports (all findings gate CI equally)."""

    ERROR = "error"
    WARNING = "warning"


#: Lifecycle states a finding moves through while the report is assembled.
STATUS_ACTIVE = "active"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"


@dataclass
class Finding:
    """One diagnostic emitted by a rule for one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, recorded so baselines can match on content
    #: rather than on line numbers (which drift with unrelated edits).
    snippet: str = ""
    status: str = STATUS_ACTIVE
    #: Why the finding does not gate (baseline justification / noqa reason).
    justification: str = ""

    @property
    def content_hash(self) -> str:
        """Line-number-independent identity used by baseline matching."""
        digest = hashlib.sha1(f"{self.rule}::{self.snippet}".encode("utf-8"))
        return digest.hexdigest()[:12]

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline bucket: same rule, file and line content."""
        return (self.rule, self.path, self.content_hash)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        tag = "" if self.status == STATUS_ACTIVE else f" [{self.status}]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}{tag}: {self.message}"
        )


class FileContext:
    """A parsed source file plus the derived lookups rules need.

    Parent links and qualified names are computed once here so every rule
    visitor can walk upward (guard detection, allowed-context matching)
    without each rebuilding the maps.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        # Posix-ish segments used for scope matching; keep them exactly as
        # reported so findings and scopes agree on one spelling.
        self.parts: Tuple[str, ...] = tuple(
            segment for segment in path.replace("\\", "/").split("/") if segment
        )
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports = ImportMap.from_tree(tree)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def qualname(self, node: ast.AST) -> str:
        """Dotted enclosing-scope name, e.g. ``CheckpointStore.prune_stale``."""
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(names))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None


def path_matches(parts: Sequence[str], pattern: str) -> bool:
    """True when ``pattern``'s segments appear consecutively in ``parts``.

    ``"repro/p2psim/"`` matches ``src/repro/p2psim/market_sim.py`` whether
    the analyzed path was relative or absolute; a trailing filename in the
    pattern (``repro/runner/partition.py``) anchors on that file.
    """
    needle = tuple(segment for segment in pattern.replace("\\", "/").split("/") if segment)
    if not needle:
        return False
    span = len(needle)
    return any(
        tuple(parts[start : start + span]) == needle
        for start in range(len(parts) - span + 1)
    )


class ImportMap:
    """Static resolution of call targets through module/member imports."""

    def __init__(self) -> None:
        #: local name -> dotted module path ("np" -> "numpy")
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, member) ("shuffle" -> ("random", "shuffle"))
        self.member_aliases: Dict[str, Tuple[str, str]] = {}

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        imports.module_aliases[alias.asname] = alias.name
                    else:
                        # `import numpy.random` binds the top-level name.
                        top = alias.name.split(".", 1)[0]
                        imports.module_aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname if alias.asname is not None else alias.name
                    imports.member_aliases[local] = (node.module, alias.name)
        return imports

    def resolve(self, func: ast.expr) -> Optional[str]:
        """Dotted target of a call expression, or ``None`` if not static.

        ``np.random.poisson`` resolves to ``numpy.random.poisson`` under
        ``import numpy as np``; ``shuffle`` resolves to ``random.shuffle``
        under ``from random import shuffle``.  Attribute chains rooted in
        anything but an imported name (``self.rng.poisson``) resolve to
        ``None`` — those are injected objects, exactly what the contract
        wants call sites to use.
        """
        attrs: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base: Optional[str] = None
        if node.id in self.member_aliases:
            module, member = self.member_aliases[node.id]
            base = f"{module}.{member}"
        elif node.id in self.module_aliases:
            base = self.module_aliases[node.id]
        if base is None:
            return None
        return ".".join([base, *reversed(attrs)])


class Rule:
    """Base class: one contract, one rule id, one AST check per file."""

    id: str = ""
    severity: Severity = Severity.ERROR
    #: One-line contract statement shown by ``repro analyze --list-rules``.
    summary: str = ""

    def check(self, ctx: FileContext, config: "AnalysisConfig") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet(line),
        )


class ProjectRule(Rule):
    """Base class for pass-2 rules that run against the whole-program model.

    Project rules see every module at once (import graph, call graph,
    flow closures) instead of one AST.  Their per-file :meth:`check` is a
    no-op; the walker invokes :meth:`check_project` after the model is
    built, then routes the findings through the same scope, allowed-
    context, suppression and baseline machinery as per-file findings.
    """

    def check(self, ctx: FileContext, config: "AnalysisConfig") -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, model: "ProjectModel", config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, col: int, snippet: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def select_rules(ids: Sequence[str]) -> List[Rule]:
    """Instantiate the requested rules; raises ``KeyError`` on unknown ids."""
    unknown = sorted(set(ids) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule id(s) {', '.join(unknown)} (known: {known})")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(ids))]


