"""Scope and allowed-context configuration for the static analyzer.

Every rule encodes a contract that only holds for part of the tree —
wall-clock reads are fine in ``obs/`` (telemetry timestamps *are* wall
time) but not in result paths; picklability only matters for state that
flows through ``CheckpointStore``.  This module pins those boundaries in
one reviewable place.

Two mechanisms, deliberately distinct:

* **Scopes** turn a rule on/off for whole subtrees.  Patterns are
  consecutive path segments (``"repro/p2psim/"``), matched anywhere in
  the analyzed file's path so relative and absolute invocations agree.
* **Allowed contexts** exempt a single function, by file and qualified
  name, with a mandatory written reason.  This is for code that is
  *legitimately* outside the contract (GC bookkeeping, order-insensitive
  reductions) — unlike a ``# repro: noqa`` suppression, it is config
  reviewed with the analyzer, not an annotation scattered in the target
  file, and unlike a baseline entry it does not rot when the line moves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.core import FileContext, path_matches

__all__ = ["Scope", "AllowedContext", "AnalysisConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class Scope:
    """Path-segment include/exclude filter for one rule."""

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def covers(self, parts: Tuple[str, ...]) -> bool:
        if self.include and not any(path_matches(parts, pat) for pat in self.include):
            return False
        return not any(path_matches(parts, pat) for pat in self.exclude)


@dataclass(frozen=True)
class AllowedContext:
    """One function exempted from one rule, with a written justification."""

    path: str
    qualname: str
    reason: str


@dataclass(frozen=True)
class AnalysisConfig:
    """Where each rule applies and which functions are exempt."""

    rule_scopes: Mapping[str, Scope] = field(default_factory=dict)
    allowed_contexts: Mapping[str, Tuple[AllowedContext, ...]] = field(default_factory=dict)

    def scope(self, rule_id: str) -> Scope:
        return self.rule_scopes.get(rule_id, Scope())

    def in_scope(self, rule_id: str, ctx: FileContext) -> bool:
        return self.scope(rule_id).covers(ctx.parts)

    def allowed_context(self, rule_id: str, ctx: FileContext, node: ast.AST) -> Optional[AllowedContext]:
        """The exemption covering ``node``'s enclosing function, if any."""
        contexts = self.allowed_contexts.get(rule_id, ())
        if not contexts:
            return None
        qualname = ctx.qualname(node)
        for context in contexts:
            if not path_matches(ctx.parts, context.path):
                continue
            if qualname == context.qualname or qualname.startswith(context.qualname + "."):
                return context
        return None


def _scopes() -> Dict[str, Scope]:
    simulation = ("repro/",)
    return {
        # Global-RNG use: all simulation code plus the benchmark drivers
        # (their recordings are committed baselines, so a stray global draw
        # would make the perf gate non-reproducible).  obs/ is exempt — it
        # never draws randomness, and keeping it out of scope keeps the
        # rule's message ("inject a Generator") honest.
        "DET001": Scope(include=simulation + ("benchmarks/",), exclude=("repro/obs/",)),
        # Unordered iteration: sets (hash-randomized for str keys) and
        # filesystem listings (platform-dependent order).  Dict views are
        # deliberately NOT flagged: CPython dicts iterate in insertion
        # order, which is deterministic whenever insertion is — the real
        # hazard this repo has hit is sets and directory scans.
        "DET002": Scope(include=simulation, exclude=("repro/obs/",)),
        # Wall-clock reads in result paths.  obs/ and the telemetry
        # timestamps are out of scope by construction; monotonic duration
        # reads (perf_counter/monotonic) are never flagged anywhere.
        "DET003": Scope(
            include=(
                "repro/p2psim/",
                "repro/baselines/",
                "repro/experiments/",
                "repro/runner/",
            )
        ),
        # Unpicklable attributes on simulator/run state: every package
        # whose classes can end up inside a CheckpointStore pickle.
        "PICKLE001": Scope(
            include=(
                "repro/p2psim/",
                "repro/core/",
                "repro/overlay/",
                "repro/streaming/",
                "repro/workloads/",
                "repro/simulation/",
                "repro/baselines/",
            )
        ),
        # Telemetry guard pattern in hot loops.  The emitter's own package
        # is exempt (it *is* the instrumentation).
        "OBS001": Scope(include=simulation, exclude=("repro/obs/",)),
        # Kernel-pair reachability.
        "KERNEL001": Scope(include=simulation),
        # Suppression hygiene and parse failures apply everywhere.
        "NOQA001": Scope(),
        "NOQA002": Scope(),
        "PARSE001": Scope(),
    }


def _allowed() -> Dict[str, Tuple[AllowedContext, ...]]:
    return {
        "DET003": (
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_stale",
                reason=(
                    "wall-clock GC cutoff for stale checkpoint scopes; "
                    "bookkeeping only, never feeds a simulation result"
                ),
            ),
        ),
        "DET002": (
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_scope",
                reason="order-insensitive count of checkpoint files before rmtree",
            ),
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_stale",
                reason=(
                    "GC scan over scope directories; mtimes are reduced with "
                    "max() so traversal order cannot affect behaviour"
                ),
            ),
            AllowedContext(
                path="repro/runner/cache.py",
                qualname="ArtifactCache.__len__",
                reason="order-insensitive count of stored artifacts",
            ),
        ),
    }


#: The repository's checked-in analyzer policy.
DEFAULT_CONFIG = AnalysisConfig(rule_scopes=_scopes(), allowed_contexts=_allowed())
