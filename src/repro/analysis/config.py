"""Scope and allowed-context configuration for the static analyzer.

Every rule encodes a contract that only holds for part of the tree —
wall-clock reads are fine in ``obs/`` (telemetry timestamps *are* wall
time) but not in result paths; picklability only matters for state that
flows through ``CheckpointStore``.  This module pins those boundaries in
one reviewable place.

Two mechanisms, deliberately distinct:

* **Scopes** turn a rule on/off for whole subtrees.  Patterns are
  consecutive path segments (``"repro/p2psim/"``), matched anywhere in
  the analyzed file's path so relative and absolute invocations agree.
* **Allowed contexts** exempt a single function, by file and qualified
  name, with a mandatory written reason.  This is for code that is
  *legitimately* outside the contract (GC bookkeeping, order-insensitive
  reductions) — unlike a ``# repro: noqa`` suppression, it is config
  reviewed with the analyzer, not an annotation scattered in the target
  file, and unlike a baseline entry it does not rot when the line moves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.core import FileContext, path_matches

__all__ = ["Scope", "AllowedContext", "AnalysisConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class Scope:
    """Path-segment include/exclude filter for one rule."""

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def covers(self, parts: Tuple[str, ...]) -> bool:
        if self.include and not any(path_matches(parts, pat) for pat in self.include):
            return False
        return not any(path_matches(parts, pat) for pat in self.exclude)


@dataclass(frozen=True)
class AllowedContext:
    """One function exempted from one rule, with a written justification."""

    path: str
    qualname: str
    reason: str


@dataclass(frozen=True)
class AnalysisConfig:
    """Where each rule applies and which functions are exempt."""

    rule_scopes: Mapping[str, Scope] = field(default_factory=dict)
    allowed_contexts: Mapping[str, Tuple[AllowedContext, ...]] = field(default_factory=dict)

    def scope(self, rule_id: str) -> Scope:
        return self.rule_scopes.get(rule_id, Scope())

    def in_scope(self, rule_id: str, ctx: FileContext) -> bool:
        return self.scope(rule_id).covers(ctx.parts)

    def allowed_context(self, rule_id: str, ctx: FileContext, node: ast.AST) -> Optional[AllowedContext]:
        """The exemption covering ``node``'s enclosing function, if any."""
        return self.allowed_context_at(rule_id, ctx.parts, ctx.qualname(node))

    # Project rules work from module summaries, not live ASTs, so they
    # carry (path parts, qualname) instead of (ctx, node).

    def covers_path(self, rule_id: str, path: str) -> bool:
        """Scope check for a display path (project-rule variant)."""
        parts = tuple(segment for segment in path.replace("\\", "/").split("/") if segment)
        return self.scope(rule_id).covers(parts)

    def allowed_context_at(
        self, rule_id: str, parts: Tuple[str, ...], qualname: str
    ) -> Optional[AllowedContext]:
        """The exemption covering a (path, qualname) pair, if any."""
        contexts = self.allowed_contexts.get(rule_id, ())
        for context in contexts:
            if not path_matches(parts, context.path):
                continue
            if qualname == context.qualname or qualname.startswith(context.qualname + "."):
                return context
        return None

    def allowed_context_for_path(
        self, rule_id: str, path: str, qualname: str
    ) -> Optional[AllowedContext]:
        parts = tuple(segment for segment in path.replace("\\", "/").split("/") if segment)
        return self.allowed_context_at(rule_id, parts, qualname)


def _scopes() -> Dict[str, Scope]:
    simulation = ("repro/",)
    return {
        # Global-RNG use: all simulation code plus the benchmark drivers
        # (their recordings are committed baselines, so a stray global draw
        # would make the perf gate non-reproducible).  obs/ is exempt — it
        # never draws randomness, and keeping it out of scope keeps the
        # rule's message ("inject a Generator") honest.
        "DET001": Scope(
            include=simulation + ("benchmarks/", "examples/"), exclude=("repro/obs/",)
        ),
        # Unordered iteration: sets (hash-randomized for str keys) and
        # filesystem listings (platform-dependent order).  Dict views are
        # deliberately NOT flagged: CPython dicts iterate in insertion
        # order, which is deterministic whenever insertion is — the real
        # hazard this repo has hit is sets and directory scans.
        "DET002": Scope(include=simulation, exclude=("repro/obs/",)),
        # Wall-clock reads in result paths.  obs/ and the telemetry
        # timestamps are out of scope by construction; monotonic duration
        # reads (perf_counter/monotonic) are never flagged anywhere.
        "DET003": Scope(
            include=(
                "repro/p2psim/",
                "repro/baselines/",
                "repro/experiments/",
                "repro/runner/",
            )
        ),
        # Unpicklable attributes on simulator/run state: every package
        # whose classes can end up inside a CheckpointStore pickle.
        "PICKLE001": Scope(
            include=(
                "repro/p2psim/",
                "repro/core/",
                "repro/overlay/",
                "repro/streaming/",
                "repro/workloads/",
                "repro/simulation/",
                "repro/baselines/",
            )
        ),
        # Telemetry guard pattern in hot loops.  The emitter's own package
        # is exempt (it *is* the instrumentation).
        "OBS001": Scope(include=simulation, exclude=("repro/obs/",)),
        # Kernel-pair reachability.
        "KERNEL001": Scope(include=simulation),
        # Seed provenance (project-wide taint): every generator built in
        # simulation code must take a seed descending from `derive_seed`
        # or an injected parameter/config field.  The sanctioned factory
        # itself is excluded (it *is* the provenance root), as are the
        # analyzer and telemetry (neither draws randomness for results).
        "SEED001": Scope(
            include=simulation,
            exclude=("repro/utils/rng.py", "repro/analysis/", "repro/obs/"),
        ),
        # RNG escape: generators bound to module globals, class attributes
        # or default-argument values outlive a run and break replayability.
        "SEED002": Scope(
            include=simulation,
            exclude=("repro/utils/rng.py", "repro/analysis/", "repro/obs/"),
        ),
        # Thread-shared mutable state (project-wide): only meaningful in
        # modules that spawn threads; the analyzer itself is excluded.
        "THREAD001": Scope(include=simulation, exclude=("repro/analysis/",)),
        "THREAD002": Scope(include=simulation, exclude=("repro/analysis/",)),
        # Shard-task purity: tasks submitted to run_shard_tasks must not
        # mutate cross-shard state outside the boundary-exchange phase.
        # Applies everywhere shard tasks can be built, including tests and
        # benchmarks (a racy example would teach the racy idiom).
        "SHARD001": Scope(
            include=simulation + ("benchmarks/", "tests/"),
            exclude=("repro/analysis/",),
        ),
        # Sweep registry/scenario contract drift.
        "SWEEP001": Scope(include=simulation, exclude=("repro/analysis/",)),
        "SWEEP002": Scope(include=simulation, exclude=("repro/analysis/",)),
        # Suppression hygiene and parse failures apply everywhere.
        "NOQA001": Scope(),
        "NOQA002": Scope(),
        "PARSE001": Scope(),
    }


def _allowed() -> Dict[str, Tuple[AllowedContext, ...]]:
    return {
        "DET003": (
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_stale",
                reason=(
                    "wall-clock GC cutoff for stale checkpoint scopes; "
                    "bookkeeping only, never feeds a simulation result"
                ),
            ),
        ),
        "DET002": (
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_scope",
                reason="order-insensitive count of checkpoint files before rmtree",
            ),
            AllowedContext(
                path="repro/runner/partition.py",
                qualname="CheckpointStore.prune_stale",
                reason=(
                    "GC scan over scope directories; mtimes are reduced with "
                    "max() so traversal order cannot affect behaviour"
                ),
            ),
            AllowedContext(
                path="repro/runner/cache.py",
                qualname="ArtifactCache.__len__",
                reason="order-insensitive count of stored artifacts",
            ),
        ),
        "SEED001": (
            AllowedContext(
                path="repro/streaming/scheduler.py",
                qualname="ChunkScheduler.__init__",
                reason=(
                    "interactive-use fallback when no generator is injected; "
                    "every simulation path constructs schedulers with an rng "
                    "derived via make_rng, so the unseeded default never "
                    "feeds a recorded result"
                ),
            ),
            AllowedContext(
                path="repro/queueing/closed.py",
                qualname="ClosedJacksonNetwork.sample_occupancy",
                reason=(
                    "optional-rng convenience default for exploratory "
                    "sampling; fig9/fig10 experiment paths always pass a "
                    "make_rng-derived generator"
                ),
            ),
        ),
    }


#: The repository's checked-in analyzer policy.
DEFAULT_CONFIG = AnalysisConfig(rule_scopes=_scopes(), allowed_contexts=_allowed())
