"""Pass 1 of the project-wide analyzer: the cached project model.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time;
the cross-module rule families (SEED, THREAD, SWEEP) need whole-program
context — which function calls which, what a module re-exports, where a
seed value came from.  This module builds that context once per run as a
:class:`ProjectModel`:

* a :class:`ModuleSummary` per analyzed file — symbol table, import
  aliases, a conservative record of every call site, plus the targeted
  "facts" the flow rules consume (RNG construction sites with local
  seed-provenance tags, RNG escapes into module/class scope, thread
  spawns, shared-attribute accesses, ``SWEEP_PARAMS`` tuples, registry
  and scenario declarations);
* an import graph with its reverse closure (who must be re-analyzed when
  a module changes);
* a conservative call graph over canonical ``module:qualname`` ids,
  resolved through import aliases **and** package re-export chains.

Summaries are pure data (JSON round-trippable) and are keyed by the
module's content hash, so the model is cached incrementally: a warm run
re-parses only the files whose content changed and replays everything
else from :class:`ProjectCache`, counting hits and misses so CI can
assert the increment actually happened.  Global derivations (call graph,
fixpoints) are recomputed from summaries on every run — they are cheap,
and recomputing them keeps cross-module facts correct when any
transitive dependency changed.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.analysis.core import FileContext

__all__ = [
    "CallSite",
    "RngSite",
    "RngEscape",
    "EmitterCapture",
    "AttrAccess",
    "ClassFacts",
    "FunctionFacts",
    "RegistryEntry",
    "SpecFact",
    "ModuleSummary",
    "ProjectCache",
    "ProjectModel",
    "module_name_for",
    "summarize_module",
]

_CACHE_VERSION = 1

#: numpy/stdlib generator constructors, plus the repo's own factory.  Raw
#: (import-resolved) spellings; re-exported spellings are canonicalized by
#: :meth:`ProjectModel.resolve` before membership tests.
RNG_CONSTRUCTOR_TARGETS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
    "repro.utils.rng:make_rng",
}

#: The sanctioned seed-derivation root (canonical id).
DERIVE_SEED = "repro.utils.rng:derive_seed"

#: Call terminals that *might* be RNG constructors before canonicalization.
_RNG_CANDIDATE_TERMINALS = {"default_rng", "RandomState", "Random", "make_rng"}

_MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
_LOCK_TERMINALS = {"Lock", "RLock", "Condition"}
_MUTATING_METHODS = {
    "append",
    "add",
    "extend",
    "insert",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
}


def module_name_for(path: str) -> str:
    """Dotted module name for an analyzed file path.

    ``src/repro/runner/grid.py`` → ``repro.runner.grid`` (the leading
    source root is dropped); files outside a source root keep their
    path-derived name (``tests/test_cli.py`` → ``tests.test_cli``).
    """
    parts = [segment for segment in path.replace("\\", "/").split("/") if segment]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def content_hash(source: str) -> str:
    """Content key for cache entries: sha256 of the raw source."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:20]


# ---------------------------------------------------------------------------
# Summary records (all JSON round-trippable via to/from_payload)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression: raw target plus location.

    ``target`` is either an import-resolved dotted path
    (``numpy.random.default_rng``), a module-local reference
    (``local:SweepSpec.tasks``), or ``self:<attr>`` for single-hop method
    calls on ``self``.
    """

    target: str
    line: int
    col: int


@dataclass(frozen=True)
class RngSite:
    """A candidate RNG-constructor call with local seed-provenance tags.

    ``tags`` records every provenance source found in the seed argument:
    ``param`` (a parameter of the enclosing function — an injection
    point), ``attr`` (a config/instance field), ``call:<target>``
    (deferred to the cross-module fixpoint), ``literal``, ``none``,
    ``unseeded`` (no argument at all) or ``unknown``.
    """

    constructor: str
    qualname: str
    tags: Tuple[str, ...]
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class RngEscape:
    """An RNG value bound to state that outlives a run (SEED002 fact)."""

    kind: str  # "module-global" | "class-attribute" | "default-argument"
    constructor: str
    qualname: str
    name: str
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class EmitterCapture:
    """A ContextVar emitter captured into long-lived or cross-thread state."""

    kind: str  # "stored-attribute" | "module-global" | "thread-closure"
    qualname: str
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class AttrAccess:
    """One touch of a shared mutable instance attribute inside a method."""

    method: str
    attr: str
    mutation: bool
    locked: bool
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class ClassFacts:
    """Per-class facts for the thread-safety rules."""

    name: str
    line: int
    col: int
    #: attr -> (line, col, kind) for mutable-container attributes.
    mutable_attrs: Mapping[str, Tuple[int, int, str]]
    lock_attrs: Tuple[str, ...]
    accesses: Tuple[AttrAccess, ...]
    methods: Tuple[str, ...]


@dataclass(frozen=True)
class FunctionFacts:
    """Signature + call/return facts for one function or method."""

    qualname: str
    line: int
    col: int
    params: Tuple[str, ...]
    has_varkw: bool
    calls: Tuple[CallSite, ...]
    #: provenance tags of every `return <expr>` (see RngSite.tags).
    return_tags: Tuple[str, ...]
    #: keys of every all-string-key dict literal in the body (sweep axes).
    axis_keys: Tuple[str, ...]


@dataclass(frozen=True)
class RegistryEntry:
    """One ``SWEEPS`` registry entry: experiment id → runner + params refs."""

    experiment_id: str
    runner: str  # raw dotted/local target
    params: str  # raw dotted/local target of the SWEEP_PARAMS tuple
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class SpecFact:
    """One statically visible ``SweepSpec(...)`` construction."""

    experiment_id: Optional[str]
    axes: Tuple[str, ...]
    #: local helper calls whose dict keys also feed the grid (one hop).
    helpers: Tuple[str, ...]
    #: False when the grid expression was not statically resolvable.
    resolvable: bool
    qualname: str
    line: int
    col: int
    snippet: str


@dataclass
class ModuleSummary:
    """Everything pass 2 needs to know about one module, as pure data."""

    path: str
    module: str
    content_hash: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    member_aliases: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    rng_sites: List[RngSite] = field(default_factory=list)
    rng_escapes: List[RngEscape] = field(default_factory=list)
    emitter_captures: List[EmitterCapture] = field(default_factory=list)
    #: raw targets passed as `target=` to threading.Thread(...).
    thread_targets: List[str] = field(default_factory=list)
    spawns_threads: bool = False
    #: module-level NAME -> tuple of string constants (SWEEP_PARAMS & co).
    string_tuples: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    registry_entries: List[RegistryEntry] = field(default_factory=list)
    spec_facts: List[SpecFact] = field(default_factory=list)
    #: module-level mutable globals: name -> (line, col, kind).
    mutable_globals: Dict[str, Tuple[int, int, str]] = field(default_factory=dict)
    #: unlocked mutations of those globals: (qualname, name, line, col, snippet).
    global_mutations: List[Tuple[str, str, int, int, str]] = field(default_factory=list)
    #: parsed inline suppression annotations: (line, rules, reason).
    suppressions: List[Tuple[int, Tuple[str, ...], str]] = field(default_factory=list)
    parse_error: bool = False

    # -- JSON round-trip ----------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        def rec(obj: object) -> object:
            if hasattr(obj, "__dataclass_fields__"):
                return {k: rec(getattr(obj, k)) for k in obj.__dataclass_fields__}  # type: ignore[attr-defined]
            if isinstance(obj, (list, tuple)):
                return [rec(item) for item in obj]
            if isinstance(obj, dict):
                return {str(k): rec(v) for k, v in obj.items()}
            return obj

        return {k: rec(getattr(self, k)) for k in self.__dataclass_fields__}

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ModuleSummary":
        def tup(seq: object) -> Tuple[str, ...]:
            return tuple(str(item) for item in (seq or ()))  # type: ignore[union-attr]

        summary = cls(
            path=str(payload["path"]),
            module=str(payload["module"]),
            content_hash=str(payload["content_hash"]),
        )
        summary.module_aliases = {str(k): str(v) for k, v in dict(payload.get("module_aliases", {})).items()}  # type: ignore[arg-type]
        summary.member_aliases = {
            str(k): (str(v[0]), str(v[1]))
            for k, v in dict(payload.get("member_aliases", {})).items()  # type: ignore[arg-type]
        }
        for qual, fn in dict(payload.get("functions", {})).items():  # type: ignore[arg-type]
            summary.functions[str(qual)] = FunctionFacts(
                qualname=str(fn["qualname"]),
                line=int(fn["line"]),
                col=int(fn["col"]),
                params=tup(fn["params"]),
                has_varkw=bool(fn["has_varkw"]),
                calls=tuple(
                    CallSite(str(c["target"]), int(c["line"]), int(c["col"])) for c in fn["calls"]
                ),
                return_tags=tup(fn["return_tags"]),
                axis_keys=tup(fn["axis_keys"]),
            )
        for name, cl in dict(payload.get("classes", {})).items():  # type: ignore[arg-type]
            summary.classes[str(name)] = ClassFacts(
                name=str(cl["name"]),
                line=int(cl["line"]),
                col=int(cl["col"]),
                mutable_attrs={
                    str(k): (int(v[0]), int(v[1]), str(v[2]))
                    for k, v in dict(cl["mutable_attrs"]).items()
                },
                lock_attrs=tup(cl["lock_attrs"]),
                accesses=tuple(
                    AttrAccess(
                        method=str(a["method"]),
                        attr=str(a["attr"]),
                        mutation=bool(a["mutation"]),
                        locked=bool(a["locked"]),
                        line=int(a["line"]),
                        col=int(a["col"]),
                        snippet=str(a["snippet"]),
                    )
                    for a in cl["accesses"]
                ),
                methods=tup(cl["methods"]),
            )
        summary.rng_sites = [
            RngSite(
                constructor=str(s["constructor"]),
                qualname=str(s["qualname"]),
                tags=tup(s["tags"]),
                line=int(s["line"]),
                col=int(s["col"]),
                snippet=str(s["snippet"]),
            )
            for s in list(payload.get("rng_sites", []))  # type: ignore[arg-type]
        ]
        summary.rng_escapes = [
            RngEscape(
                kind=str(s["kind"]),
                constructor=str(s["constructor"]),
                qualname=str(s["qualname"]),
                name=str(s["name"]),
                line=int(s["line"]),
                col=int(s["col"]),
                snippet=str(s["snippet"]),
            )
            for s in list(payload.get("rng_escapes", []))  # type: ignore[arg-type]
        ]
        summary.emitter_captures = [
            EmitterCapture(
                kind=str(s["kind"]),
                qualname=str(s["qualname"]),
                line=int(s["line"]),
                col=int(s["col"]),
                snippet=str(s["snippet"]),
            )
            for s in list(payload.get("emitter_captures", []))  # type: ignore[arg-type]
        ]
        summary.thread_targets = [str(t) for t in list(payload.get("thread_targets", []))]  # type: ignore[arg-type]
        summary.spawns_threads = bool(payload.get("spawns_threads", False))
        summary.string_tuples = {
            str(k): tup(v) for k, v in dict(payload.get("string_tuples", {})).items()  # type: ignore[arg-type]
        }
        summary.registry_entries = [
            RegistryEntry(
                experiment_id=str(e["experiment_id"]),
                runner=str(e["runner"]),
                params=str(e["params"]),
                line=int(e["line"]),
                col=int(e["col"]),
                snippet=str(e["snippet"]),
            )
            for e in list(payload.get("registry_entries", []))  # type: ignore[arg-type]
        ]
        summary.spec_facts = [
            SpecFact(
                experiment_id=(None if s["experiment_id"] is None else str(s["experiment_id"])),
                axes=tup(s["axes"]),
                helpers=tup(s["helpers"]),
                resolvable=bool(s["resolvable"]),
                qualname=str(s["qualname"]),
                line=int(s["line"]),
                col=int(s["col"]),
                snippet=str(s["snippet"]),
            )
            for s in list(payload.get("spec_facts", []))  # type: ignore[arg-type]
        ]
        summary.mutable_globals = {
            str(k): (int(v[0]), int(v[1]), str(v[2]))
            for k, v in dict(payload.get("mutable_globals", {})).items()  # type: ignore[arg-type]
        }
        summary.global_mutations = [
            (str(m[0]), str(m[1]), int(m[2]), int(m[3]), str(m[4]))
            for m in list(payload.get("global_mutations", []))  # type: ignore[arg-type]
        ]
        summary.suppressions = [
            (int(s[0]), tup(s[1]), str(s[2]))
            for s in list(payload.get("suppressions", []))  # type: ignore[arg-type]
        ]
        summary.parse_error = bool(payload.get("parse_error", False))
        return summary


# ---------------------------------------------------------------------------
# Extraction (the only place pass 1 touches an AST)
# ---------------------------------------------------------------------------


def _resolve_target(ctx: FileContext, func: ast.expr) -> Optional[str]:
    """Raw call target: import-resolved dotted, ``local:<name>`` or ``self:<attr>``."""
    resolved = ctx.imports.resolve(func)
    if resolved is not None:
        return resolved
    if isinstance(func, ast.Name):
        return f"local:{func.id}"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return f"self:{func.attr}"
    return None


def _is_mutable_literal(ctx: FileContext, value: ast.expr) -> Optional[str]:
    """Kind string when ``value`` constructs a mutable container, else None."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_CONSTRUCTORS:
            return name
    return None


def _is_lock_construction(ctx: FileContext, value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    target = ctx.imports.resolve(value.func)
    if target is not None and target.startswith("threading."):
        return target.split(".", 1)[1] in _LOCK_TERMINALS
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_TERMINALS:
        return True
    return isinstance(func, ast.Name) and func.id in _LOCK_TERMINALS


def _is_get_emitter_call(ctx: FileContext, value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    target = _resolve_target(ctx, value.func)
    return target is not None and target.split(":")[-1].split(".")[-1] == "get_emitter"


def _rng_candidate(target: Optional[str]) -> bool:
    if target is None:
        return False
    terminal = target.split(":")[-1].split(".")[-1]
    return terminal in _RNG_CANDIDATE_TERMINALS


def _provenance_tags(
    ctx: FileContext,
    expr: ast.expr,
    params: Set[str],
    env: Mapping[str, Tuple[str, ...]],
) -> List[str]:
    """Local seed-provenance tags of ``expr`` (see :class:`RngSite`)."""
    tags: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            target = _resolve_target(ctx, node.func)
            if target is not None:
                tags.append(f"call:{target}")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in params:
                tags.append("param")
            elif node.id in env:
                tags.extend(env[node.id])
            else:
                tags.append(f"global:{node.id}")
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            # A dotted read (`config.seed`, `self._base_seed`) is an
            # injected field unless it resolves to an imported module
            # (those fall through to the Call handling above).
            if ctx.imports.resolve(node) is None:
                tags.append("attr")
        elif isinstance(node, ast.Subscript):
            tags.append("attr")
        elif isinstance(node, ast.Constant):
            if node.value is None:
                tags.append("none")
            elif not isinstance(node.value, str):
                tags.append("literal")
    return tags or ["unknown"]


def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
    """The seed-carrying argument of an RNG-constructor call, if any."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _function_env(
    ctx: FileContext, fn: ast.AST, params: Set[str]
) -> Dict[str, Tuple[str, ...]]:
    """Flow-light local provenance map: name -> tags, in document order."""
    assigns: List[Tuple[int, ast.expr, List[ast.Name]]] = []
    for node in ast.walk(fn):
        if ctx.enclosing_function(node) is not fn:
            continue
        if isinstance(node, ast.Assign):
            names = [t for t in node.targets if isinstance(t, ast.Name)]
            if names:
                assigns.append((node.lineno, node.value, names))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns.append((node.lineno, node.value, [node.target]))
    env: Dict[str, Tuple[str, ...]] = {}
    for _, value, names in sorted(assigns, key=lambda item: item[0]):
        tags = tuple(_provenance_tags(ctx, value, params, env))
        for name in names:
            if name.id in params:
                continue  # parameters stay injection points
            env[name.id] = tags
    return env


def _return_tags(ctx: FileContext, fn: ast.AST, params: Set[str]) -> List[str]:
    tags: List[str] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if ctx.enclosing_function(node) is not fn:
            continue
        value = node.value
        if isinstance(value, ast.Call):
            target = _resolve_target(ctx, value.func)
            if target is not None:
                tags.append(f"call:{target}")
                continue
        if isinstance(value, ast.Name) and value.id in params:
            tags.append("param")
            continue
        tags.append("other")
    return tags


def _axis_keys(fn: ast.AST) -> List[str]:
    """Keys of every all-string-key dict literal in a function body."""
    keys: List[str] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Dict):
            continue
        if not node.keys or not all(
            isinstance(k, ast.Constant) and isinstance(k.value, str) for k in node.keys
        ):
            continue
        keys.extend(k.value for k in node.keys)  # type: ignore[union-attr]
    seen: Dict[str, None] = {}
    for key in keys:
        seen.setdefault(key, None)
    return list(seen)


def _string_tuple(value: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(value, (ast.Tuple, ast.List)) and value.elts:
        items: List[str] = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            items.append(elt.value)
        return tuple(items)
    return None


def _extract_registry(ctx: FileContext, summary: ModuleSummary, node: ast.Assign) -> None:
    """Record SWEEPS-style registry entries from a module-level dict literal."""
    if not isinstance(node.value, ast.Dict):
        return
    for key, value in zip(node.value.keys, node.value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if not isinstance(value, ast.Dict):
            continue
        entry: Dict[str, str] = {}
        for inner_key, inner_value in zip(value.keys, value.values):
            if not (isinstance(inner_key, ast.Constant) and isinstance(inner_key.value, str)):
                continue
            if inner_key.value in ("runner", "params"):
                target = _resolve_target(ctx, inner_value)
                if target is None and isinstance(inner_value, ast.Attribute):
                    base = ctx.imports.resolve(inner_value.value)
                    if base is not None:
                        target = f"{base}.{inner_value.attr}"
                if target is not None:
                    entry[inner_key.value] = target
        if "runner" in entry and "params" in entry:
            summary.registry_entries.append(
                RegistryEntry(
                    experiment_id=key.value,
                    runner=entry["runner"],
                    params=entry["params"],
                    line=key.lineno,
                    col=key.col_offset,
                    snippet=ctx.snippet(key.lineno),
                )
            )


def _extract_spec_fact(ctx: FileContext, call: ast.Call) -> Optional[SpecFact]:
    """A :class:`SpecFact` when ``call`` is a ``SweepSpec(...)`` construction."""
    target = _resolve_target(ctx, call.func)
    if target is None or target.split(":")[-1].split(".")[-1] != "SweepSpec":
        return None
    experiment_id: Optional[str] = None
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(call.args[0].value, str):
        experiment_id = call.args[0].value
    for keyword in call.keywords:
        if keyword.arg == "experiment_id":
            if isinstance(keyword.value, ast.Constant) and isinstance(keyword.value.value, str):
                experiment_id = keyword.value.value
    grid_expr: Optional[ast.expr] = None
    if len(call.args) > 1:
        grid_expr = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "grid":
            grid_expr = keyword.value
    enclosing = ctx.enclosing_function(call)
    qualname = ctx.qualname(call)
    axes: List[str] = []
    helpers: List[str] = []
    resolvable = True
    if grid_expr is None:
        pass  # empty grid: a plain replication, nothing to validate
    else:
        # Inline ParamGrid({...}) / [{...}] grids resolve directly; a Name
        # or helper call falls back to the enclosing function's dict keys
        # plus one hop into locally-called helpers.
        direct = _grid_axes(grid_expr)
        if direct is not None:
            axes.extend(direct)
        elif enclosing is not None:
            axes.extend(_axis_keys(enclosing))
            for node in ast.walk(enclosing):
                if isinstance(node, ast.Call):
                    helper = _resolve_target(ctx, node.func)
                    if helper is not None and helper.startswith("local:"):
                        helpers.append(helper)
        else:
            resolvable = False
    return SpecFact(
        experiment_id=experiment_id,
        axes=tuple(dict.fromkeys(axes)),
        helpers=tuple(dict.fromkeys(helpers)),
        resolvable=resolvable,
        qualname=qualname,
        line=call.lineno,
        col=call.col_offset,
        snippet=ctx.snippet(call.lineno),
    )


def _grid_axes(expr: ast.expr) -> Optional[List[str]]:
    """Axis names of an inline grid expression, or None when indirect."""
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "ParamGrid" and expr.args and isinstance(expr.args[0], ast.Dict):
            keys = expr.args[0].keys
            if all(isinstance(k, ast.Constant) and isinstance(k.value, str) for k in keys):
                return [k.value for k in keys]  # type: ignore[union-attr]
            return []
        return None
    if isinstance(expr, ast.List):
        axes: List[str] = []
        for elt in expr.elts:
            if isinstance(elt, ast.Dict) and all(
                isinstance(k, ast.Constant) and isinstance(k.value, str) for k in elt.keys
            ):
                axes.extend(k.value for k in elt.keys)  # type: ignore[union-attr]
        return list(dict.fromkeys(axes))
    return None


def summarize_module(path: str, source: str, tree: ast.Module) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed file."""
    from repro.analysis.walker import parse_suppressions

    ctx = FileContext(path=path, source=source, tree=tree)
    summary = ModuleSummary(
        path=path, module=module_name_for(path), content_hash=content_hash(source)
    )
    summary.module_aliases = dict(ctx.imports.module_aliases)
    summary.member_aliases = dict(ctx.imports.member_aliases)
    suppressions, _ = parse_suppressions(source)
    summary.suppressions = [(s.line, s.rules, s.reason) for s in suppressions]

    # -- functions: signatures, calls, returns, axis keys -------------------
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = ctx.qualname(node)
        args = node.args
        named = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if named and named[0] in ("self", "cls"):
            named = named[1:]
        params = set(named)
        env = _function_env(ctx, node, params)
        calls: List[CallSite] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and ctx.enclosing_function(child) is node:
                target = _resolve_target(ctx, child.func)
                if target is not None:
                    calls.append(CallSite(target, child.lineno, child.col_offset))
        summary.functions[qualname] = FunctionFacts(
            qualname=qualname,
            line=node.lineno,
            col=node.col_offset,
            params=tuple(named),
            has_varkw=args.kwarg is not None,
            calls=tuple(calls),
            return_tags=tuple(_return_tags(ctx, node, params)),
            axis_keys=tuple(_axis_keys(node)),
        )
        # RNG constructions as default argument values escape into
        # module-import-time state shared by every later run.
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if isinstance(default, ast.Call):
                target = _resolve_target(ctx, default.func)
                if _rng_candidate(target):
                    summary.rng_escapes.append(
                        RngEscape(
                            kind="default-argument",
                            constructor=str(target),
                            qualname=qualname,
                            name=node.name,
                            line=default.lineno,
                            col=default.col_offset,
                            snippet=ctx.snippet(default.lineno),
                        )
                    )

    # -- RNG sites with local provenance ------------------------------------
    env_cache: Dict[ast.AST, Dict[str, Tuple[str, ...]]] = {}
    param_cache: Dict[ast.AST, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _resolve_target(ctx, node.func)
        if not _rng_candidate(target):
            continue
        enclosing = ctx.enclosing_function(node)
        if enclosing is not None and enclosing not in env_cache:
            if isinstance(enclosing, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = [
                    a.arg
                    for a in enclosing.args.posonlyargs
                    + enclosing.args.args
                    + enclosing.args.kwonlyargs
                ]
                param_cache[enclosing] = {n for n in names if n not in ("self", "cls")}
            else:
                param_cache[enclosing] = set()
            env_cache[enclosing] = _function_env(ctx, enclosing, param_cache[enclosing])
        params = param_cache.get(enclosing, set()) if enclosing is not None else set()
        env = env_cache.get(enclosing, {}) if enclosing is not None else {}
        seed_arg = _seed_argument(node)
        if seed_arg is None:
            tags: List[str] = ["unseeded"]
        else:
            tags = _provenance_tags(ctx, seed_arg, params, env)
        summary.rng_sites.append(
            RngSite(
                constructor=str(target),
                qualname=ctx.qualname(node),
                tags=tuple(dict.fromkeys(tags)),
                line=node.lineno,
                col=node.col_offset,
                snippet=ctx.snippet(node.lineno),
            )
        )

    # -- module/class-level assignments -------------------------------------
    def record_escape(kind: str, name: str, value: ast.expr, qualname: str) -> None:
        if not isinstance(value, ast.Call):
            return
        target = _resolve_target(ctx, value.func)
        if _rng_candidate(target):
            summary.rng_escapes.append(
                RngEscape(
                    kind=kind,
                    constructor=str(target),
                    qualname=qualname,
                    name=name,
                    line=value.lineno,
                    col=value.col_offset,
                    snippet=ctx.snippet(value.lineno),
                )
            )

    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target_node in targets:
            if not isinstance(target_node, ast.Name):
                continue
            name = target_node.id
            record_escape("module-global", name, value, "")
            if _is_get_emitter_call(ctx, value):
                summary.emitter_captures.append(
                    EmitterCapture(
                        kind="module-global",
                        qualname="",
                        line=node.lineno,
                        col=node.col_offset,
                        snippet=ctx.snippet(node.lineno),
                    )
                )
            kind = _is_mutable_literal(ctx, value)
            if kind is not None:
                summary.mutable_globals[name] = (node.lineno, node.col_offset, kind)
            tup = _string_tuple(value)
            if tup is not None:
                summary.string_tuples[name] = tup
            if name == "SWEEPS" and isinstance(node, ast.Assign):
                _extract_registry(ctx, summary, node)

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                for target_node in stmt.targets:
                    if isinstance(target_node, ast.Name):
                        record_escape(
                            "class-attribute", target_node.id, stmt.value, node.name
                        )

    # -- thread facts --------------------------------------------------------
    thread_calls: List[ast.Call] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _resolve_target(ctx, node.func)
        if target == "threading.Thread" or (
            target is not None and target.endswith(".Thread") and "threading" in target
        ):
            thread_calls.append(node)
    summary.spawns_threads = bool(thread_calls)
    for call in thread_calls:
        for keyword in call.keywords:
            if keyword.arg != "target":
                continue
            target = _resolve_target(ctx, keyword.value)
            if target is not None:
                summary.thread_targets.append(target)
            # THREAD002: a closure target that references an emitter local
            # captured from get_emitter() in the spawning thread's context.
            enclosing = ctx.enclosing_function(call)
            if enclosing is None:
                continue
            captured: Set[str] = set()
            for stmt in ast.walk(enclosing):
                if isinstance(stmt, ast.Assign) and _is_get_emitter_call(ctx, stmt.value):
                    captured.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
            if not captured:
                continue
            closure: Optional[ast.AST] = None
            if isinstance(keyword.value, ast.Lambda):
                closure = keyword.value
            elif isinstance(keyword.value, ast.Name):
                for stmt in ast.walk(enclosing):
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == keyword.value.id
                    ):
                        closure = stmt
            if closure is None:
                continue
            if any(
                isinstance(n, ast.Name) and n.id in captured and isinstance(n.ctx, ast.Load)
                for n in ast.walk(closure)
            ):
                summary.emitter_captures.append(
                    EmitterCapture(
                        kind="thread-closure",
                        qualname=ctx.qualname(call),
                        line=call.lineno,
                        col=call.col_offset,
                        snippet=ctx.snippet(call.lineno),
                    )
                )

    # Stored emitter captures (`self.x = get_emitter()`).
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_get_emitter_call(ctx, node.value):
            continue
        for target_node in node.targets:
            if (
                isinstance(target_node, ast.Attribute)
                and isinstance(target_node.value, ast.Name)
                and target_node.value.id == "self"
            ):
                summary.emitter_captures.append(
                    EmitterCapture(
                        kind="stored-attribute",
                        qualname=ctx.qualname(node),
                        line=node.lineno,
                        col=node.col_offset,
                        snippet=ctx.snippet(node.lineno),
                    )
                )

    # -- per-class shared-state facts ----------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _class_facts(ctx, node)

    # -- unlocked module-global mutations ------------------------------------
    if summary.mutable_globals:
        lock_globals = {
            name
            for name, stmt in _module_level_values(tree).items()
            if _is_lock_construction(ctx, stmt)
        }
        for node in ast.walk(tree):
            mutated = _mutated_global(node, summary.mutable_globals)
            if mutated is None:
                continue
            if _under_lock(ctx, node, lock_globals):
                continue
            summary.global_mutations.append(
                (
                    ctx.qualname(node),
                    mutated,
                    node.lineno,
                    node.col_offset,
                    ctx.snippet(node.lineno),
                )
            )

    # -- SweepSpec constructions ---------------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fact = _extract_spec_fact(ctx, node)
            if fact is not None:
                summary.spec_facts.append(fact)

    return summary


def _module_level_values(tree: ast.Module) -> Dict[str, ast.expr]:
    values: Dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    values[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                values[node.target.id] = node.value
    return values


def _mutated_global(node: ast.AST, globals_map: Mapping[str, object]) -> Optional[str]:
    """Name of the module global ``node`` mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                if target.value.id in globals_map:
                    return target.value.id
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                if target.value.id in globals_map:
                    return target.value.id
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in globals_map
        ):
            return func.value.id
    return None


def _under_lock(ctx: FileContext, node: ast.AST, lock_names: Set[str]) -> bool:
    """True when ``node`` sits inside ``with <lock>:`` for a known lock name."""
    for ancestor in ctx.ancestors(node):
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            if isinstance(expr, ast.Name) and expr.id in lock_names:
                return True
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in lock_names
            ):
                return True
    return False


def _class_facts(ctx: FileContext, node: ast.ClassDef) -> ClassFacts:
    mutable_attrs: Dict[str, Tuple[int, int, str]] = {}
    lock_attrs: List[str] = []
    methods: List[str] = []
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        methods.append(method.name)
        for stmt in ast.walk(method):
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            if value is None:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if _is_lock_construction(ctx, value):
                    lock_attrs.append(target.attr)
                    continue
                kind = _is_mutable_literal(ctx, value)
                if kind is not None and target.attr not in mutable_attrs:
                    mutable_attrs[target.attr] = (stmt.lineno, stmt.col_offset, kind)

    accesses: List[AttrAccess] = []
    lock_set = set(lock_attrs)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # __init__/__post_init__ run before any thread can see the object.
        if method.name in ("__init__", "__post_init__"):
            continue
        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.Attribute):
                continue
            if not (isinstance(stmt.value, ast.Name) and stmt.value.id == "self"):
                continue
            if stmt.attr not in mutable_attrs:
                continue
            parent = ctx.parent(stmt)
            mutation = isinstance(stmt.ctx, (ast.Store, ast.Del))
            if (
                isinstance(parent, ast.Subscript)
                and parent.value is stmt
                and isinstance(parent.ctx, (ast.Store, ast.Del))
            ):
                mutation = True
            if (
                isinstance(parent, ast.Attribute)
                and parent.value is stmt
                and parent.attr in _MUTATING_METHODS
            ):
                mutation = True
            accesses.append(
                AttrAccess(
                    method=method.name,
                    attr=stmt.attr,
                    mutation=mutation,
                    locked=_under_lock(ctx, stmt, lock_set),
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    snippet=ctx.snippet(stmt.lineno),
                )
            )
    return ClassFacts(
        name=node.name,
        line=node.lineno,
        col=node.col_offset,
        mutable_attrs=mutable_attrs,
        lock_attrs=tuple(lock_attrs),
        accesses=tuple(accesses),
        methods=tuple(methods),
    )


# ---------------------------------------------------------------------------
# Cache + model
# ---------------------------------------------------------------------------


class ProjectCache:
    """Content-hash-keyed store of module summaries on disk."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "project-model.json"

    def load(self) -> Dict[str, ModuleSummary]:
        if not self.path.is_file():
            return {}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        if payload.get("version") != _CACHE_VERSION:
            return {}
        summaries: Dict[str, ModuleSummary] = {}
        for path, entry in dict(payload.get("modules", {})).items():
            try:
                summaries[str(path)] = ModuleSummary.from_payload(entry)
            except (KeyError, TypeError, ValueError):
                continue  # a corrupt entry is just a cache miss
        return summaries

    def save(self, summaries: Mapping[str, ModuleSummary]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _CACHE_VERSION,
            "modules": {path: summary.to_payload() for path, summary in sorted(summaries.items())},
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)


class ProjectModel:
    """The whole-program view pass 2 rules run against."""

    def __init__(self, summaries: Mapping[str, ModuleSummary]) -> None:
        #: path -> summary (the primary index; paths are display paths).
        self.summaries: Dict[str, ModuleSummary] = dict(summaries)
        #: module name -> summary (modules shadowed by duplicates keep first).
        self.modules: Dict[str, ModuleSummary] = {}
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            self.modules.setdefault(summary.module, summary)
        self.cache_hits = 0
        self.cache_misses = 0
        #: paths whose content hash differed from the cached model.
        self.changed_paths: Set[str] = set()
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        self._call_graph: Optional[Dict[str, Set[str]]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        files: Sequence[Tuple[str, str]],
        cached: Optional[Mapping[str, ModuleSummary]] = None,
        trees: Optional[Mapping[str, ast.Module]] = None,
    ) -> "ProjectModel":
        """Build a model from ``(display_path, source)`` pairs.

        Files whose content hash matches a cached summary are replayed
        without re-parsing; everything else is re-extracted and counted
        as a miss.  ``trees`` supplies already-parsed ASTs (the walker
        parses each file once for the per-file rules anyway).
        """
        cached = cached or {}
        trees = trees or {}
        summaries: Dict[str, ModuleSummary] = {}
        hits = misses = 0
        changed: Set[str] = set()
        for path, source in files:
            digest = content_hash(source)
            prior = cached.get(path)
            if prior is not None and prior.content_hash == digest:
                summaries[path] = prior
                hits += 1
                continue
            misses += 1
            changed.add(path)
            tree = trees.get(path)
            if tree is None:
                try:
                    tree = ast.parse(source, filename=path)
                except SyntaxError:
                    summary = ModuleSummary(
                        path=path, module=module_name_for(path), content_hash=digest
                    )
                    summary.parse_error = True
                    summaries[path] = summary
                    continue
            summaries[path] = summarize_module(path, source, tree)
        model = cls(summaries)
        model.cache_hits = hits
        model.cache_misses = misses
        model.changed_paths = changed
        return model

    # -- graphs --------------------------------------------------------------

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """module name -> imported module names (restricted to the model)."""
        if self._import_graph is None:
            graph: Dict[str, Set[str]] = {}
            for summary in self.summaries.values():
                edges: Set[str] = set()
                for dotted in summary.module_aliases.values():
                    edges.update(self._known_module_prefixes(dotted))
                for module, member in summary.member_aliases.values():
                    edges.update(self._known_module_prefixes(module))
                    edges.update(self._known_module_prefixes(f"{module}.{member}"))
                edges.discard(summary.module)
                graph[summary.module] = edges
            self._import_graph = graph
        return self._import_graph

    def _known_module_prefixes(self, dotted: str) -> Set[str]:
        found: Set[str] = set()
        parts = dotted.split(".")
        for end in range(1, len(parts) + 1):
            prefix = ".".join(parts[:end])
            if prefix in self.modules:
                found.add(prefix)
        return found

    def reverse_importers(self, changed_paths: Set[str]) -> Set[str]:
        """Paths of modules that (transitively) import any changed module."""
        changed_modules = {
            self.summaries[path].module for path in changed_paths if path in self.summaries
        }
        reverse: Dict[str, Set[str]] = {}
        for module, imports in self.import_graph.items():
            for imported in imports:
                reverse.setdefault(imported, set()).add(module)
        affected = set(changed_modules)
        frontier = list(changed_modules)
        while frontier:
            module = frontier.pop()
            for dependent in reverse.get(module, ()):  # transitive closure
                if dependent not in affected:
                    affected.add(dependent)
                    frontier.append(dependent)
        return {
            path
            for path, summary in self.summaries.items()
            if summary.module in affected
        }

    # -- name resolution -----------------------------------------------------

    def resolve(self, raw: str, module: str) -> Optional[str]:
        """Canonical id for a raw call target recorded in ``module``.

        Returns ``"<module>:<qualname>"`` for names resolving into the
        model (through package re-export chains), the raw dotted string
        for external targets (``numpy.random.default_rng``), or ``None``
        for targets that cannot be resolved (``self:<attr>`` without a
        class context).
        """
        if raw.startswith("local:"):
            name = raw[len("local:") :]
            return self._resolve_in_module(module, name)
        if raw.startswith("self:"):
            return None
        return self._resolve_dotted(raw, depth=0)

    def _resolve_in_module(self, module: str, name: str) -> Optional[str]:
        # `local:` names were not import-resolved by ImportMap, so they are
        # module-level definitions (or builtins) in the recording module.
        summary = self.modules.get(module)
        if summary is None:
            return None
        head = name.split(".", 1)[0]
        if head in summary.member_aliases:
            origin, member = summary.member_aliases[head]
            rest = name[len(head) :]
            return self._resolve_dotted(f"{origin}.{member}{rest}", depth=0)
        if head in summary.module_aliases:
            rest = name[len(head) :]
            return self._resolve_dotted(f"{summary.module_aliases[head]}{rest}", depth=0)
        return f"{module}:{name}"

    def _resolve_dotted(self, dotted: str, depth: int) -> Optional[str]:
        if depth > 8:
            return None
        parts = dotted.split(".")
        best: Optional[str] = None
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in self.modules:
                best = prefix
                break
        if best is None:
            return dotted  # external target: keep the raw spelling
        rest = parts[len(best.split(".")) :]
        module = best
        while rest:
            head, tail = rest[0], rest[1:]
            candidate = f"{module}.{head}"
            if candidate in self.modules:
                module, rest = candidate, tail
                continue
            summary = self.modules[module]
            if head in summary.member_aliases:
                origin, member = summary.member_aliases[head]
                return self._resolve_dotted(
                    ".".join([origin, member, *tail]), depth=depth + 1
                )
            return f"{module}:{'.'.join([head, *tail])}"
        return module

    def function(self, canonical: str) -> Optional[FunctionFacts]:
        """The :class:`FunctionFacts` behind a canonical ``module:qual`` id."""
        if ":" not in canonical:
            return None
        module, qual = canonical.split(":", 1)
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.functions.get(qual)

    def string_tuple(self, canonical: str) -> Optional[Tuple[str, ...]]:
        if ":" not in canonical:
            return None
        module, name = canonical.split(":", 1)
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.string_tuples.get(name)

    @property
    def call_graph(self) -> Dict[str, Set[str]]:
        """canonical caller id -> canonical callee ids (conservative)."""
        if self._call_graph is None:
            graph: Dict[str, Set[str]] = {}
            for summary in self.summaries.values():
                for qual, facts in summary.functions.items():
                    caller = f"{summary.module}:{qual}"
                    callees: Set[str] = set()
                    for call in facts.calls:
                        target = call.target
                        if target.startswith("self:"):
                            # Single-hop method call within the same class.
                            if "." in qual:
                                cls_name = qual.rsplit(".", 1)[0]
                                resolved: Optional[str] = (
                                    f"{summary.module}:{cls_name}.{target[len('self:') :]}"
                                )
                            else:
                                resolved = None
                        else:
                            resolved = self.resolve(target, summary.module)
                        if resolved is not None:
                            callees.add(resolved)
                    graph[caller] = callees
            self._call_graph = graph
        return self._call_graph
