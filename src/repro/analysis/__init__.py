"""Determinism & checkpoint-safety static analyzer (``repro analyze``).

An AST-level linter that encodes this repository's reproducibility
contract as enforceable rules — the static counterpart to the dynamic
determinism suite and the benchmark-regression gate:

=========  ==============================================================
DET001     randomness only via injected generators, never global RNG state
DET002     set / filesystem iteration feeding results must be sorted
DET003     no wall-clock reads in result paths (monotonic spans are fine)
PICKLE001  checkpointed state must stay picklable (no lambdas/handles/locks)
OBS001     hot-loop telemetry guarded by the branch-on-local-bool pattern
KERNEL001  loop/vectorized kernel pairs reachable from the config switch
SEED001    generator seeds descend from derive_seed or an injected value
SEED002    generators never escape into globals/class attrs/defaults
THREAD001  thread-shared mutable containers locked on every access path
THREAD002  ContextVar emitters resolved in-thread, not captured pre-start
SWEEP001   SWEEP_PARAMS axes match run_point signatures both ways
SWEEP002   scenario bundles sweep only axes their experiment declares
NOQA001    suppressions must name rules and carry a ``-- reason``
NOQA002    stale suppressions must be removed
PARSE001   unparsable files gate the build
=========  ==============================================================

The SEED/THREAD/SWEEP families are *project rules*: they run against a
whole-program model (symbol tables, import graph, call graph, flow
closures) built in a first pass and cached incrementally by content hash
— see :mod:`repro.analysis.project` and :mod:`repro.analysis.flow`.

Line-level escapes use ``# repro: noqa RULE123 -- reason``; repo-level
grandfathering lives in the committed ``.repro-analysis-baseline.json``
(regenerate with ``repro analyze --write-baseline``); per-function policy
exemptions live in :mod:`repro.analysis.config` as allowed contexts with
written justifications.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import DEFAULT_CONFIG, AllowedContext, AnalysisConfig, Scope
from repro.analysis.core import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
    select_rules,
)
from repro.analysis.project import ModuleSummary, ProjectCache, ProjectModel
from repro.analysis.report import render_human, render_json, write_json
from repro.analysis.walker import Report, analyze_file, analyze_paths, iter_python_files

# Importing the rules package registers every shipped rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineEntry",
    "AnalysisConfig",
    "AllowedContext",
    "Scope",
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "Rule",
    "ProjectRule",
    "Severity",
    "all_rules",
    "select_rules",
    "ModuleSummary",
    "ProjectCache",
    "ProjectModel",
    "Report",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "render_human",
    "render_json",
    "write_json",
]
