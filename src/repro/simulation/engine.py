"""Core discrete-event simulation engine.

The engine keeps a binary heap of :class:`Event` objects keyed by
``(time, priority, sequence)``.  Callbacks are plain callables taking the
engine as their single argument; processes (see :mod:`repro.simulation.process`)
are built on top of this primitive.

Design notes
------------
* Event times are floats (seconds).  Scheduling an event in the past raises
  :class:`SimulationError`; scheduling at the current time is allowed and the
  event runs after the currently-executing event finishes.
* Cancellation is lazy: :meth:`EventHandle.cancel` marks the event, and the
  main loop skips cancelled events when they are popped.  This keeps both
  scheduling and cancellation O(log n).
* Determinism: ties are broken by a monotonically-increasing sequence number,
  so two runs with the same seeds execute events in exactly the same order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "SimulationError",
    "StopSimulation",
    "Event",
    "EventHandle",
    "StopCondition",
    "SimulationEngine",
]

Callback = Callable[["SimulationEngine"], None]


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine (e.g. scheduling in the past)."""


class StopSimulation(Exception):
    """Raised from within a callback to stop the run immediately."""


@dataclass(order=True)
class Event:
    """An entry in the event heap.

    Ordering is by ``(time, priority, sequence)``; the callback itself does
    not participate in ordering.
    """

    time: float
    priority: int
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule` allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._event.time

    @property
    def label(self) -> str:
        """Optional human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; it is skipped when popped from the heap."""
        self._event.cancelled = True


StopCondition = Callable[["SimulationEngine"], bool]


class SimulationEngine:
    """A deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Base seed; every named RNG stream handed out by :meth:`rng` derives
        from it.
    start_time:
        Initial simulation clock value (seconds).

    Examples
    --------
    >>> engine = SimulationEngine(seed=1)
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda eng: fired.append(eng.now))
    >>> engine.run(until=10.0)
    10.0
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._seed_factory = SeedSequenceFactory(seed)
        self._rng_streams: Dict[tuple, np.random.Generator] = {}
        self._stop_conditions: List[StopCondition] = []
        self._stopped = False
        self._events_executed = 0
        self._events_scheduled = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Number of events scheduled so far (including cancelled ones)."""
        return self._events_scheduled

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events remaining in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------ RNG

    @property
    def seed(self) -> int:
        """The base seed of the engine."""
        return self._seed_factory.base_seed

    def rng(self, *labels: object) -> np.random.Generator:
        """Return the named RNG stream for ``labels`` (created on first use).

        Repeated calls with the same labels return the *same* generator
        object, so a component may call ``engine.rng("churn")`` wherever it
        needs randomness without threading a generator through its code.
        """
        key = tuple(str(label) for label in labels)
        if key not in self._rng_streams:
            self._rng_streams[key] = self._seed_factory.stream(*labels, allow_reissue=True)
        return self._rng_streams[key]

    # ------------------------------------------------------------------ scheduling

    def schedule_at(
        self, time: float, callback: Callback, *, priority: int = 0, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        time = float(time)
        if math.isnan(time):
            raise SimulationError("event time must not be NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        event = Event(
            time=time,
            priority=int(priority),
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._events_scheduled += 1
        return EventHandle(event)

    def schedule_in(
        self, delay: float, callback: Callback, *, priority: int = 0, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        delay = float(delay)
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    # alias kept for readability at call sites
    schedule = schedule_in

    # ------------------------------------------------------------------ stop conditions

    def add_stop_condition(self, condition: StopCondition) -> None:
        """Register a predicate checked after every event; True stops the run."""
        self._stop_conditions.append(condition)

    def request_stop(self) -> None:
        """Ask the engine to stop after the currently-executing event."""
        self._stopped = True

    # ------------------------------------------------------------------ main loop

    def step(self) -> bool:
        """Execute the next pending event.

        Returns
        -------
        bool
            True if an event was executed, False if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = event.time
            self._events_executed += 1
            event.callback(self)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute simulation time at which to stop (the clock is advanced
            to exactly ``until`` when the event heap drains earlier or the
            next event lies beyond it).  ``None`` runs until the heap drains.
        max_events:
            Optional hard cap on the number of events executed in this call.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until}, which is before the current time {self._now}"
                )
        executed_this_call = 0
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                next_event = self._peek_next()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if max_events is not None and executed_this_call >= max_events:
                    break
                if self.step():
                    executed_this_call += 1
                    if any(condition(self) for condition in self._stop_conditions):
                        self._stopped = True
        except StopSimulation:
            self._stopped = True
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def _peek_next(self) -> Optional[Event]:
        """Return the next non-cancelled event without executing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def peek_next_time(self) -> Optional[float]:
        """Return the firing time of the next pending event, or None when idle."""
        event = self._peek_next()
        return event.time if event is not None else None
