"""Discrete-event simulation substrate.

A minimal but complete discrete-event engine: an event heap ordered by
``(time, priority, sequence)``, process objects that schedule callbacks,
periodic timers, stop conditions and named RNG streams.  Every simulator in
the library (the chunk-level streaming simulator, the transaction-level
credit market simulator and the churn processes) is built on this engine.
"""

from repro.simulation.engine import (
    Event,
    EventHandle,
    SimulationEngine,
    SimulationError,
    StopCondition,
    StopSimulation,
)
from repro.simulation.process import PeriodicProcess, Process, ProcessState
from repro.simulation.monitors import IntervalSampler, TimeSeriesMonitor

__all__ = [
    "Event",
    "EventHandle",
    "SimulationEngine",
    "SimulationError",
    "StopCondition",
    "StopSimulation",
    "Process",
    "PeriodicProcess",
    "ProcessState",
    "IntervalSampler",
    "TimeSeriesMonitor",
]
