"""Measurement processes: periodic samplers and time-series monitors."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.simulation.process import PeriodicProcess
from repro.utils.records import SeriesRecord

__all__ = ["IntervalSampler", "TimeSeriesMonitor"]


class IntervalSampler(PeriodicProcess):
    """Periodically evaluate a probe function and record ``(time, value)`` samples.

    Parameters
    ----------
    interval:
        Sampling period in simulated seconds.
    probe:
        Zero-argument callable returning the value to record.
    label:
        Series label (also used as the process name).
    warmup:
        Samples taken before this simulation time are discarded.
    """

    def __init__(
        self,
        interval: float,
        probe: Callable[[], float],
        label: str = "sample",
        warmup: float = 0.0,
    ) -> None:
        super().__init__(interval=interval, name=f"sampler:{label}")
        self._probe = probe
        self.series = SeriesRecord(label=label)
        self.warmup = float(warmup)

    def tick(self) -> None:
        if self.now < self.warmup:
            return
        self.series.append(self.now, float(self._probe()))


class TimeSeriesMonitor(PeriodicProcess):
    """Record several named probes on a shared sampling clock.

    Examples
    --------
    >>> from repro.simulation import SimulationEngine
    >>> engine = SimulationEngine(seed=0)
    >>> monitor = TimeSeriesMonitor(interval=1.0)
    >>> monitor.add_probe("const", lambda: 3.0)
    >>> monitor.start(engine)
    >>> _ = engine.run(until=3.5)
    >>> monitor.series("const").y
    [3.0, 3.0, 3.0]
    """

    def __init__(self, interval: float, warmup: float = 0.0, name: str = "monitor") -> None:
        super().__init__(interval=interval, name=name)
        self._probes: Dict[str, Callable[[], float]] = {}
        self._series: Dict[str, SeriesRecord] = {}
        self.warmup = float(warmup)

    def add_probe(self, label: str, probe: Callable[[], float]) -> None:
        """Register a named probe; raises on duplicate labels."""
        if label in self._probes:
            raise ValueError(f"probe {label!r} is already registered")
        self._probes[label] = probe
        self._series[label] = SeriesRecord(label=label)

    def labels(self) -> List[str]:
        """Registered probe labels in insertion order."""
        return list(self._probes)

    def series(self, label: str) -> SeriesRecord:
        """Return the recorded series for ``label``."""
        return self._series[label]

    def all_series(self) -> Dict[str, SeriesRecord]:
        """Return all recorded series keyed by label."""
        return dict(self._series)

    def tick(self) -> None:
        if self.now < self.warmup:
            return
        for label, probe in self._probes.items():
            self._series[label].append(self.now, float(probe()))

    def snapshot(self) -> Dict[str, float]:
        """Evaluate every probe immediately (without recording) and return the values."""
        return {label: float(probe()) for label, probe in self._probes.items()}

    def last_values(self) -> Dict[str, Optional[float]]:
        """Return the most recently recorded value per probe (None if nothing recorded)."""
        return {
            label: (series.y[-1] if series.y else None)
            for label, series in self._series.items()
        }
