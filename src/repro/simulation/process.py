"""Process abstractions layered over the event engine.

A :class:`Process` owns a position in simulated time and can (re)schedule
its own activity; a :class:`PeriodicProcess` fires at a fixed or randomised
interval until stopped.  Peer agents, churn generators and samplers are all
processes.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.simulation.engine import EventHandle, SimulationEngine

__all__ = ["ProcessState", "Process", "PeriodicProcess"]


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`Process`."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


class Process:
    """Base class for simulation actors.

    Subclasses override :meth:`on_start` to schedule their first activity and
    may override :meth:`on_stop` for teardown.  The engine reference becomes
    available after :meth:`start` is called.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name or self.__class__.__name__
        self._engine: Optional[SimulationEngine] = None
        self._state = ProcessState.CREATED

    # ------------------------------------------------------------------ state

    @property
    def engine(self) -> SimulationEngine:
        """The engine this process is attached to (raises before :meth:`start`)."""
        if self._engine is None:
            raise RuntimeError(f"process {self.name!r} has not been started")
        return self._engine

    @property
    def state(self) -> ProcessState:
        """Current lifecycle state."""
        return self._state

    @property
    def is_running(self) -> bool:
        """True while the process is started and not stopped."""
        return self._state is ProcessState.RUNNING

    @property
    def now(self) -> float:
        """Current simulation time (convenience proxy to the engine clock)."""
        return self.engine.now

    # ------------------------------------------------------------------ lifecycle

    def start(self, engine: SimulationEngine) -> None:
        """Attach to ``engine`` and invoke :meth:`on_start`."""
        if self._state is ProcessState.RUNNING:
            raise RuntimeError(f"process {self.name!r} is already running")
        self._engine = engine
        self._state = ProcessState.RUNNING
        self.on_start()

    def stop(self) -> None:
        """Stop the process and invoke :meth:`on_stop` (idempotent)."""
        if self._state is not ProcessState.RUNNING:
            return
        self._state = ProcessState.STOPPED
        self.on_stop()

    def on_start(self) -> None:
        """Hook run when the process starts; subclasses schedule their first event here."""

    def on_stop(self) -> None:
        """Hook run when the process stops; subclasses cancel pending events here."""

    # ------------------------------------------------------------------ scheduling sugar

    def call_in(self, delay: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback()`` to run ``delay`` seconds from now.

        The callback is skipped automatically if the process has been stopped
        by the time the event fires.
        """

        def guarded(_engine: SimulationEngine) -> None:
            if self.is_running:
                callback()

        return self.engine.schedule_in(delay, guarded, label=label or self.name)

    def call_at(self, time: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback()`` to run at absolute time ``time`` (guarded like :meth:`call_in`)."""

        def guarded(_engine: SimulationEngine) -> None:
            if self.is_running:
                callback()

        return self.engine.schedule_at(time, guarded, label=label or self.name)


class PeriodicProcess(Process):
    """A process that invokes :meth:`tick` repeatedly.

    Parameters
    ----------
    interval:
        Nominal seconds between ticks.
    jitter:
        Optional callable returning an additive random offset for each
        interval (e.g. ``lambda: rng.uniform(-0.1, 0.1)``); the effective
        interval is clamped to be non-negative.
    name:
        Process name for diagnostics.
    """

    def __init__(
        self,
        interval: float,
        jitter: Optional[Callable[[], float]] = None,
        name: str = "",
    ) -> None:
        super().__init__(name=name)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._jitter = jitter
        self._pending: Optional[EventHandle] = None
        self.ticks = 0

    def on_start(self) -> None:
        self._schedule_next()

    def on_stop(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self) -> None:
        delay = self.interval
        if self._jitter is not None:
            delay = max(0.0, delay + float(self._jitter()))
        self._pending = self.call_in(delay, self._fire, label=f"{self.name}.tick")

    def _fire(self) -> None:
        self.ticks += 1
        self.tick()
        if self.is_running:
            self._schedule_next()

    def tick(self) -> None:
        """Periodic activity; subclasses override."""
        raise NotImplementedError
