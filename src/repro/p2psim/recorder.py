"""Wealth time-series recorder shared by both simulators."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import bankruptcy_fraction, gini_index
from repro.utils.records import SeriesRecord

__all__ = ["WealthRecorder"]


class WealthRecorder:
    """Records the evolution of the wealth distribution during a simulation.

    At every sample the recorder stores the Gini index, the bankruptcy
    fraction, the mean wealth and (optionally) a full sorted snapshot of the
    wealth vector — the raw material for Figs. 5–11 of the paper.

    Parameters
    ----------
    snapshot_times:
        Simulation times at which a full sorted wealth snapshot should be
        kept (e.g. the curve times of Figs. 5 and 6).  Samples falling at or
        after a requested time consume it (so snapshot times need not align
        exactly with the sampling grid).
    """

    def __init__(self, snapshot_times: Optional[Sequence[float]] = None) -> None:
        self.gini_series = SeriesRecord(label="gini")
        self.bankrupt_series = SeriesRecord(label="bankrupt_fraction")
        self.mean_wealth_series = SeriesRecord(label="mean_wealth")
        self.population_series = SeriesRecord(label="population")
        self.snapshots: Dict[float, np.ndarray] = {}
        self._pending_snapshots = sorted(float(t) for t in (snapshot_times or []))

    # ------------------------------------------------------------------ recording

    def record(self, time: float, wealths: Sequence[float]) -> None:
        """Record one sample of the wealth vector at simulation time ``time``.

        ``wealths`` is any array-like; ndarray input is consumed as-is
        (no Python-level ``list`` round-trip, no copy — the metrics below
        never mutate it, and snapshots sort into a fresh array).
        """
        arr = np.asarray(wealths, dtype=float)
        if arr.size == 0:
            return
        time = float(time)
        self.gini_series.append(time, gini_index(arr))
        self.bankrupt_series.append(time, bankruptcy_fraction(arr))
        self.mean_wealth_series.append(time, float(arr.mean()))
        self.population_series.append(time, float(arr.size))
        while self._pending_snapshots and time >= self._pending_snapshots[0]:
            requested = self._pending_snapshots.pop(0)
            self.snapshots[requested] = np.sort(arr)

    # ------------------------------------------------------------------ queries

    def final_gini(self) -> float:
        """The last recorded Gini index."""
        return self.gini_series.final_value()

    def stabilized_gini(self, tail_fraction: float = 0.25) -> float:
        """Mean Gini over the last ``tail_fraction`` of samples (convergence value)."""
        return self.gini_series.tail_mean(tail_fraction)

    def gini_at(self, time: float) -> float:
        """Gini of the latest sample at or before ``time`` (first sample if earlier)."""
        xs = self.gini_series.x
        ys = self.gini_series.y
        if not xs:
            raise ValueError("no samples recorded")
        index = int(np.searchsorted(xs, float(time), side="right")) - 1
        index = max(0, index)
        return float(ys[index])

    def snapshot_profiles(self) -> List[np.ndarray]:
        """Sorted wealth snapshots in chronological order of their requested times."""
        return [self.snapshots[time] for time in sorted(self.snapshots)]

    def has_converged(self, window: int = 5, tolerance: float = 0.05) -> bool:
        """Heuristic convergence check: the last ``window`` Gini samples span < ``tolerance``."""
        ys = self.gini_series.y
        if len(ys) < window:
            return False
        tail = ys[-window:]
        return (max(tail) - min(tail)) < tolerance
