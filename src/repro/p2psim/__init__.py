"""Integrated credit-incentivized P2P simulators.

Two simulators reproduce the paper's Sec. VI study at different levels of
detail:

* :class:`~repro.p2psim.market_sim.CreditMarketSimulator` — a
  transaction-level simulator of the credit circulation itself (one event =
  one credit changing hands), equivalent to simulating the Jackson-network
  CTMC of Table I directly.  It supports symmetric/asymmetric utilization,
  taxation, dynamic spending rates and peer churn, and is fast enough to
  sweep the parameter ranges of Figs. 3 and 7–11.
* :class:`~repro.p2psim.streaming_sim.StreamingMarketSimulator` — a
  chunk-level simulator of the UUSee-like mesh-pull streaming protocol
  with per-chunk credit settlement (availability windows, chunk
  scheduling, upload-slot admission, playback), used for Figs. 1, 5 and 6
  — and, with a churn configuration, Fig. 11 — where chunk-level
  behaviour (spending rates, convergence of the wealth profile) is the
  quantity of interest.

Both simulators advance in synchronous rounds over slot-indexed arrays,
offer bit-identical ``"vectorized"`` / ``"loop"`` kernels for their hot
round (selected by the shared
:class:`~repro.p2psim.options.KernelOptions`), partition into
checkpointed round-blocks (:mod:`repro.runner.partition`), and share the
:class:`~repro.p2psim.recorder.WealthRecorder` for Gini / snapshot time
series.  The round-block contract both satisfy is formalised as the
:class:`Simulator` protocol below.
"""

from typing import Any, Protocol, runtime_checkable

from repro.p2psim.config import MarketSimConfig, StreamingSimConfig, UtilizationMode
from repro.p2psim.options import KernelOptions
from repro.p2psim.recorder import WealthRecorder
from repro.p2psim.market_sim import CreditMarketSimulator, MarketSimResult
from repro.p2psim.streaming_sim import StreamingMarketSimulator, StreamingSimResult

__all__ = [
    "UtilizationMode",
    "KernelOptions",
    "MarketSimConfig",
    "StreamingSimConfig",
    "WealthRecorder",
    "CreditMarketSimulator",
    "MarketSimResult",
    "StreamingMarketSimulator",
    "StreamingSimResult",
    "Simulator",
]


@runtime_checkable
class Simulator(Protocol):
    """The round-block contract every round-based simulator satisfies.

    A simulator exposes its configuration, the number of synchronous
    rounds its horizon spans, an incremental ``advance_rounds`` and a
    terminal ``finalize``; ``run()`` is by definition
    ``advance_rounds(total_rounds())`` followed by ``finalize()``.

    Two requirements are part of the contract but outside what a Protocol
    can express:

    * **Picklable state** — the entire simulator object must pickle after
      any number of ``advance_rounds`` calls, because
      :meth:`repro.runner.partition.BlockContext.run_simulation`
      checkpoints it between round blocks (both narrow and default dtype
      layouts must round-trip).
    * **State-only determinism** — each round's random draws may depend
      only on the simulator's state before the round, so a
      pickle/unpickle boundary between rounds cannot change the
      trajectory.
    """

    config: Any

    def total_rounds(self) -> int:
        """Number of rounds the configured horizon spans."""
        ...

    def advance_rounds(self, rounds: int) -> None:
        """Advance the simulation by ``rounds`` rounds without finalising."""
        ...

    def finalize(self) -> Any:
        """Record the final sample and assemble the run's result object."""
        ...
