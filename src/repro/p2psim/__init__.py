"""Integrated credit-incentivized P2P simulators.

Two simulators reproduce the paper's Sec. VI study at different levels of
detail:

* :class:`~repro.p2psim.market_sim.CreditMarketSimulator` — a
  transaction-level simulator of the credit circulation itself (one event =
  one credit changing hands), equivalent to simulating the Jackson-network
  CTMC of Table I directly.  It supports symmetric/asymmetric utilization,
  taxation, dynamic spending rates and peer churn, and is fast enough to
  sweep the parameter ranges of Figs. 3 and 7–11.
* :class:`~repro.p2psim.streaming_sim.StreamingMarketSimulator` — a
  chunk-level simulator of the UUSee-like mesh-pull streaming protocol
  with per-chunk credit settlement (availability windows, chunk
  scheduling, upload-slot admission, playback), used for Figs. 1, 5 and 6
  — and, with a churn configuration, Fig. 11 — where chunk-level
  behaviour (spending rates, convergence of the wealth profile) is the
  quantity of interest.

Both simulators advance in synchronous rounds over slot-indexed arrays,
offer bit-identical ``"vectorized"`` / ``"loop"`` kernels for their hot
round (see each config's ``kernel`` field), partition into checkpointed
round-blocks (:mod:`repro.runner.partition`), and share the
:class:`~repro.p2psim.recorder.WealthRecorder` for Gini / snapshot time
series.
"""

from repro.p2psim.config import MarketSimConfig, StreamingSimConfig, UtilizationMode
from repro.p2psim.recorder import WealthRecorder
from repro.p2psim.market_sim import CreditMarketSimulator, MarketSimResult
from repro.p2psim.streaming_sim import StreamingMarketSimulator, StreamingSimResult

__all__ = [
    "UtilizationMode",
    "MarketSimConfig",
    "StreamingSimConfig",
    "WealthRecorder",
    "CreditMarketSimulator",
    "MarketSimResult",
    "StreamingMarketSimulator",
    "StreamingSimResult",
]
