"""Shared round-based churn and taxation for the slot-array simulators.

Both :class:`~repro.p2psim.market_sim.CreditMarketSimulator` and
:class:`~repro.p2psim.streaming_sim.StreamingMarketSimulator` keep peer
state in slot-indexed numpy arrays behind an ``_alive`` mask, drive
membership through a :class:`~repro.overlay.membership.MembershipTracker`
and draw from a single ``_rng`` stream.  The per-round churn and
income-taxation steps are therefore identical up to the simulator-specific
admit/refresh hooks — this module holds the one copy both simulators call,
so a fix to either step can never silently diverge the two fidelity
levels.

The expected simulator attributes are ``config`` (with ``churn`` and
``tax_policy``), ``_rng``, ``_alive``, ``_balance``, ``_peer_of``,
``_tracker``, ``topology``, ``_tax_pool`` and the ``joins``/``leaves``
counters.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.taxation import NoTax, ThresholdIncomeTax

__all__ = ["apply_round_churn", "apply_income_taxation"]


def apply_round_churn(
    sim,
    dt: float,
    admit: Callable[[int], object],
    refresh_neighbor: Callable[[int], None],
) -> None:
    """Apply one round of Poisson arrivals and exponential departures.

    Each alive peer departs within ``dt`` with probability
    ``1 − exp(−dt/lifespan)`` (the discretised exponential lifetime — the
    distribution is memoryless, so peers present at start-up churn like
    everyone else) and a Poisson number of peers arrives, wired into the
    overlay by the tracker.  ``admit`` creates the simulator state of one
    joining peer; ``refresh_neighbor`` re-derives one peer's cached
    neighbour row after topology surgery.
    """
    churn = sim.config.churn
    if churn is None:
        return
    rng = sim._rng
    departure_probability = 1.0 - np.exp(-dt / churn.mean_lifespan)
    alive_slots = np.flatnonzero(sim._alive)
    departing = alive_slots[rng.random(alive_slots.size) < departure_probability]
    for slot in departing:
        if sim.topology.num_peers <= 2:
            break
        peer_id = sim._peer_of[int(slot)]
        former_neighbors = sim._tracker.leave(peer_id)
        sim._evict(peer_id)
        sim.leaves += 1
        for neighbor in former_neighbors:
            refresh_neighbor(neighbor)
    arrivals = rng.poisson(churn.arrival_rate * dt)
    for _ in range(int(arrivals)):
        peer_id = sim._tracker.join()
        admit(peer_id)
        sim.joins += 1


def apply_income_taxation(sim, income: np.ndarray, now: float) -> None:
    """Tax one round's per-slot income under the simulator's tax policy.

    :class:`~repro.core.taxation.ThresholdIncomeTax` — the paper's rule —
    runs as a vectorised fast path over the alive slots (collecting into
    ``sim._tax_pool`` and rebating whole units once the pool covers a
    round of rebates).  Custom policies fall back to a per-peer pass
    through a minimal ledger facade.
    """
    policy = sim.config.tax_policy
    if isinstance(policy, NoTax):
        return
    alive_slots = np.flatnonzero(sim._alive)
    if alive_slots.size == 0:
        return
    if isinstance(policy, ThresholdIncomeTax):
        balances = sim._balance[alive_slots]
        incomes = income[alive_slots]
        taxable = (balances > policy.threshold) & (incomes > 0)
        taxes = np.where(taxable, np.minimum(incomes * policy.rate, balances), 0.0)
        sim._balance[alive_slots] -= taxes
        collected = float(taxes.sum())
        sim._tax_pool += collected
        policy.total_collected += collected
        rebate_cost = policy.rebate_unit * alive_slots.size
        while rebate_cost > 0 and sim._tax_pool >= rebate_cost:
            sim._balance[alive_slots] += policy.rebate_unit
            sim._tax_pool -= rebate_cost
            policy.total_rebated += rebate_cost
            policy.rebate_rounds += 1
        return
    # Generic (slower) path for custom policies: apply per peer through a
    # minimal ledger facade.
    from repro.core.credits import CreditLedger

    ledger = CreditLedger(record_transactions=False)
    for slot in alive_slots:
        ledger.open_wallet(int(slot), float(sim._balance[slot]))
    population = [int(slot) for slot in alive_slots]
    for slot in alive_slots:
        if income[slot] > 0:
            policy.on_income(ledger, int(slot), float(income[slot]), now, population)
    for slot in alive_slots:
        sim._balance[slot] = ledger.wallet(int(slot)).balance
    sim._tax_pool += ledger.system_pool
