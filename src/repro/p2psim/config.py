"""Configuration objects for the integrated P2P credit simulators."""

from __future__ import annotations

import dataclasses
import enum
import sys
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.pricing import PricingScheme, UniformPricing
from repro.core.spending import FixedSpendingPolicy, SpendingPolicy
from repro.core.taxation import NoTax, TaxPolicy
from repro.overlay.churn import ChurnConfig
from repro.p2psim.options import KernelOptions
from repro.utils.validation import (
    check_exact_float_range,
    check_index_capacity,
    check_positive,
)

__all__ = ["UtilizationMode", "MarketSimConfig", "StreamingSimConfig"]


def _deprecation_stacklevel() -> int:
    """Stacklevel pointing a config deprecation warning at the caller.

    The warning fires inside ``_resolve_kernel_options``, reached through
    the dataclass-generated ``__init__`` (a ``<string>`` frame) and — when
    the config is rebuilt via :func:`dataclasses.replace` — an extra frame
    inside :mod:`dataclasses` itself.  A fixed stacklevel therefore points
    at ``dataclasses.py`` for replace-built configs; instead, walk the
    stack past every internal frame (this module, the generated
    ``__init__``, the stdlib ``dataclasses`` machinery) and return the
    level of the first caller frame.
    """
    internal = {__file__, "<string>", dataclasses.__file__}
    level = 1  # the _resolve_kernel_options frame (= stacklevel 1 for warn)
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename in internal:
        level += 1
        frame = frame.f_back
    return level


def _resolve_kernel_options(config: "MarketSimConfig | StreamingSimConfig") -> None:
    """Merge a config's deprecated ``kernel`` field into its ``options``.

    Shared by both simulator configs: an explicitly passed legacy
    ``kernel=...`` emits a :class:`DeprecationWarning` and overrides
    ``options.kernel`` (the legacy field wins, matching what the caller
    asked for); the field keeps the passed value, while configs built
    through ``options`` leave it ``None`` — read ``options.kernel`` for
    the effective setting.  Narrow-dtype configurations are validated
    against the int32/float32 capacity guards here, where the population
    size is known.
    """
    if not isinstance(config.options, KernelOptions):
        raise TypeError("options must be a KernelOptions instance")
    legacy = config.kernel
    if legacy is not None:
        warnings.warn(
            f"{type(config).__name__}.kernel is deprecated; pass "
            "options=KernelOptions(kernel=...) instead",
            DeprecationWarning,
            stacklevel=_deprecation_stacklevel(),
        )
        if legacy not in ("vectorized", "loop"):
            raise ValueError("kernel must be 'vectorized' or 'loop'")
        config.options = replace(config.options, kernel=legacy)
    if config.options.is_narrow:
        check_index_capacity(config.num_peers, config.options.index_dtype, "num_peers")
        check_exact_float_range(
            config.num_peers * config.initial_credits,
            config.options.float_dtype,
            "total initial credits (num_peers * initial_credits)",
        )


class UtilizationMode(enum.Enum):
    """How peer earning/spending rates are configured (Sec. VI of the paper).

    ``SYMMETRIC`` — spending rates are tuned so every peer's utilization
    ``λ_i / μ_i`` is identical (the ū = {1, ..., 1} case).
    ``ASYMMETRIC`` — every peer has the same maximum spending rate while
    earning rates follow from the (heterogeneous, scale-free) topology, so
    utilizations differ across peers.
    """

    SYMMETRIC = "symmetric"
    ASYMMETRIC = "asymmetric"


@dataclass
class MarketSimConfig:
    """Parameters of the transaction-level credit-market simulator.

    Attributes
    ----------
    num_peers:
        Initial population ``N`` (the paper's default simulations use 1000;
        benchmarks use smaller populations for wall-clock reasons).
    initial_credits:
        Initial wealth ``c`` endowed to every peer (and to every joining
        peer under churn).
    horizon:
        Simulated seconds.
    step:
        Length of one simulation round in seconds; credit transfers within a
        round are drawn from the corresponding Poisson counts.
    base_spending_rate:
        Baseline maximum spending rate ``μ`` in credits per second.
    utilization:
        Symmetric or asymmetric utilization (see :class:`UtilizationMode`).
    spending_rate_noise:
        Multiplicative lognormal noise applied to each peer's configured
        spending rate (coefficient of variation).  Models the fact that the
        rates *realised* by a protocol deviate from the configured ones; a
        perfectly symmetric configuration with a few percent of realised
        noise is what the paper's "symmetric utilization" simulations
        correspond to in practice.  Default 0 (exact configuration).
    topology_shape / topology_mean_degree:
        Scale-free overlay parameters (the paper uses shape 2.5, mean 20).
    pricing:
        Pricing scheme; prices shape both spending rates and routing
        weights (credits flow toward expensive, attractive sellers).
    spending_policy:
        Fixed or dynamic (wealth-proportional) spending policy.
    tax_policy:
        Taxation policy applied to peer income.
    churn:
        Optional churn configuration; ``None`` simulates a static overlay
        (closed network).
    sample_interval:
        Seconds between Gini/snapshot samples.
    warmup:
        Samples before this time are recorded but flagged as warm-up by the
        recorder's helpers.
    options:
        Shared kernel/dtype/telemetry switches (see
        :class:`~repro.p2psim.options.KernelOptions`).  ``options.kernel``
        selects the spending-round implementation: ``"vectorized"``
        (default) routes every credit of a round through one batched
        segmented-CSR kernel; ``"loop"`` walks spenders in a per-peer
        Python loop.  Both kernels consume the same random draws and
        produce bit-identical results — the loop kernel exists as the
        throughput baseline the simulator benchmark
        (``benchmarks/bench_simkernel.py``) compares against.
    kernel:
        Deprecated alias of ``options.kernel`` (one release of
        backwards compatibility): passing it emits a
        ``DeprecationWarning`` and overrides ``options.kernel``; after
        construction it mirrors the effective value.
    seed:
        Base RNG seed.
    """

    num_peers: int = 200
    initial_credits: float = 100.0
    horizon: float = 4000.0
    step: float = 1.0
    base_spending_rate: float = 1.0
    utilization: UtilizationMode = UtilizationMode.SYMMETRIC
    spending_rate_noise: float = 0.0
    topology_shape: float = 2.5
    topology_mean_degree: float = 20.0
    pricing: PricingScheme = field(default_factory=UniformPricing)
    spending_policy: SpendingPolicy = field(default_factory=FixedSpendingPolicy)
    tax_policy: TaxPolicy = field(default_factory=NoTax)
    churn: Optional[ChurnConfig] = None
    sample_interval: float = 50.0
    warmup: float = 0.0
    options: KernelOptions = field(default_factory=KernelOptions)
    kernel: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_peers < 2:
            raise ValueError("num_peers must be at least 2")
        check_positive(self.initial_credits, "initial_credits")
        check_positive(self.horizon, "horizon")
        check_positive(self.step, "step")
        check_positive(self.base_spending_rate, "base_spending_rate")
        if self.spending_rate_noise < 0:
            raise ValueError("spending_rate_noise must be non-negative")
        check_positive(self.sample_interval, "sample_interval")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.topology_mean_degree >= self.num_peers:
            raise ValueError("topology_mean_degree must be smaller than num_peers")
        _resolve_kernel_options(self)


@dataclass
class StreamingSimConfig:
    """Parameters of the chunk-level streaming-market simulator.

    Attributes
    ----------
    num_peers:
        Population size (the paper's Fig. 1 uses 500).
    initial_credits:
        Initial wealth ``c`` per peer.
    horizon:
        Simulated seconds.
    chunk_rate:
        Source streaming rate in chunks per second.
    scheduling_interval:
        Seconds between a peer's chunk-scheduling rounds.
    max_requests_per_round:
        Concurrent chunk requests per scheduling round.
    startup_chunks:
        Contiguous chunks required before playback starts.
    playback_window:
        Number of chunk positions between the playback point and the live
        edge a peer tries to fill.
    transfer_latency:
        Seconds between paying for a chunk and receiving it.
    upload_capacity:
        Maximum chunks a peer may upload (sell) per scheduling interval —
        models the finite upload bandwidth of the UUSee-like protocol and
        prevents high-degree peers from serving unboundedly many buyers.
    supplier_choice:
        ``"least-loaded"`` (default: prefer the supplier that has uploaded
        the least so far, the load balancing of deployed mesh-pull systems),
        ``"availability"`` (pick uniformly among neighbours that hold the
        chunk) or ``"cheapest"`` (price-shopping ablation).
    seed_fanout:
        Number of random peers that receive each freshly emitted chunk for
        free from the source (the origin server's push degree).
    pricing:
        Chunk pricing scheme (Fig. 1 case A uses Poisson prices, case B
        uniform pricing at 1 credit).
    spending_policy / tax_policy:
        As in :class:`MarketSimConfig`.
    topology_shape / topology_mean_degree:
        Scale-free overlay parameters.
    churn:
        Optional churn configuration; ``None`` streams on a static overlay.
        Joining peers receive ``initial_credits`` and tune in near the live
        edge; departing peers take their credits out of the economy, as in
        the market simulator.
    sample_interval:
        Seconds between recorder samples.
    options:
        Shared kernel/dtype/telemetry switches (see
        :class:`~repro.p2psim.options.KernelOptions`).  ``options.kernel``
        selects the scheduling-round implementation: ``"vectorized"``
        (default) stacks every alive peer's chunk-request routing —
        candidate scoring, supplier choice, upload-slot admission — into
        array operations over the whole swarm; ``"loop"`` walks peers and
        window positions in a per-peer Python loop.  Both kernels consume
        the same random draws and produce bit-identical results — the loop
        kernel exists as the throughput baseline
        ``benchmarks/bench_streamkernel.py`` compares against.
    kernel:
        Deprecated alias of ``options.kernel`` (one release of backwards
        compatibility), as in :class:`MarketSimConfig`.
    seed:
        Base RNG seed.
    """

    num_peers: int = 100
    initial_credits: float = 100.0
    horizon: float = 600.0
    chunk_rate: float = 1.0
    scheduling_interval: float = 1.0
    max_requests_per_round: int = 4
    startup_chunks: int = 5
    playback_window: int = 30
    transfer_latency: float = 0.2
    upload_capacity: int = 3
    supplier_choice: str = "least-loaded"
    seed_fanout: int = 4
    pricing: PricingScheme = field(default_factory=UniformPricing)
    spending_policy: SpendingPolicy = field(default_factory=FixedSpendingPolicy)
    tax_policy: TaxPolicy = field(default_factory=NoTax)
    topology_shape: float = 2.5
    topology_mean_degree: float = 20.0
    churn: Optional[ChurnConfig] = None
    sample_interval: float = 30.0
    options: KernelOptions = field(default_factory=KernelOptions)
    kernel: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_peers < 2:
            raise ValueError("num_peers must be at least 2")
        check_positive(self.initial_credits, "initial_credits")
        check_positive(self.horizon, "horizon")
        check_positive(self.chunk_rate, "chunk_rate")
        check_positive(self.scheduling_interval, "scheduling_interval")
        check_positive(self.sample_interval, "sample_interval")
        if self.max_requests_per_round < 1:
            raise ValueError("max_requests_per_round must be at least 1")
        if self.upload_capacity < 1:
            raise ValueError("upload_capacity must be at least 1")
        if self.supplier_choice not in ("availability", "least-loaded", "cheapest"):
            raise ValueError(
                "supplier_choice must be 'availability', 'least-loaded' or 'cheapest'"
            )
        if self.seed_fanout < 1:
            raise ValueError("seed_fanout must be at least 1")
        if self.playback_window < 1:
            raise ValueError("playback_window must be at least 1")
        if self.startup_chunks < 0:
            raise ValueError("startup_chunks must be non-negative")
        if self.transfer_latency < 0:
            raise ValueError("transfer_latency must be non-negative")
        if self.topology_mean_degree >= self.num_peers:
            raise ValueError("topology_mean_degree must be smaller than num_peers")
        _resolve_kernel_options(self)
