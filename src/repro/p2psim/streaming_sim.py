"""Batched chunk-level simulator of a credit-incentivized streaming swarm.

This is the detailed counterpart of
:class:`~repro.p2psim.market_sim.CreditMarketSimulator`: instead of moving
credits directly, peers run a mesh-pull streaming protocol (UUSee-like, as
in Sec. VI of the paper) and credits move only when a chunk is actually
bought from a neighbour:

* the source emits the live chunk stream and seeds every new chunk to a few
  random peers;
* once per ``scheduling_interval`` every peer looks at the availability of
  the chunks between its playback point and the live edge, requests the
  missing ones closest to their playback deadline from a supplier chosen by
  the configured policy, and pays the supplier's posted price from its
  wallet (skipping chunks it cannot afford — the budget constraint that
  couples wealth to download performance);
* suppliers admit at most ``upload_capacity`` uploads per interval;
* purchased chunks arrive after a transfer latency and playback advances at
  the stream rate, recording continuity.

The simulator produces per-peer credit spending rates (Fig. 1), wealth
profiles over time (Figs. 5–6) and — with a churn configuration — the
dynamic-overlay Gini series of Fig. 11, at higher fidelity than the market
simulator.

Execution model
---------------
Earlier revisions drove every peer through its own discrete-event process
(one heap event per peer per scheduling round, one per chunk delivery),
which made the per-peer Python loop the dominant cost of every paper-scale
streaming scenario.  The simulator now advances in **synchronous ticks** of
one scheduling interval: peer state lives in slot-indexed numpy arrays
behind an alive mask, chunk availability is a sliding boolean window over
the live stream, and the whole scheduling round — candidate scoring,
supplier choice, upload-slot admission — executes as one batched kernel
over all alive peers.

Two kernels implement the identical round semantics and consume the
identical random draws (one tie-break uniform per (peer, window-position)
cell, drawn tick-wise before the kernel runs):

* ``kernel="vectorized"`` (default) stacks the round into array
  operations — the measured hot path;
* ``kernel="loop"`` walks peers and window positions in a per-peer Python
  loop — the benchmark baseline (``benchmarks/bench_streamkernel.py``).

Results are bit-identical between the kernels by construction.  Because
each tick depends only on the simulator's (fully picklable) state, runs
also partition into checkpointed round-blocks
(:mod:`repro.runner.partition`) that are bit-identical to the monolithic
run.

Churn (Sec. VI-E) follows the market simulator's round-based model: per
tick, each alive peer departs with probability ``1 − exp(−dt/lifespan)``
and a Poisson number of peers arrives, each endowed with the initial
credits and wired into the overlay by the membership tracker.  Topology
surgery only touches the affected peers' compacted neighbour rows, so it
commutes with the batched tick.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_emitter
from repro.overlay.generators import scale_free_topology
from repro.overlay.membership import MembershipTracker
from repro.overlay.topology import OverlayTopology
from repro.p2psim.config import StreamingSimConfig
from repro.p2psim.recorder import WealthRecorder
from repro.p2psim.slots import apply_income_taxation, apply_round_churn
from repro.utils.rng import make_rng
from repro.utils.validation import check_index_capacity

__all__ = ["StreamingSimResult", "StreamingMarketSimulator"]

#: Tolerance used in budget and tie comparisons, matching the historical
#: wallet/scheduler epsilon.  Both kernels must use the same constant.
_EPS = 1e-12


#: Upper bound on the edge mass a single segmented-expansion block of the
#: vectorized scheduling kernel materialises at once.  Supplier choice is
#: independent per candidate cell, so processing cells in bounded blocks is
#: exact while capping the kernel's transient memory at a few hundred MB
#: even for 10^5–10^6-peer swarms.
_EDGE_BLOCK = 1 << 22


def _choose_suppliers_for_cells(
    have: np.ndarray,
    price_win: np.ndarray,
    uploads_total: np.ndarray,
    row_start: np.ndarray,
    edge_dst: np.ndarray,
    cand_rows: np.ndarray,
    cand_cols: np.ndarray,
    cand_u: np.ndarray,
    seg_len: np.ndarray,
    choice: str,
    sel: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve the supplier choice for the candidate cells listed in ``sel``.

    The segmented-expansion core of the vectorized scheduling kernel,
    factored out as a pure function of read-only inputs so the spatial
    shard executor can run disjoint cell subsets concurrently (each cell's
    supplier depends only on its own edge segment, so any partition of the
    cells — like any ``_EDGE_BLOCK`` blocking — produces bit-identical
    results).  Returns ``(chosen, resolved)`` aligned with ``sel``.
    """
    n = sel.size
    chosen = np.zeros(n, dtype=np.int64)
    resolved = np.zeros(n, dtype=bool)
    if n == 0:
        return chosen, resolved
    sub_rows = cand_rows[sel]
    sub_cols = cand_cols[sel]
    sub_u = cand_u[sel]
    sub_len = seg_len[sel]
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sub_len, out=starts[1:])
    # Cells are processed in blocks of at most ~_EDGE_BLOCK edges: exact
    # results, bounded transient memory (a full expansion at 10^6 peers
    # would otherwise materialise hundreds of millions of entries).
    lo_cell = 0
    while lo_cell < n:
        hi_cell = int(
            np.searchsorted(starts, starts[lo_cell] + _EDGE_BLOCK, side="right")
        ) - 1
        hi_cell = min(max(hi_cell, lo_cell + 1), n)
        block = slice(lo_cell, hi_cell)
        n_cells = hi_cell - lo_cell
        seg = sub_len[block]
        bstarts = starts[lo_cell : hi_cell + 1] - starts[lo_cell]
        total = int(bstarts[-1])
        cell_of = np.repeat(np.arange(n_cells), seg)
        edge_pos = (
            np.repeat(row_start[sub_rows[block]], seg)
            + np.arange(total)
            - np.repeat(bstarts[:-1], seg)
        )
        dst = edge_dst[edge_pos]
        cell_col = sub_cols[block][cell_of]
        eligible = have[dst, cell_col]

        if choice == "least-loaded":
            score = np.where(eligible, uploads_total[dst], np.inf)
            best = np.minimum.reduceat(score, bstarts[:-1])
            tie = eligible & (score <= np.repeat(best, seg) + _EPS)
        elif choice == "cheapest":
            score = np.where(eligible, price_win[dst, cell_col], np.inf)
            best = np.minimum.reduceat(score, bstarts[:-1])
            tie = eligible & (score <= np.repeat(best, seg) + _EPS)
        else:  # availability
            tie = eligible
        tie_int = tie.astype(np.int64)
        tie_count = np.add.reduceat(tie_int, bstarts[:-1])
        pick = np.floor(sub_u[block] * tie_count).astype(np.int64)
        pick = np.minimum(pick, tie_count - 1)  # u*cnt can round up to cnt
        # Inclusive tie rank within each cell's segment: the chosen
        # supplier is the (pick+1)-th tie in neighbour order — exactly
        # the loop kernel's ``ties[pick]``.
        cum = np.cumsum(tie_int)
        rank = cum - np.repeat(cum[bstarts[:-1]] - tie_int[bstarts[:-1]], seg)
        match = tie & (rank == np.repeat(pick + 1, seg))
        chosen[lo_cell + cell_of[match]] = dst[match]
        resolved[lo_cell + cell_of[match]] = True
        lo_cell = hi_cell
    return chosen, resolved


@dataclass
class _StreamPack:
    """Alive peers' neighbour rows in CSR (segmented) layout — no padding.

    Row ``r`` describes the peer in slot ``alive_slots[r]``:
    ``edge_dst[row_start[r]:row_start[r+1]]`` are its neighbour slot
    indices in ascending slot order.  Both kernels (and the stateful
    settlement path) read neighbours from these edge segments; earlier
    revisions also stacked a padded ``count × max_degree`` matrix, which
    priced every peer at the maximum hub degree — prohibitive on a
    scale-free overlay at large N, where a single 10^3-degree hub would
    pad a million rows.

    The pack is a pure cache derived from the per-peer neighbour rows; any
    membership change drops it and the next tick rebuilds it.
    """

    alive_slots: np.ndarray
    degrees: np.ndarray
    edge_dst: np.ndarray
    row_start: np.ndarray
    row_of: Dict[int, int]

    def neighbors_of_row(self, row: int) -> np.ndarray:
        """The neighbour-slot segment of pack row ``row`` (a view)."""
        return self.edge_dst[self.row_start[row] : self.row_start[row + 1]]


@dataclass
class StreamingSimResult:
    """Output of one :class:`StreamingMarketSimulator` run.

    Attributes
    ----------
    config:
        The configuration that produced the run.
    recorder:
        Wealth time series (Gini, bankruptcy fraction, snapshots).
    final_wealths:
        Final wallet balances of the peers alive at the end, in peer-id
        order.
    spending_rates:
        Credit spending rate of every surviving peer measured over the
        second half of the run (credits per second) — the quantity plotted
        in Fig. 1.
    earning_rates:
        Credit earning rate over the same window.
    continuity:
        Playback continuity (fraction of due chunks held at their deadline)
        per surviving peer.
    chunks_delivered:
        Total chunks purchased and delivered across the swarm.
    joins, leaves:
        Churn event counts (zero for static overlays).
    """

    config: StreamingSimConfig
    recorder: WealthRecorder
    final_wealths: np.ndarray
    spending_rates: np.ndarray
    earning_rates: np.ndarray
    continuity: np.ndarray
    chunks_delivered: int
    joins: int = 0
    leaves: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def final_gini(self) -> float:
        """Gini index of wealth at the end of the run."""
        return self.recorder.final_gini()

    @property
    def stabilized_gini(self) -> float:
        """Mean Gini over the last quarter of samples."""
        return self.recorder.stabilized_gini()

    @property
    def spending_rate_gini(self) -> float:
        """Gini index of the per-peer credit spending rates (the Fig. 1 statistic)."""
        from repro.core.metrics import gini_index

        return gini_index(self.spending_rates)


class StreamingMarketSimulator:
    """Builds and runs a credit-incentivized streaming swarm simulation.

    Parameters
    ----------
    config:
        Simulation parameters (see :class:`~repro.p2psim.config.StreamingSimConfig`).
    topology:
        Optional pre-built overlay; a scale-free overlay with the configured
        shape/mean degree is generated when omitted.
    snapshot_times:
        Simulation times at which sorted wealth snapshots are kept.
    seed_fanout:
        Override of ``config.seed_fanout`` (number of random peers that
        receive each freshly emitted chunk for free).
    """

    def __init__(
        self,
        config: StreamingSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
        seed_fanout: Optional[int] = None,
    ) -> None:
        self.config = config
        self._rng = make_rng(config.seed, "streaming-sim")
        self.topology = (
            topology
            if topology is not None
            else scale_free_topology(
                config.num_peers,
                shape=config.topology_shape,
                mean_degree=config.topology_mean_degree,
                seed=config.seed,
            )
        )
        if self.topology.num_peers < 2:
            raise ValueError("the overlay must contain at least 2 peers")
        self.recorder = WealthRecorder(snapshot_times=snapshot_times)
        self._tracker = MembershipTracker(
            self.topology,
            target_degree=max(1, int(round(config.topology_mean_degree))),
            seed=config.seed + 1,
        )
        self.seed_fanout = max(
            1, int(seed_fanout if seed_fanout is not None else config.seed_fanout)
        )

        # --- sliding availability window over the live stream ----------------------
        window = config.playback_window
        self._win_width = max(4 * window, window + 2, config.startup_chunks + 2)
        self._win_base = 0
        self._emitted = 0

        # --- spatial sharding ------------------------------------------------------
        # Execution-level knobs: the ambient overrides installed by the
        # runner (if any) win over the config's options, and a plan is only
        # built when actually sharding.  Lazy import, mirroring run_config.
        from repro.runner.shard import plan_shards, resolve_shard_settings

        options = config.options
        shards, partitioner, shard_backend = resolve_shard_settings(options)
        self._shard_backend = shard_backend
        self._shard_plan = (
            plan_shards(self.topology, shards, partitioner) if shards > 1 else None
        )

        # --- slot-based peer state -------------------------------------------------
        float_dtype = options.float_dtype
        capacity = max(16, 2 * self.topology.num_peers)
        if options.is_narrow:
            check_index_capacity(capacity, options.index_dtype, "slot capacity")
        self._capacity = capacity
        self._alive = np.zeros(capacity, dtype=bool)
        self._balance = np.zeros(capacity, dtype=float_dtype)
        self._spent_win = np.zeros(capacity, dtype=float_dtype)
        self._earned_win = np.zeros(capacity, dtype=float_dtype)
        self._uploads_total = np.zeros(capacity, dtype=float_dtype)
        self._played = np.zeros(capacity, dtype=np.int64)
        self._missed = np.zeros(capacity, dtype=np.int64)
        self._pb_next = np.zeros(capacity, dtype=np.int64)
        self._pb_started = np.zeros(capacity, dtype=bool)
        self._pb_backlog = np.zeros(capacity, dtype=float_dtype)
        self._have = np.zeros((capacity, self._win_width), dtype=bool)
        self._price_win = np.zeros((capacity, self._win_width), dtype=float_dtype)
        self._slot_of: Dict[int, int] = {}
        self._peer_of: Dict[int, int] = {}
        self._free_slots: List[int] = list(range(capacity - 1, -1, -1))
        self._neighbors: Dict[int, np.ndarray] = {}
        self._shard_of_slot: Optional[np.ndarray] = (
            np.zeros(capacity, dtype=np.int16) if self._shard_plan is not None else None
        )
        self._pack: Optional[_StreamPack] = None

        # Purchased chunks in flight: ``_in_flight[i]`` is applied at the
        # end of the i-th tick from now; each batch is a list of
        # ``(buyer_slots, chunk_indices)`` array pairs.  The transfer
        # latency rounds up to whole ticks (at least one: a chunk bought
        # this round is available to playback and neighbours from the next
        # round on).
        interval = config.scheduling_interval
        delay_ticks = max(1, int(np.ceil(config.transfer_latency / interval - 1e-9)))
        self._delay_ticks = delay_ticks
        self._in_flight: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(delay_ticks)
        ]

        self._tax_pool = 0.0
        self._minted = 0.0
        self._destroyed = 0.0
        self.chunks_delivered = 0
        self.joins = 0
        self.leaves = 0
        self._tick = 0
        self._next_sample = 0.0
        self._measure_start = config.horizon / 2.0

        # Bulk admission: create every peer's state first, then derive each
        # compacted neighbour row exactly once — the per-admission refresh
        # cascade is O(sum degree^2) Python work, quadratic in the mean
        # degree, and dominated start-up well below the million-peer scale.
        # A row only depends on which of its own neighbours are admitted,
        # so refresh-once-at-the-end yields bit-identical rows.
        initial_peers = self.topology.peers()
        for peer_id in initial_peers:
            self._admit(peer_id, refresh=False)
        for peer_id in initial_peers:
            self._refresh_neighbors(peer_id)
        # Build the stream pack eagerly: construction cost, not tick cost.
        self._stream_pack()
        emitter = get_emitter()
        if self._shard_plan is not None and emitter.enabled and options.telemetry:
            emitter.gauge("streaming.shard.count", float(self._shard_plan.shards))
            emitter.gauge("streaming.shard.plan_imbalance", self._shard_plan.imbalance)
            if self._shard_plan.cut_fraction is not None:
                emitter.gauge(
                    "streaming.shard.cut_fraction", self._shard_plan.cut_fraction
                )

    # ------------------------------------------------------------------ clock helpers

    @property
    def now(self) -> float:
        """Current simulation time (tick counter × scheduling interval)."""
        return self._tick * self.config.scheduling_interval

    def _upload_epoch(self) -> int:
        """The upload-slot accounting epoch: the integer tick counter.

        Deriving the epoch from the float clock (``floor(now / interval)``)
        mis-buckets ticks once accumulated additions drift — e.g. sixty
        additions of 0.1 give 5.999999999999998, whose quotient floors to
        59 instead of 60 — silently granting a seller a double capacity
        window.  The integer counter cannot drift; the per-tick admission
        counters (see ``_upload_slot_available``) are scoped to it.
        """
        return self._tick

    # ------------------------------------------------------------------ peer lifecycle

    def _grow_capacity(self) -> None:
        new_capacity = self._capacity * 2
        pad = new_capacity - self._capacity

        def extend(array: np.ndarray) -> np.ndarray:
            return np.concatenate([array, np.zeros(pad, dtype=array.dtype)])

        self._alive = extend(self._alive)
        self._balance = extend(self._balance)
        self._spent_win = extend(self._spent_win)
        self._earned_win = extend(self._earned_win)
        self._uploads_total = extend(self._uploads_total)
        self._played = extend(self._played)
        self._missed = extend(self._missed)
        self._pb_next = extend(self._pb_next)
        self._pb_started = extend(self._pb_started)
        self._pb_backlog = extend(self._pb_backlog)
        self._have = np.vstack(
            [self._have, np.zeros((pad, self._win_width), dtype=bool)]
        )
        self._price_win = np.vstack(
            [self._price_win, np.zeros((pad, self._win_width), dtype=self._price_win.dtype)]
        )
        if self._shard_of_slot is not None:
            self._shard_of_slot = extend(self._shard_of_slot)
        self._free_slots = (
            list(range(new_capacity - 1, self._capacity - 1, -1)) + self._free_slots
        )
        self._capacity = new_capacity

    def _admit(self, peer_id: int, refresh: bool = True) -> int:
        """Create simulator state for ``peer_id`` (already present in the topology).

        ``refresh=False`` skips the neighbour-row derivation (and the
        re-derivation of already-admitted neighbours); the bulk admission
        path in ``__init__`` refreshes every row exactly once instead.
        """
        if not self._free_slots:
            self._grow_capacity()
        slot = self._free_slots.pop()
        self._alive[slot] = True
        self._balance[slot] = self.config.initial_credits
        self._minted += self.config.initial_credits
        self._spent_win[slot] = 0.0
        self._earned_win[slot] = 0.0
        self._uploads_total[slot] = 0.0
        self._played[slot] = 0
        self._missed[slot] = 0
        # A joiner tunes in near the live edge (initial peers start at 0).
        self._pb_next[slot] = max(0, self._emitted - self.config.startup_chunks)
        self._pb_started[slot] = False
        self._pb_backlog[slot] = 0.0
        self._have[slot, :] = False
        self._slot_of[peer_id] = slot
        self._peer_of[slot] = peer_id
        if self._shard_of_slot is not None:
            self._shard_of_slot[slot] = self._shard_plan.shard_of_peer(peer_id)
        self._fill_price_row(slot)
        if refresh:
            self._refresh_neighbors(peer_id)
            for neighbor in self.topology.neighbors(peer_id):
                if neighbor in self._slot_of:
                    self._refresh_neighbors(neighbor)
        return slot

    def _evict(self, peer_id: int) -> None:
        """Remove ``peer_id``'s simulator state (topology surgery happens separately).

        The departing peer takes its credits out of the economy, and any
        chunk still in flight toward it is dropped — a mid-purchase
        departure must neither crash the delivery nor hand the chunk to
        whichever peer later reuses the slot.
        """
        slot = self._slot_of.pop(peer_id)
        self._peer_of.pop(slot)
        self._alive[slot] = False
        self._destroyed += float(self._balance[slot])
        self._balance[slot] = 0.0
        self._have[slot, :] = False
        self._neighbors.pop(slot, None)
        for batch in self._in_flight:
            for position, (buyer_slots, chunk_indices) in enumerate(batch):
                keep = buyer_slots != slot
                if not keep.all():
                    batch[position] = (buyer_slots[keep], chunk_indices[keep])
        self._free_slots.append(slot)
        self._pack = None

    def _refresh_neighbors(self, peer_id: int) -> None:
        """Recompute one peer's compacted neighbour-slot row."""
        slot = self._slot_of.get(peer_id)
        if slot is None:
            return
        self._pack = None
        neighbor_slots = sorted(
            self._slot_of[neighbor]
            for neighbor in self.topology.neighbors(peer_id)
            if neighbor in self._slot_of
        )
        self._neighbors[slot] = np.array(
            neighbor_slots, dtype=self.config.options.index_dtype
        )

    def _stream_pack(self) -> _StreamPack:
        """Return the CSR neighbour arrays of the alive population.

        Rebuilt lazily after any membership change; on static overlays the
        pack is built once and reused for the whole run.  Memory scales
        with the edge count, never with ``N × max_degree``.
        """
        if self._pack is None:
            alive_slots = np.flatnonzero(self._alive)
            count = alive_slots.size
            index_dtype = self.config.options.index_dtype
            empty_row = np.empty(0, dtype=index_dtype)
            rows = [self._neighbors.get(int(slot), empty_row) for slot in alive_slots]
            degrees = np.fromiter(
                (row.size for row in rows), dtype=np.int64, count=count
            )
            edge_dst = np.concatenate(rows) if rows else empty_row
            row_start = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(degrees, out=row_start[1:])
            row_of = {int(slot): row for row, slot in enumerate(alive_slots)}
            self._pack = _StreamPack(alive_slots, degrees, edge_dst, row_start, row_of)
        return self._pack

    # ------------------------------------------------------------------ churn

    def _apply_churn(self, dt: float) -> None:
        apply_round_churn(
            self, dt, admit=self._admit, refresh_neighbor=self._refresh_neighbors
        )

    # ------------------------------------------------------------------ stream window

    def _fill_price_row(self, slot: int) -> None:
        """Quote one (re)admitted seller's prices for every chunk in the window."""
        peer_id = self._peer_of[slot]
        live_cols = self._emitted - self._win_base
        for col in range(live_cols):
            self._price_win[slot, col] = self.config.pricing.price(
                peer_id, self._win_base + col
            )

    def _fill_price_column(self, col: int, chunk_index: int) -> None:
        """Quote every alive seller's posted price for one new chunk column."""
        alive_slots = np.flatnonzero(self._alive)
        if alive_slots.size == 0:
            return
        peer_ids = [self._peer_of[int(slot)] for slot in alive_slots]
        self._price_win[alive_slots, col] = self.config.pricing.price_array(
            peer_ids, chunk_index
        )

    def _refresh_price_window(self) -> None:
        """Re-quote the whole window (stateful pricing schemes only)."""
        live_cols = self._emitted - self._win_base
        for col in range(live_cols):
            self._fill_price_column(col, self._win_base + col)

    def _slide_window(self, shift: int) -> None:
        width = self._win_width
        if shift >= width:
            self._have[:, :] = False
            self._price_win[:, :] = 0.0
        else:
            self._have[:, : width - shift] = self._have[:, shift:]
            self._have[:, width - shift :] = False
            self._price_win[:, : width - shift] = self._price_win[:, shift:]
            self._price_win[:, width - shift :] = 0.0
        self._win_base += shift

    def _emit_due_chunks(self) -> None:
        """Emit (and seed) every chunk due by the current tick time.

        The source pre-fills ``startup_chunks`` of backlog at time zero and
        then emits at ``chunk_rate``; each fresh chunk is pushed for free to
        ``seed_fanout`` random alive peers (the origin server's push
        degree).
        """
        config = self.config
        target = config.startup_chunks + int(
            np.floor(self.now * config.chunk_rate + 1e-9)
        )
        rng = self._rng
        while self._emitted < target:
            index = self._emitted
            col = index - self._win_base
            if col >= self._win_width:
                self._slide_window(col - self._win_width + 1)
                col = index - self._win_base
            self._fill_price_column(col, index)
            alive_slots = np.flatnonzero(self._alive)
            if alive_slots.size:
                fanout = min(self.seed_fanout, alive_slots.size)
                chosen = rng.choice(alive_slots, size=fanout, replace=False)
                self._have[chosen, col] = True
            self._emitted += 1

    # ------------------------------------------------------------------ scheduling kernels

    def _schedule_vectorized(
        self,
        pack: _StreamPack,
        balances: np.ndarray,
        uniforms: np.ndarray,
        base: int,
        live_edge: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched scheduling round: every alive peer's requests at once.

        Implements exactly the per-peer semantics of ``_schedule_loop`` —
        same candidate order, same supplier tie-breaks (cell ``(r, w)``
        spends uniform ``uniforms[r, w]``), same greedy budget rule, same
        global admission order — as pure array operations.
        """
        config = self.config
        window = config.playback_window
        count = pack.alive_slots.size
        if count == 0 or live_edge < 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, np.empty(0)

        slots = pack.alive_slots
        abs_idx = self._pb_next[slots][:, None] + np.arange(window)[None, :]
        valid = (abs_idx >= base) & (abs_idx <= live_edge)
        cols = np.clip(abs_idx - base, 0, self._win_width - 1)
        own = self._have[slots[:, None], cols]
        candidate = valid & ~own & (pack.degrees > 0)[:, None]

        # Supplier choice for every candidate (peer, window-position) cell,
        # via a segmented expansion over each candidate peer's edge list.
        # Cost scales with the degree mass of the *candidate* cells — a
        # scale-free hub only pays its own degree where it is actually
        # missing a chunk, never as padding on every other peer.
        price = np.full((count, window), np.inf)
        supplier = np.zeros((count, window), dtype=np.int64)
        cand_rows, cand_ws = np.nonzero(candidate)
        cells = cand_rows.size
        if cells:
            cand_cols = cols[cand_rows, cand_ws]
            seg_len = pack.degrees[cand_rows]
            cand_u = uniforms[cand_rows, cand_ws]
            chosen, resolved = self._resolve_suppliers(
                pack, cand_rows, cand_cols, cand_u, seg_len, config.supplier_choice
            )
            rows_ok = cand_rows[resolved]
            ws_ok = cand_ws[resolved]
            supplier[rows_ok, ws_ok] = chosen[resolved]
            price[rows_ok, ws_ok] = self._price_win[chosen[resolved], cand_cols[resolved]]

        # Greedy selection with budget skip, one vectorized pass per request
        # slot: each pass takes every peer's first still-affordable
        # candidate.  Budgets only decrease, so the passes reproduce the
        # sequential "scan once, skip unaffordable" rule exactly.
        budget = balances.copy()
        max_requests = config.max_requests_per_round
        sel_w = np.full((count, max_requests), -1, dtype=np.int64)
        open_price = price.copy()
        for request in range(max_requests):
            affordable = open_price <= budget[:, None] + _EPS
            any_affordable = affordable.any(axis=1)
            if not any_affordable.any():
                break
            first = np.argmax(affordable, axis=1)
            takers = np.flatnonzero(any_affordable)
            picked = first[takers]
            sel_w[takers, request] = picked
            budget[takers] -= open_price[takers, picked]
            open_price[takers, picked] = np.inf

        selected = sel_w >= 0
        if not selected.any():
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, np.empty(0)
        flat = np.flatnonzero(selected.ravel())  # row-major = global order
        rows = flat // max_requests
        w = sel_w.ravel()[flat]
        buyers = slots[rows]
        sellers = supplier[rows, w]
        chunk_abs = abs_idx[rows, w]
        paid = price[rows, w]

        # Upload-slot admission in global order: within each seller, the
        # first ``upload_capacity`` requests win.
        order = np.argsort(sellers, kind="stable")
        sorted_sellers = sellers[order]
        size = sellers.size
        new_group = np.ones(size, dtype=bool)
        new_group[1:] = sorted_sellers[1:] != sorted_sellers[:-1]
        group_first = np.maximum.accumulate(np.where(new_group, np.arange(size), 0))
        admitted_sorted = (np.arange(size) - group_first) < config.upload_capacity
        admitted = np.empty(size, dtype=bool)
        admitted[order] = admitted_sorted
        return buyers[admitted], sellers[admitted], chunk_abs[admitted], paid[admitted]

    def _resolve_suppliers(
        self,
        pack: _StreamPack,
        cand_rows: np.ndarray,
        cand_cols: np.ndarray,
        cand_u: np.ndarray,
        seg_len: np.ndarray,
        choice: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the supplier-choice expansion, monolithic or sharded by buyer.

        Sharded mode partitions the candidate cells by the *buyer's* shard
        and resolves each subset concurrently against the shared read-only
        state; the central merge writes each subset's results back to its
        own (disjoint) cell indices in shard order.  Supplier choice is
        independent per cell, so the merged arrays are byte-identical to
        the monolithic expansion; the budget walk and the global
        upload-slot admission that follow stay central — they are the
        round's boundary-exchange phase, where cross-shard chunk deliveries
        reconcile deterministically.
        """
        args = (
            self._have,
            self._price_win,
            self._uploads_total,
            pack.row_start,
            pack.edge_dst,
            cand_rows,
            cand_cols,
            cand_u,
            seg_len,
            choice,
        )
        if self._shard_plan is None:
            return _choose_suppliers_for_cells(
                *args, np.arange(cand_rows.size, dtype=np.int64)
            )
        from repro.runner.shard import run_shard_tasks

        shard_of_cell = self._shard_of_slot[pack.alive_slots[cand_rows]]
        selections = [
            np.flatnonzero(shard_of_cell == shard)
            for shard in range(self._shard_plan.shards)
        ]
        tasks = [
            functools.partial(_choose_suppliers_for_cells, *args, sel)
            for sel in selections
        ]
        chosen = np.zeros(cand_rows.size, dtype=np.int64)
        resolved = np.zeros(cand_rows.size, dtype=bool)
        results = run_shard_tasks(tasks, backend=self._shard_backend)
        for sel, (chosen_s, resolved_s) in zip(selections, results):
            chosen[sel] = chosen_s
            resolved[sel] = resolved_s
        return chosen, resolved

    def _schedule_loop(
        self,
        pack: _StreamPack,
        balances: np.ndarray,
        uniforms: np.ndarray,
        base: int,
        live_edge: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-peer scheduling loop (the benchmark baseline).

        Walks every alive peer's want window one position at a time —
        exactly what the retired event-driven scheduler did per peer per
        round — consuming the same tie-break uniforms as the vectorized
        kernel, so both produce bit-identical purchases.
        """
        config = self.config
        window = config.playback_window
        capacity = config.upload_capacity
        choice = config.supplier_choice
        max_requests = config.max_requests_per_round
        have = self._have
        price_win = self._price_win
        uploads_total = self._uploads_total
        buyers: List[int] = []
        sellers: List[int] = []
        chunks: List[int] = []
        paid: List[float] = []
        used: Dict[int, int] = {}
        if live_edge < 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, np.empty(0)
        for row in range(pack.alive_slots.size):
            slot = int(pack.alive_slots[row])
            degree = int(pack.degrees[row])
            if degree == 0:
                continue
            neighbors = pack.neighbors_of_row(row)
            playback_point = int(self._pb_next[slot])
            budget = float(balances[row])
            requests = 0
            for w in range(window):
                if requests >= max_requests:
                    break
                index = playback_point + w
                if index < base or index > live_edge:
                    continue
                col = index - base
                if have[slot, col]:
                    continue
                eligible = [int(s) for s in neighbors if have[s, col]]
                if not eligible:
                    continue
                if choice == "least-loaded":
                    loads = [float(uploads_total[s]) for s in eligible]
                    best = min(loads)
                    ties = [s for s, load in zip(eligible, loads) if load <= best + _EPS]
                elif choice == "cheapest":
                    quotes = [float(price_win[s, col]) for s in eligible]
                    best = min(quotes)
                    ties = [s for s, quote in zip(eligible, quotes) if quote <= best + _EPS]
                else:
                    ties = eligible
                pick = min(int(float(uniforms[row, w]) * len(ties)), len(ties) - 1)
                seller = ties[pick]
                price = float(price_win[seller, col])
                if price > budget + _EPS:
                    continue
                budget -= price
                requests += 1
                # Upload-slot admission (global order = this scan order).
                if not self._upload_slot_available(seller, used):
                    continue
                used[seller] = used.get(seller, 0) + 1
                buyers.append(slot)
                sellers.append(seller)
                chunks.append(index)
                paid.append(price)
        return (
            np.array(buyers, dtype=np.int64),
            np.array(sellers, dtype=np.int64),
            np.array(chunks, dtype=np.int64),
            np.array(paid),
        )

    def _upload_slot_available(self, seller_slot: int, used: Dict[int, int]) -> bool:
        """Whether ``seller_slot`` still has upload capacity this tick.

        ``used`` is the tick-local admission counter; the epoch is the
        integer tick counter (see ``_upload_epoch``), so the windowed
        accounting cannot drift with the float clock.
        """
        return used.get(seller_slot, 0) < self.config.upload_capacity

    # ------------------------------------------------------------------ settlement

    def _settle(
        self,
        pack: _StreamPack,
        buyers: np.ndarray,
        sellers: np.ndarray,
        chunk_abs: np.ndarray,
        prices: np.ndarray,
    ) -> None:
        """Apply one tick's admitted purchases: credits now, chunks after latency.

        Shared verbatim by both kernels.  Posted-price schemes settle as
        batched array updates; stateful schemes (auctions, linear pricing)
        settle purchase-by-purchase in the global admission order through
        the scalar ``settle``/``note_purchase`` hooks.
        """
        config = self.config
        income = np.zeros(self._capacity)
        deliveries = self._in_flight[self._delay_ticks - 1]
        measuring = self.now >= self._measure_start
        if buyers.size:
            if config.pricing.is_stateful():
                base = self._win_base
                delivered_slots: List[int] = []
                delivered_chunks: List[int] = []
                for buyer, seller, index, _quote in zip(
                    buyers, sellers, chunk_abs, prices
                ):
                    buyer_slot, seller_slot = int(buyer), int(seller)
                    buyer_id = self._peer_of[buyer_slot]
                    seller_id = self._peer_of[seller_slot]
                    row = pack.row_of[buyer_slot]
                    col = int(index) - base
                    competing = [
                        self._peer_of[int(s)]
                        for s in pack.neighbors_of_row(row)
                        if self._have[int(s), col]
                    ]
                    price = float(
                        config.pricing.settle(
                            seller_id, int(index), buyer_id=buyer_id,
                            competing_sellers=competing,
                        )
                    )
                    if price > self._balance[buyer_slot] + _EPS:
                        continue
                    self._balance[buyer_slot] -= price
                    self._balance[seller_slot] += price
                    income[seller_slot] += price
                    if measuring:
                        self._spent_win[buyer_slot] += price
                        self._earned_win[seller_slot] += price
                    config.pricing.note_purchase(seller_id, int(index), buyer_id)
                    self._uploads_total[seller_slot] += 1.0
                    self.chunks_delivered += 1
                    delivered_slots.append(buyer_slot)
                    delivered_chunks.append(int(index))
                if delivered_slots:
                    deliveries.append(
                        (
                            np.array(delivered_slots, dtype=np.int64),
                            np.array(delivered_chunks, dtype=np.int64),
                        )
                    )
            else:
                spent = np.bincount(buyers, weights=prices, minlength=self._capacity)
                income = np.bincount(sellers, weights=prices, minlength=self._capacity)
                self._balance -= spent
                self._balance += income
                self._uploads_total += np.bincount(
                    sellers, minlength=self._capacity
                ).astype(float)
                if measuring:
                    self._spent_win += spent
                    self._earned_win += income
                self.chunks_delivered += int(buyers.size)
                deliveries.append((buyers, chunk_abs))
        self._apply_taxation(income)

    def _apply_taxation(self, income: np.ndarray) -> None:
        apply_income_taxation(self, income, self.now)

    # ------------------------------------------------------------------ playback

    def _advance_playback(self, pack: _StreamPack, dt: float) -> None:
        """Advance every started peer's playback clock by one tick.

        Due chunks not held at their deadline are skipped and counted as
        misses (live-streaming semantics).  Peers that have buffered
        ``startup_chunks`` contiguous chunks from their playback point
        start playing.
        """
        slots = pack.alive_slots
        if slots.size == 0:
            return
        base = self._win_base
        live_edge = self._emitted - 1
        need = self.config.startup_chunks
        not_started = slots[~self._pb_started[slots]]
        if not_started.size:
            if need == 0:
                self._pb_started[not_started] = True
            else:
                idx = self._pb_next[not_started][:, None] + np.arange(need)[None, :]
                in_window = (idx >= base) & (idx <= live_edge)
                cols = np.clip(idx - base, 0, self._win_width - 1)
                held = self._have[not_started[:, None], cols] & in_window
                self._pb_started[not_started[held.all(axis=1)]] = True
        playing = slots[self._pb_started[slots]]
        if playing.size == 0:
            return
        self._pb_backlog[playing] += dt * self.config.chunk_rate
        due = np.floor(self._pb_backlog[playing]).astype(np.int64)
        max_due = int(due.max()) if due.size else 0
        if max_due <= 0:
            return
        idx = self._pb_next[playing][:, None] + np.arange(max_due)[None, :]
        active = np.arange(max_due)[None, :] < due[:, None]
        in_window = (idx >= base) & (idx <= live_edge)
        cols = np.clip(idx - base, 0, self._win_width - 1)
        held = self._have[playing[:, None], cols] & in_window & active
        hits = held.sum(axis=1)
        self._played[playing] += hits
        self._missed[playing] += due - hits
        self._pb_next[playing] += due
        self._pb_backlog[playing] -= due

    def _apply_deliveries(self) -> None:
        """Materialise the chunk batch whose transfer latency has elapsed.

        Chunks whose window position has already been evicted (a transfer
        that out-lived the live window) are dropped, as are chunks bound
        for a peer that departed mid-transfer.
        """
        batch = self._in_flight.pop(0)
        self._in_flight.append([])
        base = self._win_base
        width = self._win_width
        for buyer_slots, chunk_indices in batch:
            cols = chunk_indices - base
            landed = (cols >= 0) & (cols < width) & self._alive[buyer_slots]
            self._have[buyer_slots[landed], cols[landed]] = True

    # ------------------------------------------------------------------ main loop

    def total_rounds(self) -> int:
        """Number of scheduling ticks the configured horizon spans."""
        return int(np.ceil(self.config.horizon / self.config.scheduling_interval))

    def advance_rounds(self, rounds: int) -> None:
        """Advance the simulation by ``rounds`` ticks (without finalising).

        ``run()`` is ``advance_rounds(total_rounds())`` + ``finalize()``;
        intra-run partitioning (:mod:`repro.runner.partition`) advances the
        same ticks in checkpointed blocks, which yields an identical state
        because each tick's draws depend only on the state before it.
        """
        config = self.config
        dt = config.scheduling_interval
        stateful_pricing = config.pricing.is_stateful()
        emitter = get_emitter()
        observing = emitter.enabled and config.options.telemetry
        started = time.perf_counter() if observing else 0.0
        for _ in range(rounds):
            if self.now + 1e-9 >= self._next_sample:
                self._record_sample()
                self._next_sample += config.sample_interval
            if observing:
                with emitter.span("streaming.tick"):
                    self._advance_tick(dt, stateful_pricing)
            else:
                self._advance_tick(dt, stateful_pricing)
            self._tick += 1
        if observing and rounds:
            elapsed = max(time.perf_counter() - started, 1e-9)
            emitter.gauge("streaming.ticks_per_second", rounds / elapsed)

    def _advance_tick(self, dt: float, stateful_pricing: bool) -> None:
        """Execute one scheduling tick (churn, emission, scheduling, settlement)."""
        config = self.config
        self._apply_churn(dt)
        self._emit_due_chunks()
        if stateful_pricing:
            config.pricing.reset_round()
            self._refresh_price_window()
        pack = self._stream_pack()
        balances = self._balance[pack.alive_slots]
        uniforms = self._rng.random((pack.alive_slots.size, config.playback_window))
        options = config.options
        kernel = (
            self._schedule_loop if options.kernel == "loop" else self._schedule_vectorized
        )
        emitter = get_emitter()
        observing = emitter.enabled and options.telemetry
        if observing:
            with emitter.span("streaming.kernel." + options.kernel):
                buyers, sellers, chunk_abs, prices = kernel(
                    pack, balances, uniforms, self._win_base, self._emitted - 1
                )
        else:
            buyers, sellers, chunk_abs, prices = kernel(
                pack, balances, uniforms, self._win_base, self._emitted - 1
            )
        if observing and self._shard_plan is not None:
            # Admitted purchases whose buyer and seller live in different
            # shards — the chunk deliveries the boundary-exchange phase
            # reconciles this tick.
            boundary = int(
                np.count_nonzero(
                    self._shard_of_slot[buyers] != self._shard_of_slot[sellers]
                )
            )
            emitter.counter("streaming.shard.boundary_chunks", float(boundary))
        self._settle(pack, buyers, sellers, chunk_abs, prices)
        self._advance_playback(pack, dt)
        self._apply_deliveries()

    def finalize(self) -> StreamingSimResult:
        """Record the final sample and assemble the run's result."""
        self._record_sample()
        return self._build_result()

    def run(self) -> StreamingSimResult:
        """Run the simulation for the configured horizon and return the result."""
        self.advance_rounds(self.total_rounds())
        return self.finalize()

    # ------------------------------------------------------------------ bookkeeping

    def verify_conservation(self, tolerance: float = 1e-6) -> None:
        """Raise ``AssertionError`` if the credit-conservation invariant is violated."""
        alive_slots = np.flatnonzero(self._alive)
        in_circulation = float(self._balance[alive_slots].sum()) + self._tax_pool
        error = abs(self._minted - self._destroyed - in_circulation)
        if error > tolerance:
            raise AssertionError(
                f"credit conservation violated: minted={self._minted:.6g}, "
                f"destroyed={self._destroyed:.6g}, "
                f"in_circulation={in_circulation:.6g} (error {error:.3g})"
            )

    def _peer_order(self) -> List[int]:
        """Alive peer ids in ascending order (the reporting order)."""
        return sorted(self._slot_of)

    def _record_sample(self) -> None:
        order = self._peer_order()
        slots = np.array([self._slot_of[peer] for peer in order], dtype=np.int64)
        emitter = get_emitter()
        observing = emitter.enabled and self.config.options.telemetry
        before = len(self.recorder.gini_series.x) if observing else 0
        self.recorder.record(self.now, self._balance[slots])
        # Stream the freshly recorded sample (the recorder drops empty
        # populations, so only emit when it actually appended one).
        if observing and len(self.recorder.gini_series.x) > before:
            emitter.point("streaming.gini", self.now, self.recorder.gini_series.y[-1])
            emitter.point(
                "streaming.bankrupt_fraction", self.now, self.recorder.bankrupt_series.y[-1]
            )
            emitter.point(
                "streaming.mean_wealth", self.now, self.recorder.mean_wealth_series.y[-1]
            )
            emitter.point("streaming.population", self.now, float(len(order)))
            if self._shard_plan is not None and slots.size:
                sizes = np.bincount(
                    self._shard_of_slot[slots], minlength=self._shard_plan.shards
                )
                ideal = slots.size / self._shard_plan.shards
                emitter.point(
                    "streaming.shard.imbalance", self.now, float(sizes.max() / ideal)
                )

    def _build_result(self) -> StreamingSimResult:
        order = self._peer_order()
        slots = np.array([self._slot_of[peer] for peer in order], dtype=np.int64)
        window = max(self.config.horizon - self._measure_start, 1e-9)
        played = self._played[slots].astype(float)
        missed = self._missed[slots].astype(float)
        due = played + missed
        continuity = np.where(due > 0, played / np.maximum(due, 1.0), 1.0)
        return StreamingSimResult(
            config=self.config,
            recorder=self.recorder,
            final_wealths=self._balance[slots].copy(),
            spending_rates=self._spent_win[slots] / window,
            earning_rates=self._earned_win[slots] / window,
            continuity=continuity,
            chunks_delivered=self.chunks_delivered,
            joins=self.joins,
            leaves=self.leaves,
            extras={
                "peer_order": order,
                "source_chunks": self._emitted,
                "final_population": len(order),
                "tax_pool": self._tax_pool,
            },
        )

    # ------------------------------------------------------------------ conveniences

    @classmethod
    def run_config(
        cls,
        config: StreamingSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
    ) -> StreamingSimResult:
        """Build a simulator for ``config`` and run it to completion.

        When an intra-run partition context is active (see
        :mod:`repro.runner.partition`), the run executes as checkpointed
        round-blocks through that context instead — producing bit-identical
        results, since block boundaries only pickle/unpickle the state the
        monolithic loop would carry anyway.
        """
        from repro.runner.partition import active_context

        context = active_context()
        if context is not None:
            return context.run_simulation(
                cls, config, topology=topology, snapshot_times=snapshot_times
            )
        return cls(config, topology=topology, snapshot_times=snapshot_times).run()
