"""Chunk-level discrete-event simulator of a credit-incentivized streaming swarm.

This is the detailed counterpart of
:class:`~repro.p2psim.market_sim.CreditMarketSimulator`: instead of moving
credits directly, peers run a mesh-pull streaming protocol (UUSee-like, as
in Sec. VI of the paper) and credits move only when a chunk is actually
bought from a neighbour:

* the source emits the live chunk stream and seeds every new chunk to a few
  random peers;
* every ``scheduling_interval`` seconds each peer looks at the buffer maps
  of its neighbours, picks the missing chunks closest to its playback
  deadline, chooses the cheapest supplier for each and pays the supplier's
  price from its wallet (skipping chunks it cannot afford — the budget
  constraint that couples wealth to download performance);
* purchased chunks arrive after a transfer latency and playback advances at
  the stream rate, recording continuity.

The simulator produces per-peer credit spending rates (Fig. 1), wealth
profiles over time (Figs. 5–6) and the same Gini time series as the market
simulator, at higher fidelity and higher cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.credits import CreditLedger
from repro.overlay.generators import scale_free_topology
from repro.overlay.topology import OverlayTopology
from repro.p2psim.config import StreamingSimConfig
from repro.p2psim.recorder import WealthRecorder
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.streaming.chunks import Chunk, ChunkStore
from repro.streaming.playback import PlaybackBuffer
from repro.streaming.scheduler import PlaybackDrivenScheduler
from repro.streaming.source import StreamSource

__all__ = ["StreamingSimResult", "StreamingPeer", "StreamingMarketSimulator"]


@dataclass
class StreamingSimResult:
    """Output of one :class:`StreamingMarketSimulator` run.

    Attributes
    ----------
    config:
        The configuration that produced the run.
    recorder:
        Wealth time series (Gini, bankruptcy fraction, snapshots).
    final_wealths:
        Final wallet balances, in peer-id order.
    spending_rates:
        Credit spending rate of every peer measured over the second half of
        the run (credits per second) — the quantity plotted in Fig. 1.
    earning_rates:
        Credit earning rate over the same window.
    continuity:
        Playback continuity (fraction of due chunks held at their deadline)
        per peer.
    chunks_delivered:
        Total chunks purchased and delivered across the swarm.
    """

    config: StreamingSimConfig
    recorder: WealthRecorder
    final_wealths: np.ndarray
    spending_rates: np.ndarray
    earning_rates: np.ndarray
    continuity: np.ndarray
    chunks_delivered: int
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def final_gini(self) -> float:
        """Gini index of wealth at the end of the run."""
        return self.recorder.final_gini()

    @property
    def spending_rate_gini(self) -> float:
        """Gini index of the per-peer credit spending rates (the Fig. 1 statistic)."""
        from repro.core.metrics import gini_index

        return gini_index(self.spending_rates)


class StreamingPeer(PeriodicProcess):
    """One streaming peer: buffer map + wallet + chunk scheduling + playback."""

    def __init__(
        self,
        peer_id: int,
        simulator: "StreamingMarketSimulator",
        scheduling_interval: float,
        jitter: float,
    ) -> None:
        super().__init__(interval=scheduling_interval, name=f"peer:{peer_id}")
        self.peer_id = int(peer_id)
        self._sim = simulator
        self.store = ChunkStore(window_size=4 * simulator.config.playback_window)
        self.playback = PlaybackBuffer(
            playback_rate=simulator.config.chunk_rate,
            startup_chunks=simulator.config.startup_chunks,
        )
        self.scheduler = PlaybackDrivenScheduler(
            max_requests_per_round=simulator.config.max_requests_per_round,
            rng=simulator.rng_for(f"scheduler:{peer_id}"),
            supplier_choice=simulator.config.supplier_choice,
        )
        self._initial_offset = jitter
        self.window_spent = 0.0
        self.window_earned = 0.0

    def on_start(self) -> None:
        self.playback.note_join(self.now)
        # Spread the first scheduling round over one interval to avoid
        # lock-step behaviour across the whole swarm.
        self.call_in(self._initial_offset, self._first_tick, label=f"{self.name}.bootstrap")

    def _first_tick(self) -> None:
        self._fire()

    def _fire(self) -> None:  # override PeriodicProcess wiring for the jittered start
        self.ticks += 1
        self.tick()
        if self.is_running:
            self.call_in(self.interval, self._fire, label=f"{self.name}.tick")

    # ------------------------------------------------------------------ protocol round

    def tick(self) -> None:
        sim = self._sim
        live_edge = sim.source.latest_index
        if live_edge < 0:
            return
        playback_point = self.playback.playback_point
        window_stop = min(live_edge + 1, playback_point + sim.config.playback_window)
        want_range = range(playback_point, window_stop)

        neighbor_maps = sim.neighbor_buffer_maps(self.peer_id)
        balance = sim.ledger.wallet(self.peer_id).balance
        requests = self.scheduler.schedule(
            own_map=self.store.buffer_map,
            neighbor_maps=neighbor_maps,
            want_range=want_range,
            price_lookup=sim.price_lookup,
            budget=balance,
            load_lookup=sim.upload_load,
        )
        for request in requests:
            sim.execute_purchase(
                buyer_id=self.peer_id,
                seller_id=request.supplier_id,
                chunk_index=request.chunk_index,
                suppliers=[
                    neighbor
                    for neighbor, buffer_map in neighbor_maps.items()
                    if request.chunk_index in buffer_map
                ],
            )
        self.playback.advance(self.store.buffer_map, self.now)

    # ------------------------------------------------------------------ chunk delivery

    def deliver_chunk(self, chunk: Chunk) -> None:
        """Receive a chunk (purchased or seeded by the source)."""
        self.store.insert(chunk)
        self.playback.maybe_start(self.store.buffer_map, self.now)


class StreamingMarketSimulator:
    """Builds and runs a credit-incentivized streaming swarm simulation."""

    def __init__(
        self,
        config: StreamingSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
        seed_fanout: Optional[int] = None,
    ) -> None:
        self.config = config
        self.engine = SimulationEngine(seed=config.seed)
        self.topology = (
            topology
            if topology is not None
            else scale_free_topology(
                config.num_peers,
                shape=config.topology_shape,
                mean_degree=config.topology_mean_degree,
                seed=config.seed,
            )
        )
        self.recorder = WealthRecorder(snapshot_times=snapshot_times)
        self.ledger = CreditLedger(record_transactions=False)
        self.seed_fanout = max(1, int(seed_fanout if seed_fanout is not None else config.seed_fanout))
        self.chunks_delivered = 0
        self._measure_start = config.horizon / 2.0

        self.source = StreamSource(chunk_rate=config.chunk_rate)
        self.source.subscribe(self._seed_chunk)

        self.peers: Dict[int, StreamingPeer] = {}
        jitter_rng = self.engine.rng("peer-jitter")
        for peer_id in self.topology.peers():
            self.ledger.open_wallet(peer_id, config.initial_credits)
            peer = StreamingPeer(
                peer_id,
                self,
                scheduling_interval=config.scheduling_interval,
                jitter=float(jitter_rng.uniform(0.0, config.scheduling_interval)),
            )
            self.peers[peer_id] = peer

        self._spent_window: Dict[int, float] = {peer: 0.0 for peer in self.peers}
        self._earned_window: Dict[int, float] = {peer: 0.0 for peer in self.peers}
        # Per-seller upload accounting: (scheduling-interval epoch, uploads used in it).
        self._upload_used: Dict[int, List[float]] = {peer: [-1.0, 0.0] for peer in self.peers}
        # Cumulative uploads per seller, used by the least-loaded supplier policy.
        self._uploads_total: Dict[int, float] = {peer: 0.0 for peer in self.peers}

    # ------------------------------------------------------------------ wiring helpers

    def rng_for(self, label: str) -> np.random.Generator:
        """Named RNG stream scoped to this simulation's seed."""
        return self.engine.rng(label)

    def neighbor_buffer_maps(self, peer_id: int) -> Dict[int, "ChunkStore"]:
        """Buffer maps currently advertised by the neighbours of ``peer_id``."""
        return {
            neighbor: self.peers[neighbor].store.buffer_map
            for neighbor in self.topology.neighbors(peer_id)
            if neighbor in self.peers
        }

    def price_lookup(self, seller_id: int, chunk_index: int) -> float:
        """Posted price of ``seller_id`` for ``chunk_index`` (scheduler callback)."""
        return float(self.config.pricing.price(seller_id, chunk_index))

    def upload_load(self, seller_id: int) -> float:
        """Cumulative uploads served by ``seller_id`` (scheduler load-balancing callback)."""
        return self._uploads_total.get(seller_id, 0.0)

    # ------------------------------------------------------------------ chunk / credit flow

    def _seed_chunk(self, chunk: Chunk) -> None:
        """Push a freshly emitted chunk to a few random peers (source seeding)."""
        rng = self.engine.rng("seeding")
        peer_ids = list(self.peers)
        if not peer_ids:
            return
        fanout = min(self.seed_fanout, len(peer_ids))
        chosen = rng.choice(peer_ids, size=fanout, replace=False)
        for peer_id in chosen:
            self.peers[int(peer_id)].deliver_chunk(chunk)

    def _upload_slot_available(self, seller_id: int) -> bool:
        """Whether ``seller_id`` still has upload capacity in the current epoch."""
        epoch = np.floor(self.engine.now / self.config.scheduling_interval)
        record = self._upload_used.setdefault(seller_id, [-1.0, 0.0])
        if record[0] != epoch:
            record[0] = epoch
            record[1] = 0.0
        return record[1] < self.config.upload_capacity

    def _consume_upload_slot(self, seller_id: int) -> None:
        self._upload_used[seller_id][1] += 1.0
        self._uploads_total[seller_id] = self._uploads_total.get(seller_id, 0.0) + 1.0

    def execute_purchase(
        self,
        buyer_id: int,
        seller_id: int,
        chunk_index: int,
        suppliers: Optional[List[int]] = None,
    ) -> bool:
        """Settle one chunk purchase: transfer credits now, deliver the chunk after latency.

        When the chosen seller has exhausted its upload capacity for the
        current scheduling interval the purchase falls back to another
        supplier of the same chunk (if any has capacity left).  Returns
        False (and does nothing) when no capable supplier remains or the
        buyer cannot afford the settled price.
        """
        buyer = self.peers.get(buyer_id)
        if buyer is None:
            return False
        if not self._upload_slot_available(seller_id) and suppliers:
            rng = self.engine.rng("upload-fallback")
            alternatives = [
                candidate
                for candidate in suppliers
                if candidate != seller_id
                and candidate in self.peers
                and self._upload_slot_available(candidate)
                and self.peers[candidate].store.has(chunk_index)
            ]
            if not alternatives:
                return False
            seller_id = int(alternatives[int(rng.integers(len(alternatives)))])
        elif not self._upload_slot_available(seller_id):
            return False
        seller = self.peers.get(seller_id)
        if seller is None:
            return False
        chunk = seller.store.get(chunk_index)
        if chunk is None:
            return False
        price = self.config.pricing.settle(
            seller_id, chunk_index, buyer_id=buyer_id, competing_sellers=suppliers
        )
        wallet = self.ledger.wallet(buyer_id)
        if price > 0 and not wallet.can_afford(price):
            return False
        if price > 0:
            self.ledger.transfer(
                buyer_id, seller_id, price, time=self.engine.now, chunk_index=chunk_index
            )
            self.config.tax_policy.on_income(
                self.ledger, seller_id, price, self.engine.now, list(self.peers)
            )
        self.config.pricing.note_purchase(seller_id, chunk_index, buyer_id)
        self._consume_upload_slot(seller_id)
        if self.engine.now >= self._measure_start:
            self._spent_window[buyer_id] = self._spent_window.get(buyer_id, 0.0) + price
            self._earned_window[seller_id] = self._earned_window.get(seller_id, 0.0) + price
        self.engine.schedule_in(
            self.config.transfer_latency,
            lambda _engine, b=buyer, c=chunk: b.deliver_chunk(c),
            label=f"deliver:{chunk_index}->{buyer_id}",
        )
        self.chunks_delivered += 1
        return True

    # ------------------------------------------------------------------ run

    def run(self) -> StreamingSimResult:
        """Run the simulation for the configured horizon and return the result."""
        config = self.config
        self.source.start(self.engine)
        for peer in self.peers.values():
            peer.start(self.engine)
        # Pre-fill the swarm with a little history so playback can begin.
        self.source.emit_backlog(config.startup_chunks)

        sample_times = np.arange(0.0, config.horizon + 1e-9, config.sample_interval)
        for sample_time in sample_times:
            self.engine.run(until=float(sample_time))
            self._record_sample()
        self.engine.run(until=config.horizon)
        self._record_sample()
        return self._build_result()

    def _record_sample(self) -> None:
        order = sorted(self.peers)
        balances = [self.ledger.wallet(peer).balance for peer in order]
        self.recorder.record(self.engine.now, balances)

    def _build_result(self) -> StreamingSimResult:
        order = sorted(self.peers)
        window = max(self.config.horizon - self._measure_start, 1e-9)
        final_wealths = np.array([self.ledger.wallet(peer).balance for peer in order])
        spending = np.array([self._spent_window.get(peer, 0.0) / window for peer in order])
        earning = np.array([self._earned_window.get(peer, 0.0) / window for peer in order])
        continuity = np.array([self.peers[peer].playback.stats.continuity for peer in order])
        return StreamingSimResult(
            config=self.config,
            recorder=self.recorder,
            final_wealths=final_wealths,
            spending_rates=spending,
            earning_rates=earning,
            continuity=continuity,
            chunks_delivered=self.chunks_delivered,
            extras={
                "peer_order": order,
                "source_chunks": self.source.chunks_emitted,
            },
        )

    # ------------------------------------------------------------------ conveniences

    @classmethod
    def run_config(
        cls,
        config: StreamingSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
    ) -> StreamingSimResult:
        """Build a simulator for ``config`` and run it to completion."""
        return cls(config, topology=topology, snapshot_times=snapshot_times).run()
