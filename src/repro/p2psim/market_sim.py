"""Transaction-level credit-market simulator.

The simulator advances the credit circulation of a P2P market one round at
a time: within a round of length ``step`` seconds every peer spends a
Poisson number of credits (rate = its effective spending rate, capped by
its balance) and each spent credit is routed to one of its neighbours with
the routing probabilities derived from the overlay and the pricing scheme.
This is a direct simulation of the closed (or, with churn, open) Jackson
network of Table I — one job = one credit — with the practical extensions
the paper studies on top: taxation of income (Sec. VI-C), dynamic
wealth-dependent spending rates (Sec. VI-D) and peer churn (Sec. VI-E).

The simulator is deliberately array-based (peer state lives in numpy
arrays indexed by slot) so that populations of several hundred peers over
tens of thousands of simulated seconds run in seconds of wall-clock time.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_emitter
from repro.overlay.generators import scale_free_topology
from repro.overlay.membership import MembershipTracker
from repro.overlay.topology import OverlayTopology
from repro.p2psim.config import MarketSimConfig, UtilizationMode
from repro.p2psim.recorder import WealthRecorder
from repro.p2psim.slots import apply_income_taxation, apply_round_churn
from repro.queueing.routing import RoutingMatrix
from repro.queueing.traffic import solve_traffic_equations
from repro.utils.rng import make_rng
from repro.utils.validation import check_index_capacity

__all__ = ["MarketSimResult", "CreditMarketSimulator"]


@dataclass
class _RoutingPack:
    """Alive peers' routing rows in CSR (segmented) layout — no padding.

    Row ``r`` describes the peer in slot ``alive_slots[r]``: its routing
    edges occupy positions ``row_start[r]:row_start[r+1]`` of the flat
    edge arrays.  ``edge_dst`` holds neighbour slot indices and ``flat``
    the segmented cumulative routing probabilities offset by ``3.0 * r``
    (each row's CDF is normalised so its last entry is exactly 1.0, so row
    ``r`` occupies values in ``(3r, 3r + 1]``).  The concatenation is
    therefore one globally sorted vector, and a credit of spender row
    ``r`` with uniform ``u`` routes to edge ``searchsorted(flat, u + 3r,
    "right")`` — one batched binary search routes every credit of a round
    against exactly the degree mass of the overlay, instead of the padded
    ``N × max_degree`` matrices earlier revisions materialised (which made
    a single scale-free hub cost its degree on *every* peer and capped the
    population near 10^3).  Both kernels compare against the same ``flat``
    values, so their routing decisions are bit-identical; ``flat`` stays
    float64 under either dtype switch because float32 cannot resolve a CDF
    against a ``3.0 * r`` offset once ``r`` is large (spacing 0.25 at
    ``r ≈ 10^6``).

    The pack is a pure cache derived from ``_neighbors``/``_cdfs``; any
    membership or routing change drops it and the next round rebuilds it.
    """

    alive_slots: np.ndarray
    degrees: np.ndarray
    row_start: np.ndarray
    edge_dst: np.ndarray
    flat: np.ndarray
    #: Row indices grouped by spatial shard (None when running monolithic).
    shard_rows: Optional[List[np.ndarray]] = None


def _route_shard_rows(
    flat: np.ndarray,
    edge_dst: np.ndarray,
    row_start: np.ndarray,
    rows: np.ndarray,
    spendable: np.ndarray,
    row_offsets: np.ndarray,
    draws: np.ndarray,
    capacity: int,
    shard_of_slot: Optional[np.ndarray],
    shard: int,
) -> Tuple[Optional[np.ndarray], int]:
    """Route one shard's credits: the restrict-to-shard view of the kernel.

    A pure function of read-only inputs (the shard executor may run it on
    a thread or in a forked child): for the spender rows of one shard it
    gathers exactly the global draw positions the monolithic kernel would
    consume for those rows (``row_offsets`` is the cumulative spendable
    count over *all* rows), searches the same globally sorted segmented
    CDF, and returns a full-capacity income buffer plus the number of
    credits that crossed the shard boundary.  Incomes are integer counts
    in float64, so summing the per-shard buffers in shard order is exact —
    byte-identical to the monolithic ``bincount``.
    """
    counts = spendable[rows]
    total = int(counts.sum())
    if total == 0:
        return None, 0
    offsets = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    expanded = np.repeat(rows, counts)
    positions = (
        np.repeat(row_offsets[rows], counts)
        + np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], counts)
    )
    hits = np.searchsorted(flat, draws[positions] + 3.0 * expanded, side="right")
    hits = np.minimum(hits, row_start[expanded + 1] - 1)
    destinations = edge_dst[hits]
    income = np.bincount(destinations, minlength=capacity).astype(float)
    boundary = 0
    if shard_of_slot is not None:
        boundary = int(np.count_nonzero(shard_of_slot[destinations] != shard))
    return income, boundary


@dataclass
class MarketSimResult:
    """Output of one :class:`CreditMarketSimulator` run.

    Attributes
    ----------
    config:
        The configuration that produced the run.
    recorder:
        Time series of Gini index, bankruptcy fraction, mean wealth and
        population, plus any requested snapshots.
    final_wealths:
        Wealth of every peer alive at the end of the run.
    spending_rates:
        Measured credit spending rate (credits per second over the whole
        run) of every peer alive at the end.
    earning_rates:
        Measured credit earning rate of every peer alive at the end.
    total_transfers:
        Total number of credit transfers simulated.
    joins, leaves:
        Churn event counts (zero for static overlays).
    """

    config: MarketSimConfig
    recorder: WealthRecorder
    final_wealths: np.ndarray
    spending_rates: np.ndarray
    earning_rates: np.ndarray
    total_transfers: int
    joins: int = 0
    leaves: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def final_gini(self) -> float:
        """Gini index at the end of the run."""
        return self.recorder.final_gini()

    @property
    def stabilized_gini(self) -> float:
        """Mean Gini over the last quarter of samples."""
        return self.recorder.stabilized_gini()


class CreditMarketSimulator:
    """Round-based simulator of credit circulation on a P2P overlay.

    Parameters
    ----------
    config:
        Simulation parameters (see :class:`~repro.p2psim.config.MarketSimConfig`).
    topology:
        Optional pre-built overlay; a scale-free overlay with the configured
        shape/mean degree is generated when omitted.
    snapshot_times:
        Simulation times at which sorted wealth snapshots are kept.
    """

    def __init__(
        self,
        config: MarketSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
    ) -> None:
        self.config = config
        self._rng = make_rng(config.seed, "market-sim")
        self.topology = (
            topology
            if topology is not None
            else scale_free_topology(
                config.num_peers,
                shape=config.topology_shape,
                mean_degree=config.topology_mean_degree,
                seed=config.seed,
            )
        )
        if self.topology.num_peers < 2:
            raise ValueError("the overlay must contain at least 2 peers")
        self.recorder = WealthRecorder(snapshot_times=snapshot_times)
        self._tracker = MembershipTracker(
            self.topology,
            target_degree=int(round(config.topology_mean_degree)),
            seed=config.seed + 1,
        )

        # --- spatial sharding ------------------------------------------------------
        # Execution-level knobs: the ambient overrides installed by the
        # runner (if any) win over the config's options, and a plan is only
        # built when actually sharding.  Lazy import, mirroring run_config.
        from repro.runner.shard import plan_shards, resolve_shard_settings

        options = config.options
        shards, partitioner, shard_backend = resolve_shard_settings(options)
        self._shard_backend = shard_backend
        self._shard_plan = (
            plan_shards(self.topology, shards, partitioner) if shards > 1 else None
        )

        # --- slot-based peer state -------------------------------------------------
        float_dtype = options.float_dtype
        capacity = max(16, 2 * self.topology.num_peers)
        if options.is_narrow:
            check_index_capacity(capacity, options.index_dtype, "slot capacity")
        self._capacity = capacity
        self._alive = np.zeros(capacity, dtype=bool)
        self._balance = np.zeros(capacity, dtype=float_dtype)
        self._base_mu = np.zeros(capacity, dtype=float_dtype)
        self._spent = np.zeros(capacity, dtype=float_dtype)
        self._earned = np.zeros(capacity, dtype=float_dtype)
        self._slot_of: Dict[int, int] = {}
        self._peer_of: Dict[int, int] = {}
        self._free_slots: List[int] = list(range(capacity - 1, -1, -1))
        self._neighbors: Dict[int, np.ndarray] = {}
        self._cdfs: Dict[int, np.ndarray] = {}
        self._shard_of_slot: Optional[np.ndarray] = (
            np.zeros(capacity, dtype=np.int16) if self._shard_plan is not None else None
        )
        self._pack: Optional[_RoutingPack] = None
        # Per-round scratch buffers: `_income` accumulates the loop kernel's
        # transfers, `_zero_income` is the (never written) empty-round view —
        # both preallocated so the hot loop allocates nothing on quiet rounds.
        # Incomes are integer transfer counts and stay float64 under either
        # dtype switch: counts are exact in float64, so narrowing only the
        # persistent state keeps both kernels' settlements identical.
        self._income = np.zeros(capacity)
        self._zero_income = np.zeros(capacity)

        self._tax_pool = 0.0
        self.total_transfers = 0
        self.joins = 0
        self.leaves = 0
        self._time = 0.0
        self._next_sample = 0.0

        initial_peers = self.topology.peers()
        mu_by_peer = self._configure_spending_rates(initial_peers)
        # Bulk admission: create every peer's state first, then derive each
        # routing row exactly once.  Admitting with per-peer refresh would
        # recompute every earlier neighbour's row on each admission —
        # O(sum degree^2) Python work that dominated start-up well before
        # the million-peer scale.  A row only depends on which of its own
        # neighbours are admitted, so refresh-once-at-the-end produces
        # bit-identical rows to the historical cascade.
        for peer in initial_peers:
            self._admit(peer, mu_by_peer[peer], refresh=False)
        for peer in initial_peers:
            self._refresh_routing_row(peer)
        # Build the routing pack eagerly: it is part of construction, not of
        # the first advanced round (benchmarks time rounds, not set-up).
        self._routing_pack()
        emitter = get_emitter()
        if self._shard_plan is not None and emitter.enabled and options.telemetry:
            emitter.gauge("market.shard.count", float(self._shard_plan.shards))
            emitter.gauge("market.shard.plan_imbalance", self._shard_plan.imbalance)
            if self._shard_plan.cut_fraction is not None:
                emitter.gauge(
                    "market.shard.cut_fraction", self._shard_plan.cut_fraction
                )

    # ------------------------------------------------------------------ setup helpers

    def _configure_spending_rates(self, peers: Sequence[int]) -> Dict[int, float]:
        """Assign base spending rates according to the utilization mode.

        Asymmetric mode gives every peer the same maximum spending rate, so
        utilizations inherit the (heterogeneous) earning rates implied by
        the topology and pricing.  Symmetric mode solves the traffic
        equations and sets ``μ_i ∝ λ_i`` so every utilization is equal,
        then rescales so the mean spending rate equals the configured base
        rate (keeping overall credit velocity comparable across modes).
        """
        base = self.config.base_spending_rate
        if self.config.utilization is UtilizationMode.ASYMMETRIC:
            rates = {peer: base for peer in peers}
        else:
            routing = RoutingMatrix.weighted_over_neighbors(
                self.topology,
                weights=self._seller_weights(peers),
                order=peers,
            )
            solution = solve_traffic_equations(routing)
            lam = solution.arrival_rates
            lam = lam / lam.mean() * base
            rates = {peer: float(rate) for peer, rate in zip(peers, lam)}
        noise = self.config.spending_rate_noise
        if noise > 0:
            sigma = float(np.sqrt(np.log(1.0 + noise**2)))
            for peer in rates:
                rates[peer] *= float(self._rng.lognormal(-sigma**2 / 2.0, sigma))
        return rates

    def _seller_weights(self, peers: Sequence[int]) -> Dict[int, float]:
        """Attractiveness of each peer as a seller (its posted chunk price)."""
        return {
            peer: float(self.config.pricing.price(peer, chunk_index=0)) for peer in peers
        }

    def _default_spending_rate(self) -> float:
        """Spending rate for peers that join after start-up."""
        if self.config.utilization is UtilizationMode.ASYMMETRIC:
            return self.config.base_spending_rate
        alive_rates = self._base_mu[self._alive]
        if alive_rates.size == 0:
            return self.config.base_spending_rate
        return float(alive_rates.mean())

    # ------------------------------------------------------------------ peer lifecycle

    def _grow_capacity(self) -> None:
        new_capacity = self._capacity * 2
        if self.config.options.is_narrow:
            check_index_capacity(
                new_capacity, self.config.options.index_dtype, "slot capacity"
            )
        pad = new_capacity - self._capacity

        def extend(array: np.ndarray) -> np.ndarray:
            return np.concatenate([array, np.zeros(pad, dtype=array.dtype)])

        self._alive = extend(self._alive)
        self._balance = extend(self._balance)
        self._base_mu = extend(self._base_mu)
        self._spent = extend(self._spent)
        self._earned = extend(self._earned)
        self._income = np.zeros(new_capacity)
        self._zero_income = np.zeros(new_capacity)
        if self._shard_of_slot is not None:
            self._shard_of_slot = extend(self._shard_of_slot)
        self._free_slots = list(range(new_capacity - 1, self._capacity - 1, -1)) + self._free_slots
        self._capacity = new_capacity

    def _admit(self, peer_id: int, spending_rate: float, refresh: bool = True) -> int:
        """Create simulator state for ``peer_id`` (already present in the topology).

        ``refresh=False`` skips the routing-row derivation (and the
        re-derivation of already-admitted neighbours); the caller is then
        responsible for refreshing every affected row — the bulk admission
        path in ``__init__`` does this exactly once per peer.
        """
        if not self._free_slots:
            self._grow_capacity()
        slot = self._free_slots.pop()
        self._alive[slot] = True
        self._balance[slot] = self.config.initial_credits
        self._base_mu[slot] = spending_rate
        self._spent[slot] = 0.0
        self._earned[slot] = 0.0
        self._slot_of[peer_id] = slot
        self._peer_of[slot] = peer_id
        if self._shard_of_slot is not None:
            self._shard_of_slot[slot] = self._shard_plan.shard_of_peer(peer_id)
        if refresh:
            self._refresh_routing_row(peer_id)
            for neighbor in self.topology.neighbors(peer_id):
                if neighbor in self._slot_of:
                    self._refresh_routing_row(neighbor)
        return slot

    def _evict(self, peer_id: int) -> None:
        """Remove ``peer_id``'s simulator state (topology surgery happens separately)."""
        slot = self._slot_of.pop(peer_id)
        self._peer_of.pop(slot)
        self._alive[slot] = False
        self._balance[slot] = 0.0
        self._neighbors.pop(slot, None)
        self._cdfs.pop(slot, None)
        self._free_slots.append(slot)
        self._pack = None

    def _refresh_routing_row(self, peer_id: int) -> None:
        """Recompute the neighbour list and routing CDF of one peer.

        The cumulative distribution is derived here (in float64, then
        stored at the configured state dtype) rather than at pack-build
        time: per-row ``cumsum`` keeps the exact historical float
        sequence — a segmented cumsum over the concatenated edge array
        would accumulate across rows and round differently — and moves the
        O(degree) Python work out of the (benchmarked) round loop.
        """
        slot = self._slot_of.get(peer_id)
        if slot is None:
            return
        self._pack = None
        options = self.config.options
        neighbor_ids = [
            neighbor
            for neighbor in self.topology.neighbors(peer_id)
            if neighbor in self._slot_of
        ]
        if not neighbor_ids:
            self._neighbors[slot] = np.empty(0, dtype=options.index_dtype)
            self._cdfs[slot] = np.empty(0, dtype=options.float_dtype)
            return
        weights = np.asarray(
            self.config.pricing.price_array(neighbor_ids, 0), dtype=float
        )
        weights = np.clip(weights, 1e-12, None)
        self._neighbors[slot] = np.array(
            [self._slot_of[neighbor] for neighbor in neighbor_ids],
            dtype=options.index_dtype,
        )
        probs = weights / weights.sum()
        row_cdf = np.cumsum(probs)
        # The last entry must be exactly 1.0 so every uniform draw in
        # [0, 1) lands on a real neighbour despite cumsum rounding;
        # dividing by the total guarantees it.
        row_cdf /= row_cdf[-1]
        self._cdfs[slot] = row_cdf.astype(options.float_dtype, copy=False)

    # ------------------------------------------------------------------ churn

    def _apply_churn(self, dt: float) -> None:
        apply_round_churn(
            self,
            dt,
            admit=lambda peer_id: self._admit(peer_id, self._default_spending_rate()),
            refresh_neighbor=self._refresh_routing_row,
        )

    # ------------------------------------------------------------------ taxation

    def _apply_taxation(self, income: np.ndarray) -> None:
        apply_income_taxation(self, income, self._time)

    # ------------------------------------------------------------------ main loop

    def _routing_pack(self) -> _RoutingPack:
        """Return the CSR routing arrays of the alive population.

        Rebuilt lazily after any membership/routing change; on static
        overlays the pack is built once and reused for the whole run.
        Memory and build time scale with the edge count, never with
        ``N × max_degree``.
        """
        if self._pack is None:
            alive_slots = np.flatnonzero(self._alive)
            count = alive_slots.size
            empty_nbr = np.empty(0, dtype=self.config.options.index_dtype)
            rows = [self._neighbors.get(int(slot), empty_nbr) for slot in alive_slots]
            degrees = np.fromiter(
                (row.size for row in rows), dtype=np.int64, count=count
            )
            row_start = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(degrees, out=row_start[1:])
            if count:
                edge_dst = np.concatenate(rows)
                edge_cdf = np.concatenate(
                    [self._cdfs.get(int(slot), empty_nbr) for slot in alive_slots]
                )
            else:
                edge_dst = empty_nbr
                edge_cdf = np.empty(0)
            # float64 offsets regardless of the state dtype: adding 3r to a
            # float32 CDF stops resolving distinct probabilities once r is
            # large, while a float64 add of a float32 cdf value is exact.
            flat = edge_cdf.astype(np.float64, copy=False) + 3.0 * np.repeat(
                np.arange(count, dtype=np.float64), degrees
            )
            shard_rows = None
            if self._shard_plan is not None:
                shard_of_rows = self._shard_of_slot[alive_slots]
                shard_rows = [
                    np.flatnonzero(shard_of_rows == shard)
                    for shard in range(self._shard_plan.shards)
                ]
            self._pack = _RoutingPack(
                alive_slots, degrees, row_start, edge_dst, flat, shard_rows
            )
        return self._pack

    def _route_credits_vectorized(
        self, pack: _RoutingPack, spendable: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        """Route every credit of the round with one batched binary search.

        The segmented CDF array is globally sorted (row ``r`` occupies
        ``(3r, 3r + 1]``), so one ``searchsorted`` against the whole edge
        array resolves every credit; entries of earlier rows are at most
        ``3r - 2`` and can never capture row ``r``'s draws.
        """
        rows = np.repeat(np.arange(pack.alive_slots.size), spendable)
        hits = np.searchsorted(pack.flat, draws + 3.0 * rows, side="right")
        # `u + 3r` can round up to exactly the row's final cdf value (e.g.
        # u = 1 - 2**-53 at row 1 rounds to 4.0), which would index one past
        # the row's last edge; clamp those ~ulp-probability draws onto it.
        hits = np.minimum(hits, pack.row_start[rows + 1] - 1)
        destinations = pack.edge_dst[hits]
        return np.bincount(destinations, minlength=self._capacity).astype(float)

    def _route_credits_sharded(
        self,
        pack: _RoutingPack,
        spendable: np.ndarray,
        draws: np.ndarray,
        observing: bool,
    ) -> Tuple[np.ndarray, int]:
        """Route the round's credits shard by shard, concurrently.

        Each shard task runs :func:`_route_shard_rows` over its own spender
        rows against the shared read-only pack; the boundary-exchange
        phase is the ordered sum of the returned income buffers (exact —
        integer counts in float64), so the merged income is byte-identical
        to :meth:`_route_credits_vectorized` on the same draws.  Boundary
        destinations are only counted when telemetry is observing.
        """
        from repro.runner.shard import run_shard_tasks

        row_offsets = np.zeros(spendable.size + 1, dtype=np.int64)
        np.cumsum(spendable, out=row_offsets[1:])
        shard_of_slot = self._shard_of_slot if observing else None
        tasks = [
            functools.partial(
                _route_shard_rows,
                pack.flat,
                pack.edge_dst,
                pack.row_start,
                rows,
                spendable,
                row_offsets,
                draws,
                self._capacity,
                shard_of_slot,
                shard,
            )
            for shard, rows in enumerate(pack.shard_rows)
        ]
        income = np.zeros(self._capacity)
        boundary = 0
        for shard_income, shard_boundary in run_shard_tasks(
            tasks, backend=self._shard_backend
        ):
            if shard_income is not None:
                income += shard_income
            boundary += shard_boundary
        return income, boundary

    def _route_credits_loop(
        self, pack: _RoutingPack, spendable: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        """Per-spender routing loop (the benchmark baseline).

        Consumes the draws exactly like the vectorized kernel — the same
        inverse-CDF search against the same edge-segment values — so both
        kernels produce bit-identical income vectors.
        """
        income = self._income
        income.fill(0.0)
        offset = 0
        for row in range(pack.alive_slots.size):
            to_spend = int(spendable[row])
            if to_spend == 0:
                continue
            uniforms = draws[offset : offset + to_spend]
            offset += to_spend
            start = pack.row_start[row]
            end = pack.row_start[row + 1]
            segment = pack.flat[start:end]
            hits = np.searchsorted(segment, uniforms + 3.0 * row, side="right")
            hits = np.minimum(hits, pack.degrees[row] - 1)
            np.add.at(income, pack.edge_dst[start:end][hits], 1.0)
        return income

    def _spending_round(self, dt: float) -> None:
        rng = self._rng
        pack = self._routing_pack()
        alive_slots = pack.alive_slots
        if alive_slots.size == 0:
            return
        balances = self._balance[alive_slots]
        rates = self.config.spending_policy.effective_rate_vector(
            self._base_mu[alive_slots], balances
        )
        intended = rng.poisson(rates * dt)
        spendable = np.minimum(intended, np.floor(balances).astype(np.int64))
        spendable = np.where(pack.degrees > 0, spendable, 0)
        total = int(spendable.sum())
        if total == 0:
            # Nobody spent: skip the transfer machinery entirely, but still
            # show the (all-zero) income to the tax policy — rebate rounds
            # may fire on a quiet round once the pool is full.
            self._apply_taxation(self._zero_income)
            return
        draws = rng.random(total)
        # The kernel runs tens of thousands of times per second, so its
        # timing is a pre-measured `timing()` event rather than a `span()`
        # context manager — roughly half the per-round instrumentation
        # cost, which the telemetry-overhead CI gate holds under 5%.
        options = self.config.options
        emitter = get_emitter()
        observing = emitter.enabled and options.telemetry
        kernel_started = time.perf_counter() if observing else 0.0
        boundary = 0
        if options.kernel == "loop":
            income = self._route_credits_loop(pack, spendable, draws)
        elif self._shard_plan is not None:
            income, boundary = self._route_credits_sharded(
                pack, spendable, draws, observing
            )
        else:
            income = self._route_credits_vectorized(pack, spendable, draws)
        if observing:
            emitter.timing(
                "market.kernel." + options.kernel,
                time.perf_counter() - kernel_started,
            )
            if self._shard_plan is not None:
                emitter.counter("market.shard.boundary_credits", float(boundary))
        spent = spendable.astype(float)
        self._balance[alive_slots] -= spent
        self._spent[alive_slots] += spent
        self.total_transfers += total
        received = np.flatnonzero(income > 0)
        self._balance[received] += income[received]
        self._earned[received] += income[received]
        self._apply_taxation(income)

    def total_rounds(self) -> int:
        """Number of simulation rounds the configured horizon spans."""
        return int(np.ceil(self.config.horizon / self.config.step))

    def advance_rounds(self, rounds: int) -> None:
        """Advance the simulation by ``rounds`` rounds (without finalising).

        ``run()`` is ``advance_rounds(total_rounds())`` + ``finalize()``;
        intra-run partitioning (:mod:`repro.runner.partition`) advances the
        same rounds in checkpointed blocks, which yields an identical state
        because each round's draws depend only on the state before it.
        """
        dt = self.config.step
        observing = get_emitter().enabled and self.config.options.telemetry
        started = time.perf_counter() if observing else 0.0
        for _ in range(rounds):
            if self._time + 1e-9 >= self._next_sample:
                self._record_sample()
                self._next_sample += self.config.sample_interval
            self._apply_churn(dt)
            self._spending_round(dt)
            self._time += dt
        if observing and rounds:
            elapsed = max(time.perf_counter() - started, 1e-9)
            get_emitter().gauge("market.steps_per_second", rounds / elapsed)

    def finalize(self) -> MarketSimResult:
        """Record the final sample and assemble the run's result."""
        self._record_sample()
        return self._build_result()

    def run(self) -> MarketSimResult:
        """Run the simulation for the configured horizon and return the result."""
        self.advance_rounds(self.total_rounds())
        return self.finalize()

    def _record_sample(self) -> None:
        alive_slots = np.flatnonzero(self._alive)
        emitter = get_emitter()
        observing = emitter.enabled and self.config.options.telemetry
        before = len(self.recorder.gini_series.x) if observing else 0
        self.recorder.record(self._time, self._balance[alive_slots])
        # Stream the freshly recorded sample (the recorder drops empty
        # populations, so only emit when it actually appended one).
        if observing and len(self.recorder.gini_series.x) > before:
            emitter.point("market.gini", self._time, self.recorder.gini_series.y[-1])
            emitter.point(
                "market.bankrupt_fraction", self._time, self.recorder.bankrupt_series.y[-1]
            )
            emitter.point(
                "market.mean_wealth", self._time, self.recorder.mean_wealth_series.y[-1]
            )
            emitter.point("market.population", self._time, float(alive_slots.size))
            if self._shard_plan is not None and alive_slots.size:
                sizes = np.bincount(
                    self._shard_of_slot[alive_slots],
                    minlength=self._shard_plan.shards,
                )
                ideal = alive_slots.size / self._shard_plan.shards
                emitter.point(
                    "market.shard.imbalance", self._time, float(sizes.max() / ideal)
                )

    def _build_result(self) -> MarketSimResult:
        alive_slots = np.flatnonzero(self._alive)
        elapsed = max(self._time, 1e-9)
        return MarketSimResult(
            config=self.config,
            recorder=self.recorder,
            final_wealths=self._balance[alive_slots].copy(),
            spending_rates=self._spent[alive_slots] / elapsed,
            earning_rates=self._earned[alive_slots] / elapsed,
            total_transfers=self.total_transfers,
            joins=self.joins,
            leaves=self.leaves,
            extras={
                "tax_pool": self._tax_pool,
                "final_population": int(alive_slots.size),
            },
        )

    # ------------------------------------------------------------------ conveniences

    @classmethod
    def run_config(
        cls,
        config: MarketSimConfig,
        topology: Optional[OverlayTopology] = None,
        snapshot_times: Optional[Sequence[float]] = None,
    ) -> MarketSimResult:
        """Build a simulator for ``config`` and run it to completion.

        When an intra-run partition context is active (see
        :mod:`repro.runner.partition`), the run executes as checkpointed
        round-blocks through that context instead — producing bit-identical
        results, since block boundaries only pickle/unpickle the state the
        monolithic loop would carry anyway.
        """
        from repro.runner.partition import active_context

        context = active_context()
        if context is not None:
            return context.run_simulation(
                cls, config, topology=topology, snapshot_times=snapshot_times
            )
        return cls(config, topology=topology, snapshot_times=snapshot_times).run()
