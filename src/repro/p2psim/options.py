"""Shared kernel/dtype/telemetry options for the integrated simulators.

Both :class:`~repro.p2psim.config.MarketSimConfig` and
:class:`~repro.p2psim.config.StreamingSimConfig` historically carried their
own copy of the ``kernel`` knob; the dtype switch introduced with the CSR
kernels would have tripled that duplication.  :class:`KernelOptions` is the
one shared bundle both simulators consume:

* ``kernel`` — ``"vectorized"`` (default) or ``"loop"``; both kernels
  consume the same random draws and produce bit-identical results.
* ``dtype`` — ``"float64"`` (default) keeps the historical float64 state
  and int64 peer ids; ``"float32"`` narrows wealth/price/CDF state to
  float32 and peer-id/edge arrays to int32, roughly halving the memory of
  a million-peer run.  The segmented-CDF search keys stay float64 in both
  modes (see ``market_sim._RoutingPack``), so cross-kernel identity holds
  at either dtype; only the default dtype is bit-identical to the
  historical padded kernels.
* ``telemetry`` — when False, the simulators skip their per-round
  telemetry emission even while an emitter is enabled (useful to exclude
  instrumentation from micro-benchmarks without reconfiguring the global
  emitter).
* ``shards`` / ``partitioner`` / ``shard_backend`` — spatial peer-space
  sharding (see :mod:`repro.runner.shard`).  ``shards=1`` (default) runs
  the monolithic kernels; ``shards=N`` partitions the peers with the
  chosen ``partitioner`` (``"overlay"`` edge-cut-minimising BFS or the
  ``"hash"`` baseline) and executes each shard's kernel section
  concurrently on the ``shard_backend`` (``"thread"`` over GIL-releasing
  numpy sections, ``"process"`` fork fallback, or ``"serial"`` for
  debugging).  Sharded runs are byte-identical to monolithic runs, so
  these are pure execution knobs — the runner may also set them ambiently
  (without touching the config) via
  :func:`repro.runner.shard.shard_overrides`, which keeps artifact-cache
  keys shared between sharded and monolithic executions.

The options object is immutable (hashable, safely shareable between
configs); derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["KernelOptions", "KERNELS", "DTYPES", "PARTITIONERS", "SHARD_BACKENDS"]

#: Valid kernel implementations, in documentation order.
KERNELS: Tuple[str, ...] = ("vectorized", "loop")

#: Valid state-dtype switches.
DTYPES: Tuple[str, ...] = ("float64", "float32")

#: Valid spatial-shard partitioners (see :mod:`repro.runner.shard`).
PARTITIONERS: Tuple[str, ...] = ("overlay", "hash")

#: Valid shard execution backends.
SHARD_BACKENDS: Tuple[str, ...] = ("thread", "process", "serial")


@dataclass(frozen=True)
class KernelOptions:
    """Kernel selection and numeric-representation switches.

    Attributes
    ----------
    kernel:
        Hot-round implementation: ``"vectorized"`` (default) or ``"loop"``.
    dtype:
        ``"float64"`` (default, bit-compatible with the historical padded
        kernels) or ``"float32"`` (narrow state: float32 wealth/price/CDF,
        int32 peer ids).
    telemetry:
        Whether the simulators emit their per-round telemetry when an
        emitter is enabled (default True).
    shards:
        Spatial shard count (default 1 = monolithic).  ``shards > 1``
        requires the vectorized kernel.
    partitioner:
        Peer-space partitioner: ``"overlay"`` (default, edge-cut
        minimising BFS) or ``"hash"`` (``peer_id % shards`` baseline).
    shard_backend:
        Shard executor: ``"thread"`` (default), ``"process"`` or
        ``"serial"``.
    """

    kernel: str = "vectorized"
    dtype: str = "float64"
    telemetry: bool = True
    shards: int = 1
    partitioner: str = "overlay"
    shard_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.dtype not in DTYPES:
            raise ValueError(
                f"dtype must be one of {DTYPES}, got {self.dtype!r}"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ValueError(f"shards must be an int, got {self.shards!r}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {PARTITIONERS}, got {self.partitioner!r}"
            )
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if self.shards > 1 and self.kernel == "loop":
            raise ValueError(
                "shards > 1 requires the vectorized kernel; the per-spender "
                "loop kernel has no sharded form"
            )

    @classmethod
    def resolve(
        cls,
        kernel: "str | None" = None,
        dtype: "str | None" = None,
        telemetry: "bool | None" = None,
        shards: "int | None" = None,
        partitioner: "str | None" = None,
        shard_backend: "str | None" = None,
    ) -> "KernelOptions":
        """Build options from optional overrides (``None`` = default).

        The experiment point runners and the CLI expose ``kernel`` /
        ``dtype`` (and the shard knobs) as optional axes whose unset value
        must mean "the simulator default"; this constructor centralises
        that mapping.
        """
        return cls(
            kernel=cls.kernel if kernel is None else str(kernel),
            dtype=cls.dtype if dtype is None else str(dtype),
            telemetry=cls.telemetry if telemetry is None else bool(telemetry),
            shards=cls.shards if shards is None else int(shards),
            partitioner=cls.partitioner if partitioner is None else str(partitioner),
            shard_backend=(
                cls.shard_backend if shard_backend is None else str(shard_backend)
            ),
        )

    @property
    def float_dtype(self) -> np.dtype:
        """Numpy dtype of wealth/price/CDF state arrays."""
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)

    @property
    def index_dtype(self) -> np.dtype:
        """Numpy dtype of peer-id / edge-destination arrays."""
        return np.dtype(np.int32 if self.dtype == "float32" else np.int64)

    @property
    def is_narrow(self) -> bool:
        """Whether the narrow (float32/int32) representation is selected."""
        return self.dtype == "float32"
