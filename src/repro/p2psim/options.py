"""Shared kernel/dtype/telemetry options for the integrated simulators.

Both :class:`~repro.p2psim.config.MarketSimConfig` and
:class:`~repro.p2psim.config.StreamingSimConfig` historically carried their
own copy of the ``kernel`` knob; the dtype switch introduced with the CSR
kernels would have tripled that duplication.  :class:`KernelOptions` is the
one shared bundle both simulators consume:

* ``kernel`` — ``"vectorized"`` (default) or ``"loop"``; both kernels
  consume the same random draws and produce bit-identical results.
* ``dtype`` — ``"float64"`` (default) keeps the historical float64 state
  and int64 peer ids; ``"float32"`` narrows wealth/price/CDF state to
  float32 and peer-id/edge arrays to int32, roughly halving the memory of
  a million-peer run.  The segmented-CDF search keys stay float64 in both
  modes (see ``market_sim._RoutingPack``), so cross-kernel identity holds
  at either dtype; only the default dtype is bit-identical to the
  historical padded kernels.
* ``telemetry`` — when False, the simulators skip their per-round
  telemetry emission even while an emitter is enabled (useful to exclude
  instrumentation from micro-benchmarks without reconfiguring the global
  emitter).

The options object is immutable (hashable, safely shareable between
configs); derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["KernelOptions", "KERNELS", "DTYPES"]

#: Valid kernel implementations, in documentation order.
KERNELS: Tuple[str, ...] = ("vectorized", "loop")

#: Valid state-dtype switches.
DTYPES: Tuple[str, ...] = ("float64", "float32")


@dataclass(frozen=True)
class KernelOptions:
    """Kernel selection and numeric-representation switches.

    Attributes
    ----------
    kernel:
        Hot-round implementation: ``"vectorized"`` (default) or ``"loop"``.
    dtype:
        ``"float64"`` (default, bit-compatible with the historical padded
        kernels) or ``"float32"`` (narrow state: float32 wealth/price/CDF,
        int32 peer ids).
    telemetry:
        Whether the simulators emit their per-round telemetry when an
        emitter is enabled (default True).
    """

    kernel: str = "vectorized"
    dtype: str = "float64"
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.dtype not in DTYPES:
            raise ValueError(
                f"dtype must be one of {DTYPES}, got {self.dtype!r}"
            )

    @classmethod
    def resolve(
        cls,
        kernel: "str | None" = None,
        dtype: "str | None" = None,
        telemetry: "bool | None" = None,
    ) -> "KernelOptions":
        """Build options from optional overrides (``None`` = default).

        The experiment point runners and the CLI expose ``kernel`` /
        ``dtype`` as optional axes whose unset value must mean "the
        simulator default"; this constructor centralises that mapping.
        """
        return cls(
            kernel=cls.kernel if kernel is None else str(kernel),
            dtype=cls.dtype if dtype is None else str(dtype),
            telemetry=cls.telemetry if telemetry is None else bool(telemetry),
        )

    @property
    def float_dtype(self) -> np.dtype:
        """Numpy dtype of wealth/price/CDF state arrays."""
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)

    @property
    def index_dtype(self) -> np.dtype:
        """Numpy dtype of peer-id / edge-destination arrays."""
        return np.dtype(np.int32 if self.dtype == "float32" else np.int64)

    @property
    def is_narrow(self) -> bool:
        """Whether the narrow (float32/int32) representation is selected."""
        return self.dtype == "float32"
