"""Mutable overlay topology with neighbour tables and join/leave support."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

__all__ = ["OverlayTopology"]


class OverlayTopology:
    """An undirected P2P overlay graph with explicit neighbour tables.

    Peers are identified by integer ids.  The class wraps an adjacency-set
    representation (rather than delegating every operation to networkx) so
    the hot paths used by the simulators — neighbour lookup, degree queries,
    join/leave — are dictionary operations; conversion to a
    :class:`networkx.Graph` is available for analysis.

    Examples
    --------
    >>> topo = OverlayTopology.from_edges(3, [(0, 1), (1, 2)])
    >>> sorted(topo.neighbors(1))
    [0, 2]
    >>> topo.degree(1)
    2
    """

    def __init__(self, peer_ids: Optional[Iterable[int]] = None) -> None:
        self._adjacency: Dict[int, Set[int]] = {}
        self._edge_count = 0
        if peer_ids is not None:
            for peer_id in peer_ids:
                self.add_peer(int(peer_id))

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_edges(cls, num_peers: int, edges: Iterable[Tuple[int, int]]) -> "OverlayTopology":
        """Build a topology on peers ``0..num_peers-1`` from an edge list."""
        topo = cls(range(num_peers))
        for u, v in edges:
            topo.add_edge(int(u), int(v))
        return topo

    @classmethod
    def from_edge_arrays(
        cls, num_peers: int, src: np.ndarray, dst: np.ndarray
    ) -> "OverlayTopology":
        """Bulk-build a topology on peers ``0..num_peers-1`` from endpoint arrays.

        ``src[i]``–``dst[i]`` pairs are undirected edges; self-loops and
        duplicates (in either orientation) are dropped.  Unlike
        :meth:`from_edges`, the adjacency sets are materialised through
        array operations — one sort of the symmetrised edge list plus one
        C-level ``set()`` construction per peer — so million-peer overlays
        build in seconds instead of the minutes a per-edge Python loop
        takes.  The result is identical to feeding the same (deduplicated)
        edges through :meth:`from_edges`.
        """
        num_peers = int(num_peers)
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (
            int(src.min()) < 0
            or int(dst.min()) < 0
            or int(src.max()) >= num_peers
            or int(dst.max()) >= num_peers
        ):
            raise ValueError("edge endpoints must lie in [0, num_peers)")
        keep = src != dst
        src, dst = src[keep], dst[keep]
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        unique_keys = np.unique(lo * num_peers + hi)
        lo, hi = unique_keys // num_peers, unique_keys % num_peers
        topo = cls()
        topo._adjacency = {peer: set() for peer in range(num_peers)}
        endpoint = np.concatenate([lo, hi])
        other = np.concatenate([hi, lo])
        order = np.argsort(endpoint, kind="stable")
        endpoint, other = endpoint[order], other[order]
        boundaries = np.searchsorted(endpoint, np.arange(num_peers + 1))
        for peer in range(num_peers):
            start, end = int(boundaries[peer]), int(boundaries[peer + 1])
            if end > start:
                topo._adjacency[peer] = set(other[start:end].tolist())
        topo._edge_count = int(unique_keys.size)
        return topo

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "OverlayTopology":
        """Build a topology from an undirected networkx graph (nodes must be ints)."""
        topo = cls(int(node) for node in graph.nodes)
        for u, v in graph.edges:
            if u != v:
                topo.add_edge(int(u), int(v))
        return topo

    def to_networkx(self) -> nx.Graph:
        """Return a networkx copy of the overlay (for analysis/plotting)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        graph.add_edges_from(self.edges())
        return graph

    def copy(self) -> "OverlayTopology":
        """Return a deep copy of the topology."""
        clone = OverlayTopology(self._adjacency)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    # ------------------------------------------------------------------ peers

    def add_peer(self, peer_id: int) -> None:
        """Add an isolated peer (no-op if already present)."""
        self._adjacency.setdefault(int(peer_id), set())

    def remove_peer(self, peer_id: int) -> List[int]:
        """Remove a peer and all its edges; return its former neighbours."""
        peer_id = int(peer_id)
        if peer_id not in self._adjacency:
            raise KeyError(f"peer {peer_id} is not in the overlay")
        former = sorted(self._adjacency[peer_id])
        for neighbor in former:
            self._adjacency[neighbor].discard(peer_id)
            self._edge_count -= 1
        del self._adjacency[peer_id]
        return former

    def has_peer(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is currently in the overlay."""
        return int(peer_id) in self._adjacency

    def peers(self) -> List[int]:
        """Sorted list of current peer ids."""
        return sorted(self._adjacency)

    @property
    def num_peers(self) -> int:
        """Number of peers currently in the overlay."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently in the overlay."""
        return self._edge_count

    # ------------------------------------------------------------------ edges

    def add_edge(self, u: int, v: int) -> bool:
        """Connect peers ``u`` and ``v``; returns False if the edge already existed."""
        u, v = int(u), int(v)
        if u == v:
            raise ValueError("self-loops are not allowed in the overlay")
        if u not in self._adjacency or v not in self._adjacency:
            raise KeyError(f"both endpoints must be in the overlay (got {u}, {v})")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edge_count += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Disconnect peers ``u`` and ``v`` (raises KeyError if not connected)."""
        u, v = int(u), int(v)
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise KeyError(f"edge ({u}, {v}) is not in the overlay")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1

    def has_edge(self, u: int, v: int) -> bool:
        """Whether peers ``u`` and ``v`` are neighbours."""
        return int(v) in self._adjacency.get(int(u), set())

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(min, max)`` tuples, sorted."""
        for u in sorted(self._adjacency):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------ neighbour queries

    def neighbors(self, peer_id: int) -> FrozenSet[int]:
        """Frozen set of neighbour ids of ``peer_id``."""
        peer_id = int(peer_id)
        if peer_id not in self._adjacency:
            raise KeyError(f"peer {peer_id} is not in the overlay")
        return frozenset(self._adjacency[peer_id])

    def degree(self, peer_id: int) -> int:
        """Number of neighbours of ``peer_id``."""
        peer_id = int(peer_id)
        if peer_id not in self._adjacency:
            raise KeyError(f"peer {peer_id} is not in the overlay")
        return len(self._adjacency[peer_id])

    def degrees(self) -> Dict[int, int]:
        """Mapping of peer id to degree for every peer."""
        return {peer: len(neigh) for peer, neigh in self._adjacency.items()}

    def mean_degree(self) -> float:
        """Average degree over current peers (0.0 for an empty overlay)."""
        if not self._adjacency:
            return 0.0
        return 2.0 * self._edge_count / len(self._adjacency)

    def isolated_peers(self) -> List[int]:
        """Peers with no neighbours."""
        return sorted(p for p, neigh in self._adjacency.items() if not neigh)

    # ------------------------------------------------------------------ structure metrics

    def is_connected(self) -> bool:
        """Whether the overlay is a single connected component (False when empty)."""
        if not self._adjacency:
            return False
        start = next(iter(self._adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._adjacency)

    def connected_components(self) -> List[Set[int]]:
        """Return connected components as a list of peer-id sets (largest first)."""
        remaining = set(self._adjacency)
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            components.append(seen)
            remaining -= seen
        components.sort(key=len, reverse=True)
        return components

    def degree_histogram(self) -> Dict[int, int]:
        """Return ``{degree: number of peers with that degree}``."""
        histogram: Dict[int, int] = {}
        for neighbors in self._adjacency.values():
            histogram[len(neighbors)] = histogram.get(len(neighbors), 0) + 1
        return histogram

    def partition_boundary_edges(self, shard_of) -> List[Tuple[int, int]]:
        """Edges whose endpoints fall in different shards, as sorted tuples.

        ``shard_of`` maps a peer id to its shard — either a callable (for
        example :meth:`~repro.runner.shard.ShardPlan.shard_of_peer`) or a
        mapping/array indexable by peer id.  These are exactly the edges
        whose traffic crosses the boundary-exchange phase of a sharded
        round.
        """
        shard = shard_of if callable(shard_of) else shard_of.__getitem__
        return [(u, v) for u, v in self.edges() if shard(u) != shard(v)]

    def partition_metrics(self, shard_of) -> Dict[str, object]:
        """Quality metrics of a peer-space partition over this overlay.

        Returns ``edge_cut`` (boundary edge count), ``total_edges``,
        ``cut_fraction``, per-shard ``shard_sizes`` and ``imbalance``
        (largest shard over the balanced ideal; 1.0 is perfect).
        """
        shard = shard_of if callable(shard_of) else shard_of.__getitem__
        sizes: Dict[int, int] = {}
        for peer in self._adjacency:
            key = int(shard(peer))
            sizes[key] = sizes.get(key, 0) + 1
        edge_cut = sum(1 for u, v in self.edges() if shard(u) != shard(v))
        shard_sizes = {key: sizes[key] for key in sorted(sizes)}
        ideal = self.num_peers / len(shard_sizes) if shard_sizes else 0.0
        return {
            "edge_cut": edge_cut,
            "total_edges": self._edge_count,
            "cut_fraction": edge_cut / self._edge_count if self._edge_count else 0.0,
            "shard_sizes": shard_sizes,
            "imbalance": max(shard_sizes.values()) / ideal if shard_sizes else 1.0,
        }

    def adjacency_matrix(self, order: Optional[List[int]] = None) -> np.ndarray:
        """Dense 0/1 adjacency matrix in the given peer order (default: sorted ids)."""
        order = list(order) if order is not None else self.peers()
        index = {peer: i for i, peer in enumerate(order)}
        matrix = np.zeros((len(order), len(order)))
        for u, v in self.edges():
            if u in index and v in index:
                matrix[index[u], index[v]] = 1.0
                matrix[index[v], index[u]] = 1.0
        return matrix

    def csr_adjacency(
        self, order: Optional[List[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat CSR adjacency: ``(row_start, col_indices)`` in the given peer order.

        Row ``r`` of the implied matrix lists the neighbours of
        ``order[r]`` as positions into ``order``, ascending:
        ``col_indices[row_start[r]:row_start[r+1]]``.  This is the
        segmented layout the million-peer simulator kernels consume —
        memory scales with the edge count (``2 × num_edges`` int64
        entries), never ``N × max_degree`` padding or the ``N²`` cells of
        :meth:`adjacency_matrix`.  Peers outside ``order`` are ignored,
        matching :meth:`adjacency_matrix`.
        """
        order = list(order) if order is not None else self.peers()
        index = {peer: i for i, peer in enumerate(order)}
        count = len(order)
        rows = [
            sorted(
                index[neighbor]
                for neighbor in self._adjacency.get(peer, ())
                if neighbor in index
            )
            for peer in order
        ]
        row_start = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(row) for row in rows), dtype=np.int64, count=count),
            out=row_start[1:],
        )
        col_indices = np.fromiter(
            (col for row in rows for col in row),
            dtype=np.int64,
            count=int(row_start[-1]),
        )
        return row_start, col_indices

    # ------------------------------------------------------------------ dunder

    def __contains__(self, peer_id: int) -> bool:
        return self.has_peer(peer_id)

    def __len__(self) -> int:
        return self.num_peers

    def __repr__(self) -> str:
        return f"OverlayTopology(num_peers={self.num_peers}, num_edges={self.num_edges})"
