"""Overlay topology generators.

The paper (Sec. VI) uses scale-free overlays where the neighbour count
follows a power law ``P(D) ~ D^{-k}`` with shape ``k = 2.5`` and an average
of 20 neighbours.  :func:`scale_free_topology` reproduces exactly that
parameterisation via a degree-targeted configuration model; the other
generators (Barabási–Albert, Erdős–Rényi, random-regular, ring, complete)
support ablations and baselines.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = [
    "powerlaw_degree_sequence",
    "powerlaw_configuration_topology",
    "LARGE_OVERLAY_THRESHOLD",
    "scale_free_topology",
    "barabasi_albert_topology",
    "erdos_renyi_topology",
    "random_regular_topology",
    "ring_topology",
    "complete_topology",
]


def powerlaw_degree_sequence(
    num_peers: int,
    shape: float = 2.5,
    mean_degree: float = 20.0,
    min_degree: int = 2,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Sample a degree sequence with ``P(D) ~ D^{-shape}`` and a target mean degree.

    Degrees are drawn from a discrete bounded Pareto (Zipf-like) distribution
    on ``[min_degree, num_peers - 1]``; the maximum-degree cut-off is then
    tuned by bisection so the realised mean matches ``mean_degree`` closely.
    The sequence sum is forced to be even so a graph realisation exists.

    Parameters
    ----------
    num_peers:
        Number of peers (length of the sequence).
    shape:
        Power-law exponent ``k`` of the paper (default 2.5).
    mean_degree:
        Target average number of neighbours (default 20, as in the paper).
    min_degree:
        Smallest allowed degree (keeps the overlay connected in practice).
    rng, seed:
        Randomness source; ``rng`` takes precedence when both are given.
    """
    if num_peers < 2:
        raise ValueError(f"num_peers must be at least 2, got {num_peers}")
    check_positive(shape, "shape")
    check_positive(mean_degree, "mean_degree")
    if min_degree < 1:
        raise ValueError(f"min_degree must be at least 1, got {min_degree}")
    if mean_degree >= num_peers:
        raise ValueError("mean_degree must be smaller than num_peers")
    if mean_degree < min_degree:
        raise ValueError("mean_degree must be at least min_degree")
    rng = rng if rng is not None else make_rng(seed, "powerlaw-degrees")

    max_degree_cap = num_peers - 1

    def mean_for(lower: float) -> float:
        # Expected degree of the truncated discrete power law starting at `lower`.
        support = np.arange(max(int(round(lower)), 1), max_degree_cap + 1, dtype=float)
        weights = support ** (-shape)
        weights /= weights.sum()
        return float((support * weights).sum())

    # The mean of a power law with fixed exponent is controlled mostly by the
    # lower cut-off; bisect the (possibly fractional) lower cut-off so that a
    # mixture of floor/ceil cut-offs hits the target mean.
    lo, hi = float(min_degree), float(max_degree_cap)
    if mean_for(lo) > mean_degree:
        lower_cut = lo
    elif mean_for(hi) < mean_degree:
        lower_cut = hi
    else:
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if mean_for(mid) < mean_degree:
                lo = mid
            else:
                hi = mid
        lower_cut = (lo + hi) / 2.0

    low_floor = max(int(np.floor(lower_cut)), min_degree)
    low_ceil = min(max(int(np.ceil(lower_cut)), min_degree), max_degree_cap)
    mean_floor = mean_for(low_floor)
    mean_ceil = mean_for(low_ceil)
    if low_floor == low_ceil or mean_ceil == mean_floor:
        mix = 0.0
    else:
        mix = float(np.clip((mean_degree - mean_floor) / (mean_ceil - mean_floor), 0.0, 1.0))

    def sample(lower: int, count: int) -> np.ndarray:
        support = np.arange(lower, max_degree_cap + 1, dtype=float)
        weights = support ** (-shape)
        weights /= weights.sum()
        return rng.choice(support, size=count, p=weights).astype(int)

    use_ceil = rng.random(num_peers) < mix
    degrees = np.empty(num_peers, dtype=int)
    n_ceil = int(use_ceil.sum())
    if n_ceil:
        degrees[use_ceil] = sample(low_ceil, n_ceil)
    if num_peers - n_ceil:
        degrees[~use_ceil] = sample(low_floor, num_peers - n_ceil)

    if degrees.sum() % 2 == 1:
        # Make the total degree even by bumping the smallest entry.
        degrees[int(np.argmin(degrees))] += 1
    return degrees


#: Population size at which :func:`powerlaw_configuration_topology` switches
#: from the networkx configuration model to the array-based stub pairing.
#: Both realise the same distribution, but they consume randomness
#: differently, so the switch sits far above every seeded golden topology
#: (paper-scale runs use N ≤ 10^4) to keep those bit-identical.
LARGE_OVERLAY_THRESHOLD = 50_000


def powerlaw_configuration_topology(
    num_peers: int,
    shape: float = 2.5,
    mean_degree: float = 20.0,
    min_degree: int = 2,
    seed: Optional[int] = None,
) -> OverlayTopology:
    """Scale-free overlay from a power-law degree sequence via the configuration model.

    Multi-edges and self-loops produced by the configuration model are
    discarded, and the largest connected component is patched to include all
    peers (isolated peers get an edge to a random well-connected peer), so
    the result is always a simple connected overlay.

    Below :data:`LARGE_OVERLAY_THRESHOLD` peers the realisation goes through
    ``networkx.configuration_model`` (unchanged historical path, so seeded
    topologies stay bit-identical); at or above it the same stub-pairing
    model runs as pure array operations — shuffle the stub multiset, pair
    consecutive stubs, bulk-load via
    :meth:`~repro.overlay.topology.OverlayTopology.from_edge_arrays` — which
    builds a million-peer overlay in seconds instead of tens of minutes of
    per-edge Python/networkx object churn.
    """
    rng = make_rng(seed, "configuration-model")
    degrees = powerlaw_degree_sequence(
        num_peers, shape=shape, mean_degree=mean_degree, min_degree=min_degree, rng=rng
    )
    if num_peers >= LARGE_OVERLAY_THRESHOLD:
        stubs = np.repeat(np.arange(num_peers, dtype=np.int64), degrees)
        stubs = rng.permutation(stubs)
        topo = OverlayTopology.from_edge_arrays(num_peers, stubs[0::2], stubs[1::2])
    else:
        graph = nx.configuration_model(
            degrees.tolist(), seed=int(rng.integers(2**31 - 1))
        )
        graph = nx.Graph(graph)  # drop parallel edges
        graph.remove_edges_from(nx.selfloop_edges(graph))
        topo = OverlayTopology.from_networkx(graph)
    _patch_connectivity(topo, rng)
    return topo


def scale_free_topology(
    num_peers: int,
    shape: float = 2.5,
    mean_degree: float = 20.0,
    seed: Optional[int] = None,
) -> OverlayTopology:
    """The paper's default overlay: power-law degrees (shape 2.5), mean degree 20.

    This is a thin alias of :func:`powerlaw_configuration_topology` with the
    paper's Sec. VI parameters as defaults.
    """
    return powerlaw_configuration_topology(
        num_peers, shape=shape, mean_degree=mean_degree, seed=seed
    )


def barabasi_albert_topology(
    num_peers: int, attachments: int = 10, seed: Optional[int] = None
) -> OverlayTopology:
    """Barabási–Albert preferential-attachment overlay (mean degree ≈ 2 × attachments)."""
    if num_peers <= attachments:
        raise ValueError("num_peers must exceed the number of attachments per new peer")
    graph = nx.barabasi_albert_graph(num_peers, attachments, seed=seed)
    return OverlayTopology.from_networkx(graph)


def erdos_renyi_topology(
    num_peers: int, mean_degree: float = 20.0, seed: Optional[int] = None
) -> OverlayTopology:
    """Erdős–Rényi overlay with edge probability chosen for the target mean degree."""
    check_positive(mean_degree, "mean_degree")
    if num_peers < 2:
        raise ValueError("num_peers must be at least 2")
    probability = min(1.0, mean_degree / (num_peers - 1))
    graph = nx.fast_gnp_random_graph(num_peers, probability, seed=seed)
    topo = OverlayTopology.from_networkx(graph)
    for peer in range(num_peers):
        topo.add_peer(peer)
    _patch_connectivity(topo, make_rng(seed, "er-patch"))
    return topo


def random_regular_topology(
    num_peers: int, degree: int = 20, seed: Optional[int] = None
) -> OverlayTopology:
    """Random regular overlay where every peer has exactly ``degree`` neighbours."""
    if degree >= num_peers:
        raise ValueError("degree must be smaller than num_peers")
    if (degree * num_peers) % 2 == 1:
        raise ValueError("degree * num_peers must be even for a regular graph to exist")
    graph = nx.random_regular_graph(degree, num_peers, seed=seed)
    return OverlayTopology.from_networkx(graph)


def ring_topology(num_peers: int) -> OverlayTopology:
    """Ring overlay (each peer has exactly two neighbours)."""
    if num_peers < 3:
        raise ValueError("a ring needs at least 3 peers")
    edges = [(i, (i + 1) % num_peers) for i in range(num_peers)]
    return OverlayTopology.from_edges(num_peers, edges)


def complete_topology(num_peers: int) -> OverlayTopology:
    """Complete overlay (every pair of peers connected) — the Dandekar et al. setting."""
    if num_peers < 2:
        raise ValueError("a complete overlay needs at least 2 peers")
    edges = [(i, j) for i in range(num_peers) for j in range(i + 1, num_peers)]
    return OverlayTopology.from_edges(num_peers, edges)


def _patch_connectivity(topo: OverlayTopology, rng: np.random.Generator) -> None:
    """Connect all components to the largest one with single random edges."""
    components = topo.connected_components()
    if len(components) <= 1:
        return
    main = components[0]
    main_list = sorted(main)
    for component in components[1:]:
        source = sorted(component)[int(rng.integers(len(component)))]
        target = main_list[int(rng.integers(len(main_list)))]
        topo.add_edge(source, target)
        main.update(component)
        main_list = sorted(main)
