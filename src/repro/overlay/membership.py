"""Tracker-style membership service for dynamic overlays.

When peers join a dynamic overlay (Sec. VI-E of the paper) they must be
wired into the existing mesh.  The :class:`MembershipTracker` plays the role
of the tracker/bootstrap server of a real deployment: it knows the current
population and hands each newcomer a set of neighbour candidates, with a
degree-proportional ("rich get more neighbours") bias so the scale-free
shape of the overlay is preserved under churn.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.overlay.topology import OverlayTopology
from repro.utils.rng import make_rng

__all__ = ["MembershipTracker"]


class MembershipTracker:
    """Bootstrap service that attaches joining peers to an overlay.

    Parameters
    ----------
    topology:
        The (mutable) overlay the tracker manages.
    target_degree:
        Number of neighbours handed to a joining peer (capped at the current
        population minus one).
    preferential:
        If True (default), neighbour candidates are sampled with probability
        proportional to ``degree + 1`` — preferential attachment, preserving
        the scale-free character of the paper's overlays under churn.  If
        False, candidates are sampled uniformly.
    seed:
        Randomness seed for candidate selection.
    """

    def __init__(
        self,
        topology: OverlayTopology,
        target_degree: int = 20,
        preferential: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if target_degree < 1:
            raise ValueError(f"target_degree must be at least 1, got {target_degree}")
        self.topology = topology
        self.target_degree = int(target_degree)
        self.preferential = bool(preferential)
        self._rng = make_rng(seed, "membership-tracker")
        self._next_peer_id = (max(topology.peers()) + 1) if topology.num_peers else 0
        self.joins = 0
        self.leaves = 0

    # ------------------------------------------------------------------ queries

    def population(self) -> int:
        """Current number of peers in the overlay."""
        return self.topology.num_peers

    def allocate_peer_id(self) -> int:
        """Reserve and return a fresh peer id (ids are never reused)."""
        peer_id = self._next_peer_id
        self._next_peer_id += 1
        return peer_id

    def select_neighbors(self, exclude: int, count: Optional[int] = None) -> List[int]:
        """Pick up to ``count`` neighbour candidates for a joining peer.

        Candidates never include ``exclude`` and are distinct.  Returns an
        empty list when the overlay is empty.
        """
        count = self.target_degree if count is None else int(count)
        candidates = [peer for peer in self.topology.peers() if peer != exclude]
        if not candidates or count <= 0:
            return []
        count = min(count, len(candidates))
        if self.preferential:
            weights = np.array(
                [self.topology.degree(peer) + 1.0 for peer in candidates], dtype=float
            )
            weights /= weights.sum()
            chosen = self._rng.choice(candidates, size=count, replace=False, p=weights)
        else:
            chosen = self._rng.choice(candidates, size=count, replace=False)
        return [int(peer) for peer in chosen]

    # ------------------------------------------------------------------ mutation

    def join(self, peer_id: Optional[int] = None, degree: Optional[int] = None) -> int:
        """Add a new peer to the overlay and wire it to neighbour candidates.

        Returns the id of the peer that joined.
        """
        if peer_id is None:
            peer_id = self.allocate_peer_id()
        else:
            peer_id = int(peer_id)
            self._next_peer_id = max(self._next_peer_id, peer_id + 1)
        if self.topology.has_peer(peer_id):
            raise ValueError(f"peer {peer_id} is already in the overlay")
        neighbors = self.select_neighbors(exclude=peer_id, count=degree)
        self.topology.add_peer(peer_id)
        for neighbor in neighbors:
            self.topology.add_edge(peer_id, neighbor)
        self.joins += 1
        return peer_id

    def leave(self, peer_id: int, repair: bool = True) -> List[int]:
        """Remove a peer; optionally repair the orphans it leaves behind.

        When ``repair`` is True, former neighbours that became isolated are
        re-attached to a random remaining peer, so the overlay never
        fragments into singleton components because of a departure.

        Returns the list of former neighbours of the departed peer.
        """
        former = self.topology.remove_peer(peer_id)
        self.leaves += 1
        if repair and self.topology.num_peers > 1:
            for orphan in former:
                if self.topology.has_peer(orphan) and self.topology.degree(orphan) == 0:
                    candidates = self.select_neighbors(exclude=orphan, count=1)
                    for candidate in candidates:
                        self.topology.add_edge(orphan, candidate)
        return former
