"""Peer churn: Poisson arrivals and exponential lifespans.

Sec. VI-E of the paper studies dynamic overlays under three regimes:

1. fixed expected overlay size, ``arrival rate × lifespan = size``;
2. fixed mean lifespan with varying arrival rate;
3. fixed arrival rate with varying mean lifespan.

:class:`ChurnProcess` drives all three: it schedules Poisson peer arrivals
and an exponentially-distributed lifetime for every peer (including the
peers present at time zero, if requested), and notifies registered callbacks
so the simulator can create/destroy peer agents and their credit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.overlay.membership import MembershipTracker
from repro.simulation.process import Process
from repro.utils.validation import check_positive

__all__ = ["ChurnConfig", "ChurnEvent", "ChurnEventType", "ChurnProcess"]


class ChurnEventType(enum.Enum):
    """Type of a churn notification."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """A single churn notification delivered to subscribers."""

    time: float
    peer_id: int
    event_type: ChurnEventType


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters.

    Attributes
    ----------
    arrival_rate:
        Expected peer arrivals per second (Poisson process).
    mean_lifespan:
        Expected peer lifetime in seconds (exponential distribution).
    churn_initial_peers:
        If True, peers present at simulation start are also given
        exponential lifetimes; if False they stay for the whole run.
    """

    arrival_rate: float
    mean_lifespan: float
    churn_initial_peers: bool = True

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.mean_lifespan, "mean_lifespan")

    @property
    def expected_population(self) -> float:
        """Little's-law expected steady-state population (arrival rate × lifespan)."""
        return self.arrival_rate * self.mean_lifespan

    @classmethod
    def for_population(
        cls, population: float, mean_lifespan: float, churn_initial_peers: bool = True
    ) -> "ChurnConfig":
        """Build a config whose steady-state population equals ``population``."""
        check_positive(population, "population")
        check_positive(mean_lifespan, "mean_lifespan")
        return cls(
            arrival_rate=population / mean_lifespan,
            mean_lifespan=mean_lifespan,
            churn_initial_peers=churn_initial_peers,
        )


JoinCallback = Callable[[int, float], None]
LeaveCallback = Callable[[int, float], None]


class ChurnProcess(Process):
    """Drives peer joins and leaves on a dynamic overlay.

    Parameters
    ----------
    config:
        Arrival/lifespan parameters.
    tracker:
        Membership tracker performing the topology surgery for each event.
    on_join / on_leave:
        Optional callbacks invoked as ``callback(peer_id, time)`` after the
        overlay has been updated.  The credit simulator uses these to create
        the peer's wallet (endowed with ``c`` credits) and to destroy it
        (removing the credits from the economy), as in the paper.
    """

    def __init__(
        self,
        config: ChurnConfig,
        tracker: MembershipTracker,
        on_join: Optional[JoinCallback] = None,
        on_leave: Optional[LeaveCallback] = None,
        name: str = "churn",
    ) -> None:
        super().__init__(name=name)
        self.config = config
        self.tracker = tracker
        self._on_join = on_join
        self._on_leave = on_leave
        self.events: List[ChurnEvent] = []
        self._departure_handles: Dict[int, object] = {}

    # ------------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        rng = self.engine.rng("churn")
        if self.config.churn_initial_peers:
            for peer_id in self.tracker.topology.peers():
                lifetime = rng.exponential(self.config.mean_lifespan)
                self._schedule_departure(peer_id, lifetime)
        self._schedule_next_arrival()

    def on_stop(self) -> None:
        for handle in self._departure_handles.values():
            handle.cancel()
        self._departure_handles.clear()

    # ------------------------------------------------------------------ internals

    def _schedule_next_arrival(self) -> None:
        rng = self.engine.rng("churn")
        delay = rng.exponential(1.0 / self.config.arrival_rate)
        self.call_in(delay, self._handle_arrival, label="churn.arrival")

    def _schedule_departure(self, peer_id: int, lifetime: float) -> None:
        handle = self.call_in(lifetime, lambda: self._handle_departure(peer_id),
                              label=f"churn.departure:{peer_id}")
        self._departure_handles[peer_id] = handle

    def _handle_arrival(self) -> None:
        rng = self.engine.rng("churn")
        peer_id = self.tracker.join()
        self.events.append(ChurnEvent(self.now, peer_id, ChurnEventType.JOIN))
        if self._on_join is not None:
            self._on_join(peer_id, self.now)
        lifetime = rng.exponential(self.config.mean_lifespan)
        self._schedule_departure(peer_id, lifetime)
        self._schedule_next_arrival()

    def _handle_departure(self, peer_id: int) -> None:
        self._departure_handles.pop(peer_id, None)
        if not self.tracker.topology.has_peer(peer_id):
            return
        self.tracker.leave(peer_id)
        self.events.append(ChurnEvent(self.now, peer_id, ChurnEventType.LEAVE))
        if self._on_leave is not None:
            self._on_leave(peer_id, self.now)

    # ------------------------------------------------------------------ statistics

    def join_count(self) -> int:
        """Number of join events generated so far."""
        return sum(1 for event in self.events if event.event_type is ChurnEventType.JOIN)

    def leave_count(self) -> int:
        """Number of leave events generated so far."""
        return sum(1 for event in self.events if event.event_type is ChurnEventType.LEAVE)
