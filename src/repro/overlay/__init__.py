"""P2P overlay substrate: topologies, membership and churn.

The paper's simulations use scale-free overlays (power-law degree
distribution with shape parameter 2.5 and mean degree 20) for a population
of 500–1000 peers, plus dynamic overlays with Poisson arrivals and
exponential lifespans (Sec. VI).  This package provides:

* :class:`~repro.overlay.topology.OverlayTopology` — mutable neighbour
  tables with join/leave support,
* generators for scale-free, Erdős–Rényi, regular, ring and complete
  topologies,
* :class:`~repro.overlay.membership.MembershipTracker` — a tracker-style
  membership service handing bootstrap neighbours to joining peers,
* :class:`~repro.overlay.churn.ChurnProcess` — Poisson arrival /
  exponential lifetime churn driving an open (dynamic) overlay.
"""

from repro.overlay.topology import OverlayTopology
from repro.overlay.generators import (
    barabasi_albert_topology,
    complete_topology,
    erdos_renyi_topology,
    powerlaw_configuration_topology,
    random_regular_topology,
    ring_topology,
    scale_free_topology,
)
from repro.overlay.membership import MembershipTracker
from repro.overlay.churn import ChurnConfig, ChurnEvent, ChurnProcess

__all__ = [
    "OverlayTopology",
    "scale_free_topology",
    "powerlaw_configuration_topology",
    "barabasi_albert_topology",
    "erdos_renyi_topology",
    "random_regular_topology",
    "ring_topology",
    "complete_topology",
    "MembershipTracker",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnProcess",
]
