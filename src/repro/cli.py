"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig3 --scale default --seed 7
    python -m repro.cli run fig9 --scale smoke --csv /tmp/fig9.csv

``list`` prints every registered experiment with its paper section; ``run``
executes one experiment and prints its tables (optionally also writing the
first table as CSV).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import describe_experiments, run_experiment
from repro.experiments.common import Scale

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Exploring the Sustainability of Credit-incentivized "
            "Peer-to-Peer Content Distribution' (ICDCSW 2012): run the paper's "
            "figure experiments."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig3 (see `list`)")
    run_parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=Scale.DEFAULT.value,
        help="reproduction scale (default: %(default)s)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    run_parser.add_argument(
        "--csv",
        default=None,
        help="optional path to write the first result table as CSV",
    )
    return parser


def _command_list() -> int:
    rows = describe_experiments()
    width = max(len(row["id"]) for row in rows)
    for row in rows:
        print(f"{row['id']:<{width}}  [Sec. {row['section']}]  {row['title']}")
    return 0


def _command_run(experiment: str, scale: str, seed: int, csv_path: Optional[str]) -> int:
    try:
        result = run_experiment(experiment, scale=scale, seed=seed)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(result.format())
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(result.table().to_csv())
        print(f"\nwrote {csv_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    return _command_run(args.experiment, args.scale, args.seed, args.csv)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro.cli`
    sys.exit(main())
