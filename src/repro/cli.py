"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig3 --scale default --seed 7
    python -m repro.cli run fig9 --scale smoke --csv /tmp/fig9.csv
    python -m repro.cli run fig11 --reps 8 --jobs 4
    python -m repro.cli sweep fig9-taxation-grid --reps 4 --jobs 4
    python -m repro.cli sweep fig11 --param mean_lifespan=500,1000 \
        --param rate_factor=1,2 --reps 4 --jobs 4 --cache-dir .repro-cache
    python -m repro.cli sweep fig1 --param initial_credits=12,200 \
        --param pricing_model=uniform,poisson-seller --scale smoke
    python -m repro.cli sweep fig7-paper --reps 4 --jobs 0 --cache-dir .repro-cache
    python -m repro.cli run fig7 --scale paper --intra-jobs 4 --cache-dir .repro-cache

``list`` prints every registered experiment with its paper section, the
sweep axes each experiment's point runner accepts, and the named scenario
bundles (including one ``figN-paper`` bundle per figure at the paper's
populations and horizons); ``run`` executes one experiment — with
``--reps > 1`` it replicates the whole experiment over independent seeds
through the ``repro.runner`` orchestrator and prints the
cross-replication aggregate (``--jobs``/``--cache-dir`` route a single
run through the orchestrator too, printing the experiment's own tables);
``sweep`` runs a parameter grid (a named scenario bundle or ad-hoc
``--param`` axes, validated against the experiment's declared axes before
anything executes) sharded over worker processes, with optional artifact
caching so interrupted or repeated sweeps skip completed shards.  Both
``run`` and ``sweep`` accept ``--intra-jobs N`` to additionally split
every market *and* streaming simulation into N checkpointed round-blocks
that pipeline across the worker pool and (with ``--cache-dir``) resume
interrupted paper-scale runs at block granularity — byte-identical to the
monolithic run in every case.  Every simulator-backed experiment exposes
the shared kernel options as ``kernel`` and ``dtype`` sweep axes —
``kernel`` selects the batched (``vectorized``) or per-peer (``loop``)
round implementation (bit-identical results), ``dtype`` the ``float64``
(default, exact) or ``float32`` (narrow, statistically equivalent) state
representation — and both ``run`` and ``sweep`` accept ``--kernel`` /
``--dtype`` flags that pin the setting on every shard::

    python -m repro.cli sweep fig5_6 --param simulator=streaming \
        --param kernel=loop,vectorized --scale smoke
    python -m repro.cli run fig7 --scale paper --dtype float32
    python -m repro.cli sweep fig7-paper --kernel loop --reps 4

``run``, ``sweep`` and ``serve`` also accept spatial sharding flags —
``--shards N`` executes every simulation's kernel sections over N
overlay-aware peer-space shards (``--partitioner overlay|hash`` picks the
partitioning strategy, ``--shard-backend thread|process|serial`` the
intra-round executor).  Sharding is pure execution policy: results are
byte-identical to the monolithic run and artifact-cache keys do not
change, unlike ``kernel``/``dtype`` which ride as explicit axes::

    python -m repro.cli run fig7 --scale paper --shards 4
    python -m repro.cli sweep fig11 --reps 4 --shards 2 --partitioner hash

``serve`` starts a resident sweep daemon (stdlib HTTP, JSON API): POST a
sweep job to ``/runs``, poll its status at ``/runs/<id>``, stream its live
per-round telemetry (Gini/bankruptcy series, kernel span timings, cache
counters) from ``/runs/<id>/metrics``, fetch the finished shard payloads
from ``/runs/<id>/result``, and read the committed benchmark history from
``/bench``.  Jobs run through the same orchestrator and artifact cache as
``sweep``, so daemon-run sweeps are byte-identical to CLI-run ones::

    python -m repro.cli serve --port 8765 --cache-dir .repro-cache

``analyze`` runs the determinism/checkpoint-safety static analyzer
(:mod:`repro.analysis`) over the given paths and exits non-zero on any
finding that is neither suppressed inline (``# repro: noqa RULE -- why``)
nor grandfathered in the committed baseline — the blocking CI gate::

    python -m repro.cli analyze src tests benchmarks --json report.json
    python -m repro.cli analyze --list-rules
    python -m repro.cli analyze src --write-baseline
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import describe_experiments, run_experiment
from repro.experiments.common import Scale
from repro.p2psim.options import DTYPES, KERNELS, PARTITIONERS, SHARD_BACKENDS

__all__ = ["build_parser", "main"]


def _print_error(error: Exception) -> int:
    # KeyError stringifies to its repr ("'message'"); unwrap for clean stderr.
    message = error.args[0] if error.args else str(error)
    print(message, file=sys.stderr)
    return 2


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reps", type=int, default=1, help="independent replications per configuration"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default: %(default)s)",
    )
    parser.add_argument(
        "--intra-jobs",
        type=int,
        default=1,
        help=(
            "round-blocks each market/streaming simulation is split into; "
            "blocks checkpoint into the cache and pipeline across workers "
            "(results are byte-identical to monolithic runs; default: "
            "%(default)s)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory; completed shards are reused across runs",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help=(
            "simulator kernel for every shard (both kernels are "
            "bit-identical; default: the simulator default, vectorized)"
        ),
    )
    parser.add_argument(
        "--dtype",
        choices=list(DTYPES),
        default=None,
        help=(
            "simulator state dtype for every shard: float64 (default, "
            "exact) or float32 (half the memory, statistically equivalent)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "spatial peer-space shards per simulation; kernel sections of "
            "each round execute per-shard and merge deterministically "
            "(byte-identical to the monolithic run; default: 1)"
        ),
    )
    parser.add_argument(
        "--partitioner",
        choices=list(PARTITIONERS),
        default=None,
        help=(
            "peer-space partitioning strategy for --shards: 'overlay' "
            "(edge-cut minimising BFS over the topology, default) or "
            "'hash' (peer-id modulo baseline)"
        ),
    )
    parser.add_argument(
        "--shard-backend",
        choices=list(SHARD_BACKENDS),
        default=None,
        help=(
            "executor for per-shard kernel sections: 'thread' (default), "
            "'process' (forked workers) or 'serial' (debugging)"
        ),
    )


def _kernel_axes(args: argparse.Namespace) -> dict:
    """Single-value grid axes implied by ``--kernel``/``--dtype`` flags."""
    axes = {}
    if args.kernel is not None:
        axes["kernel"] = [args.kernel]
    if args.dtype is not None:
        axes["dtype"] = [args.dtype]
    return axes


def _execution_plan(args: argparse.Namespace):
    """Build the :class:`~repro.runner.plan.ExecutionPlan` a parsed ``run``/
    ``sweep`` invocation implies.

    Raises ``ValueError`` for invalid combinations (notably ``--shards``
    above 1 with the per-peer ``--kernel loop``, which has no shardable
    kernel sections) so the CLI reports them before any simulation work.
    """
    from repro.runner import ExecutionPlan

    if (
        args.shards is not None
        and args.shards > 1
        and getattr(args, "kernel", None) == "loop"
    ):
        raise ValueError(
            "--shards > 1 requires the vectorized kernel; "
            "the per-peer loop kernel has no shardable sections"
        )
    return ExecutionPlan(
        intra_jobs=args.intra_jobs,
        shards=args.shards,
        partitioner=args.partitioner,
        shard_backend=args.shard_backend,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Exploring the Sustainability of Credit-incentivized "
            "Peer-to-Peer Content Distribution' (ICDCSW 2012): run the paper's "
            "figure experiments."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments and sweep scenarios")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig3 (see `list`)")
    run_parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=Scale.DEFAULT.value,
        help="reproduction scale (default: %(default)s)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    run_parser.add_argument(
        "--csv",
        default=None,
        help="optional path to write the first result table as CSV",
    )
    _add_sweep_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a parameter sweep (named scenario or experiment id with --param axes)",
    )
    sweep_parser.add_argument(
        "target",
        help="scenario name (e.g. fig9-taxation-grid) or sweepable experiment id",
    )
    sweep_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V1,V2",
        help="grid axis, repeatable; e.g. --param tax_rate=0.1,0.2",
    )
    sweep_parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=None,
        help=(
            "reproduction scale; a named scenario keeps its pinned scale "
            "(e.g. figN-paper bundles run at paper scale) unless this is "
            "given, ad-hoc sweeps default to 'default'"
        ),
    )
    sweep_parser.add_argument("--seed", type=int, default=0, help="sweep base seed")
    sweep_parser.add_argument(
        "--csv", default=None, help="optional path to write the aggregate table as CSV"
    )
    _add_sweep_options(sweep_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the resident sweep daemon (JSON API with live per-round metrics)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="bind port, 0 = ephemeral (default: %(default)s)"
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory shared by all submitted sweeps",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes per sweep job; 1 (the default) runs shards "
            "in-process so simulator metrics stream live"
        ),
    )
    serve_parser.add_argument(
        "--intra-jobs", type=int, default=1, help="round-blocks per simulation"
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="default spatial shards per simulation for submitted jobs",
    )
    serve_parser.add_argument(
        "--partitioner",
        choices=list(PARTITIONERS),
        default=None,
        help="default peer-space partitioner for submitted jobs",
    )
    serve_parser.add_argument(
        "--bench-root",
        default=None,
        help="directory scanned for BENCH_*.json by /bench (default: repo root)",
    )

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="run the determinism/checkpoint-safety static analyzer",
    )
    analyze_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the machine-readable report (CI uploads this as an artifact)",
    )
    analyze_parser.add_argument(
        "--baseline",
        default=".repro-analysis-baseline.json",
        metavar="PATH",
        help="baseline of grandfathered findings (default: %(default)s)",
    )
    analyze_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding as gating)",
    )
    analyze_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "regenerate the baseline from the current findings (justifications "
            "of surviving entries are preserved) and exit 0"
        ),
    )
    analyze_parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only the named rules (default: all registered rules)",
    )
    analyze_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its contract and exit",
    )
    analyze_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    analyze_parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "restrict the report to files whose content hash differs from the "
            "cached project model, plus their transitive reverse importers "
            "(cold cache = full run)"
        ),
    )
    analyze_parser.add_argument(
        "--cache-dir",
        default=".repro-analysis-cache",
        metavar="DIR",
        help="incremental project-model cache directory (default: %(default)s)",
    )
    analyze_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="build the project model from scratch and persist nothing",
    )
    return parser


def _command_list() -> int:
    from repro.experiments import SWEEPS, sweep_params
    from repro.runner import SCENARIOS

    rows = describe_experiments()
    width = max(len(row["id"]) for row in rows)
    for row in rows:
        print(f"{row['id']:<{width}}  [Sec. {row['section']}]  {row['title']}")
    print("\nsweep axes (use with `sweep <id> --param NAME=V1,V2`):")
    for experiment_id in sorted(SWEEPS):
        axes = ", ".join(sweep_params(experiment_id))
        print(f"  {experiment_id:<{width}}  {axes}")
    print("\nsweep scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name}  ({SCENARIOS[name]().describe()})")
    return 0


def _emit_result(result, csv_path: Optional[str]) -> int:
    """Print an experiment/aggregate result and optionally write its CSV."""
    print(result.format())
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(result.table().to_csv())
        print(f"\nwrote {csv_path}")
    return 0


def _run_orchestrated(
    experiment: str,
    scale: str,
    seed: int,
    reps: int,
    jobs: int,
    plan: object,
    cache_dir: Optional[str],
    csv_path: Optional[str],
    kernel_axes: Optional[dict] = None,
) -> int:
    from repro.runner import ArtifactCache, ParamGrid, SweepSpec, aggregate_report, run_sweep

    cache = ArtifactCache(cache_dir) if cache_dir else None
    try:
        spec = SweepSpec(experiment, replications=reps, base_seed=seed, scale=scale)
        if kernel_axes:
            # --kernel/--dtype pin shared kernel options for every shard;
            # they ride as single-value grid axes so cache keys, derived
            # seeds and aggregate rows all see the setting.
            from repro.experiments import validate_sweep_config

            validate_sweep_config(experiment, kernel_axes)
            spec.grid = ParamGrid(kernel_axes)
        report = run_sweep(spec, jobs=jobs, cache=cache, progress=print, plan=plan)
        print(report.describe())
        print(report.summary_line())
        print()
        if reps == 1:
            # A single replication is a plain run (with caching/workers);
            # print the experiment's own tables rather than a degenerate
            # aggregate.
            return _emit_result(report.shards[0].result(), csv_path)
        # Aggregation can reject a sweep too (ragged replications), so it
        # stays inside the try: clean stderr + exit 2, not a traceback.
        return _emit_result(aggregate_report(report), csv_path)
    except (KeyError, ValueError) as error:
        return _print_error(error)


def _command_run(args: argparse.Namespace) -> int:
    axes = _kernel_axes(args)
    try:
        plan = _execution_plan(args)
    except ValueError as error:
        return _print_error(error)
    if args.reps > 1 or args.jobs != 1 or args.intra_jobs != 1 or args.cache_dir:
        return _run_orchestrated(
            args.experiment, args.scale, args.seed, args.reps, args.jobs,
            plan, args.cache_dir, args.csv, kernel_axes=axes,
        )
    from repro.runner import shard_overrides

    try:
        # The plan's spatial shard settings apply ambiently: they stay out
        # of the experiment configuration, so a sharded direct run prints
        # byte-identical tables to the monolithic one.
        with shard_overrides(**plan.shard_override_kwargs()):
            if axes:
                # Route through the point runner, which accepts the kernel
                # and dtype axes (validated first, so non-simulator
                # experiments fail with one clean message).
                from repro.experiments import run_sweep_point, validate_sweep_config

                validate_sweep_config(args.experiment, axes)
                config = {name: values[0] for name, values in axes.items()}
                result = run_sweep_point(
                    args.experiment, config, scale=args.scale, seed=args.seed
                )
            else:
                result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    except KeyError as error:
        return _print_error(error)
    return _emit_result(result, args.csv)


def _build_sweep_spec(args: argparse.Namespace):
    """Build (and validate) the SweepSpec for a parsed ``sweep`` invocation.

    Raises ``KeyError``/``ValueError`` for unknown targets, malformed or
    unknown ``--param`` axes.  ``--scale`` is tri-state: ``None`` keeps a
    named scenario's pinned scale (the figN-paper bundles pin ``paper``)
    and means ``default`` for ad-hoc experiment-id sweeps.
    """
    from repro.runner import ParamGrid, build_spec

    spec = build_spec(
        args.target,
        grid=ParamGrid.parse(args.param) if args.param else None,
        replications=args.reps,
        base_seed=args.seed,
        scale=args.scale,
    )
    axes = _kernel_axes(args)
    if axes:
        # --kernel/--dtype pin the shared kernel options on every point of
        # the sweep (including a named scenario's own grid) without
        # clobbering the other axes; an explicit --param kernel=... axis
        # is replaced by the flag.
        from repro.experiments import validate_sweep_config

        validate_sweep_config(spec.experiment_id, axes)
        if isinstance(spec.grid, ParamGrid):
            for name, values in axes.items():
                spec.grid.add_axis(name, values)
        else:
            pinned = {name: values[0] for name, values in axes.items()}
            spec.grid = [dict(config, **pinned) for config in spec.grid]
    return spec


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.runner import ArtifactCache, aggregate_report, run_sweep

    try:
        spec = _build_sweep_spec(args)
        plan = _execution_plan(args)
    except (KeyError, ValueError) as error:
        return _print_error(error)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    try:
        report = run_sweep(spec, jobs=args.jobs, cache=cache, progress=print, plan=plan)
        print(report.describe())
        print(report.summary_line())
        print()
        # Aggregation can reject a sweep too (ragged replications), so it
        # stays inside the try: clean stderr + exit 2, not a traceback.
        return _emit_result(aggregate_report(report), args.csv)
    except (KeyError, ValueError) as error:
        return _print_error(error)


def _command_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Baseline,
        analyze_paths,
        all_rules,
        render_human,
        select_rules,
        write_json,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<10} {rule.severity.value:<8} {rule.summary}")
        return 0
    try:
        rules = select_rules(args.rules.split(",")) if args.rules else None
    except KeyError as error:
        return _print_error(error)
    try:
        baseline = Baseline.load(args.baseline) if not args.no_baseline else None
        report = analyze_paths(
            args.paths,
            rules=rules,
            baseline=baseline,
            cache_dir=None if args.no_cache else args.cache_dir,
            changed_only=args.changed,
        )
    except (FileNotFoundError, ValueError) as error:
        return _print_error(error)
    if args.write_baseline:
        regenerated = Baseline.from_findings(report.findings, previous=baseline)
        regenerated.save(args.baseline)
        print(
            f"wrote {args.baseline}: {len(regenerated)} grandfathered finding(s) "
            "(fill in each entry's justification)"
        )
        if args.json_path:
            write_json(report, args.json_path)
        return 0
    print(render_human(report, verbose=args.verbose))
    if args.json_path:
        write_json(report, args.json_path)
        print(f"wrote {args.json_path}")
    return 1 if report.active else 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.obs.server import serve

    serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        intra_jobs=args.intra_jobs,
        shards=args.shards,
        partitioner=args.partitioner,
        bench_root=args.bench_root,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "analyze":
        return _command_analyze(args)
    return _command_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro.cli`
    sys.exit(main())
