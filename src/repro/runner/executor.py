"""Process-pool execution of sweep shards with artifact caching.

:func:`run_sweep` expands a :class:`~repro.runner.grid.SweepSpec` into
``(config × replication)`` shards, skips every shard already present in
the :class:`~repro.runner.cache.ArtifactCache`, executes the remainder —
in-process at ``jobs=1``, on a ``ProcessPoolExecutor`` otherwise — and
returns the shards in deterministic ``(config_index, replication)`` order.

With ``intra_jobs > 1`` each shard additionally executes as a *chain* of
round-block invocations (see :mod:`repro.runner.partition`): every pool
task advances one checkpointed block of one shard's market simulation, so
blocks of different shards pipeline across the workers and an interrupted
paper-scale run resumes from its last completed block.  Partitioned and
monolithic execution produce byte-identical shard payloads and share the
same artifact-cache keys.

Determinism contract
--------------------
* Shard seeds come from the spec (``derive_seed`` chain over the config
  content), so the randomness a shard consumes is fixed before any worker
  is chosen; worker count and completion order cannot perturb it.
* Every shard result — fresh or cached, serial or parallel, monolithic or
  round-block partitioned — passes through the same JSON payload
  round-trip (:func:`~repro.runner.cache.result_to_payload`), so
  downstream aggregation sees exactly the same values in every execution
  mode.
* Results are re-ordered by task index before being returned; completion
  order never leaks into the report.

Interrupted sweeps resume for free: completed shards were committed to
the cache atomically, so a re-run executes only the missing ones.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, as_completed, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import run_sweep_point
from repro.obs import get_emitter
from repro.runner.cache import ArtifactCache, code_fingerprint, payload_to_result, result_to_payload, task_key
from repro.runner.grid import SweepSpec, SweepTask
from repro.runner.partition import BlockContext, CheckpointStore, OutOfBlockBudget
from repro.runner.plan import ExecutionPlan
from repro.runner.shard import shard_overrides

__all__ = ["ShardResult", "SweepReport", "run_sweep", "default_jobs"]


def default_jobs() -> int:
    """Default worker count: the machine's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class ShardResult:
    """One executed (or cache-restored) shard of a sweep."""

    task: SweepTask
    payload: Dict[str, object]
    from_cache: bool = False

    def result(self) -> ExperimentResult:
        """Deserialise the shard's payload into an :class:`ExperimentResult`."""
        return payload_to_result(self.payload)


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` produced, in deterministic shard order.

    Attributes
    ----------
    spec:
        The sweep specification that was executed.
    shards:
        Shard results ordered by ``(config_index, replication)``.
    executed / cached:
        How many shards ran vs. were restored from the artifact cache.
    jobs:
        Worker count used for the executed shards.
    intra_jobs:
        Round-blocks each shard's market simulations were split into
        (``1`` = monolithic shards).
    plan:
        The :class:`~repro.runner.plan.ExecutionPlan` applied to every
        shard (``None`` when the sweep ran with plain arguments).
    duration:
        Wall-clock seconds spent inside :func:`run_sweep`.
    cache_stats:
        The artifact cache's ``hits``/``misses``/``stores`` counters as
        observed at the end of the sweep (``None`` when no cache was
        given).
    """

    spec: SweepSpec
    shards: List[ShardResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    jobs: int = 1
    intra_jobs: int = 1
    plan: Optional[ExecutionPlan] = None
    duration: float = 0.0
    cache_stats: Optional[Dict[str, int]] = None

    def results(self) -> List[ExperimentResult]:
        """Deserialised results in shard order."""
        return [shard.result() for shard in self.shards]

    def by_config(self) -> Dict[int, List[ShardResult]]:
        """Group shards by ``config_index`` (replication-ordered within each)."""
        grouped: Dict[int, List[ShardResult]] = {}
        for shard in self.shards:
            grouped.setdefault(shard.task.config_index, []).append(shard)
        return grouped

    def describe(self) -> str:
        """One-line human summary of what ran and what was reused."""
        intra = f", intra_jobs={self.intra_jobs}" if self.intra_jobs > 1 else ""
        spatial = ""
        if self.plan is not None and (self.plan.shards or 1) > 1:
            spatial = f", shards={self.plan.shards}"
        return (
            f"{self.spec.describe()} — {self.executed} executed, "
            f"{self.cached} from cache, jobs={self.jobs}{intra}{spatial}, "
            f"{self.duration:.2f}s"
        )

    def summary_line(self) -> str:
        """Per-sweep accounting summary: configs / cache hits / shards / wall time.

        Cache hits come from the cache's own counters when a cache was in
        play (they equal the restored-shard count for a plain sweep) so
        the line surfaces exactly what the instrumentation recorded.
        """
        configs = len(self.spec.configs())
        hits = self.cache_stats["hits"] if self.cache_stats else self.cached
        return (
            f"summary: {configs} config{'s' if configs != 1 else ''} | "
            f"{hits} cache hit{'s' if hits != 1 else ''} | "
            f"{self.executed} shard{'s' if self.executed != 1 else ''} executed | "
            f"{self.duration:.2f}s wall"
        )


def _execute_task(
    payload: Mapping[str, object],
    shard_settings: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Worker entry point: run one shard and return its JSON-safe payload.

    Module-level so it pickles cleanly into pool workers; takes and
    returns plain dicts so no library object crosses the process
    boundary.  ``shard_settings`` (spatial shard count / partitioner /
    backend) travel as an explicit argument for the same reason: the
    ambient :func:`~repro.runner.shard.shard_overrides` context does not
    cross process boundaries, so each worker re-installs it around its
    point runner.  The settings never enter ``task.config`` and therefore
    never perturb cache keys or results.
    """
    task = SweepTask.from_payload(payload)
    with shard_overrides(**dict(shard_settings or {})):
        result = run_sweep_point(
            task.experiment_id, dict(task.config), scale=task.scale, seed=task.seed
        )
    return result_to_payload(result)


def _execute_chain_step(
    payload: Mapping[str, object],
    blocks: int,
    store_root: str,
    budget: Optional[int] = 1,
    shard_settings: Optional[Mapping[str, object]] = None,
) -> Optional[Dict[str, object]]:
    """Worker entry point for one round-block invocation of a shard chain.

    Installs a :class:`BlockContext` with a budget of ``budget`` new
    blocks and re-enters the shard's point runner: completed simulations
    restore from their checkpoints for free, unfinished ones advance up
    to the budget (checkpointing each block), and the invocation either
    finishes the experiment (returning its payload) or runs out of budget
    (returning ``None`` so the scheduler re-submits the chain).
    ``budget=None`` is unlimited — the whole shard completes in one
    invocation, still checkpointing every block boundary.
    """
    task = SweepTask.from_payload(payload)
    store = CheckpointStore(store_root)
    context = BlockContext(store, blocks=blocks, scope=task_key(task), budget=budget)
    try:
        with shard_overrides(**dict(shard_settings or {})), context:
            result = run_sweep_point(
                task.experiment_id, dict(task.config), scale=task.scale, seed=task.seed
            )
    except OutOfBlockBudget:
        return None
    return result_to_payload(result)


def _run_chains(
    tasks: List[SweepTask],
    pending: List[int],
    jobs: int,
    intra_jobs: int,
    store_root: str,
    commit: Callable[[int, Dict[str, object], int], None],
    shard_settings: Optional[Mapping[str, object]] = None,
) -> None:
    """Drive every pending shard through its round-block invocation chain.

    Blocks of one shard are sequential (each needs the previous one's
    checkpoint); blocks of different shards interleave freely across the
    pool, which is what pipelines a multi-replication paper-scale sweep.
    With a single worker there is nothing to pipeline, so each shard runs
    its whole chain in one unlimited-budget invocation — identical
    checkpoints and payload, none of the per-block re-entry overhead.
    """
    if jobs == 1 or len(pending) == 1:
        for count, index in enumerate(pending, start=1):
            payload = _execute_chain_step(
                tasks[index].to_payload(), intra_jobs, store_root,
                budget=None, shard_settings=shard_settings,
            )
            assert payload is not None  # unlimited budget always completes
            commit(index, payload, count)
        return

    first_error: Optional[BaseException] = None
    count = 0
    queue = deque(pending)
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        inflight: Dict[object, int] = {}

        def submit(index: int) -> None:
            future = pool.submit(
                _execute_chain_step, tasks[index].to_payload(), intra_jobs,
                store_root, 1, shard_settings,
            )
            inflight[future] = index

        while queue and len(inflight) < min(jobs, len(pending)):
            submit(queue.popleft())
        while inflight:
            completed, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
            for future in completed:
                index = inflight.pop(future)
                try:
                    payload = future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
                    if queue:
                        submit(queue.popleft())
                    continue
                if payload is None:
                    submit(index)  # next block of the same shard
                else:
                    count += 1
                    commit(index, payload, count)
                    if queue:
                        submit(queue.popleft())
    if first_error is not None:
        raise first_error


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    intra_jobs: int = 1,
    plan: Optional[ExecutionPlan] = None,
) -> SweepReport:
    """Execute every shard of ``spec``, reusing cached artifacts.

    Parameters
    ----------
    spec:
        The sweep to run.
    jobs:
        Worker processes.  ``1`` executes in-process (no pool); higher
        values shard the pending tasks over a ``ProcessPoolExecutor``.
        ``0``/negative selects :func:`default_jobs`.
    cache:
        Optional artifact cache; cached shards are restored without
        executing, and freshly executed shards are committed atomically
        so an interrupted sweep resumes where it stopped.
    progress:
        Optional callable receiving human-readable progress lines.
    intra_jobs:
        Round-blocks each shard's market simulations are split into.
        ``1`` (default) runs shards monolithically; higher values execute
        each shard as a chain of checkpointed block invocations that
        pipeline across the worker pool and — with a persistent cache —
        resume interrupted paper-scale runs at block granularity.  Shard
        payloads and cache keys are identical in both modes.
    plan:
        Optional :class:`~repro.runner.plan.ExecutionPlan` applied to
        every shard.  Its ``intra_jobs`` takes the place of the
        ``intra_jobs`` argument (setting both to conflicting values is an
        error), and its spatial shard settings (``shards`` /
        ``partitioner`` / ``shard_backend``) are installed ambiently in
        each worker, so task configurations and cache keys stay identical
        to an unplanned sweep.  Modelling-visible knobs have no place
        here: ``plan.options`` (kernel/dtype selection rides as explicit
        sweep axes) and ``plan.rounds_per_block`` (block counts are
        per-shard via ``intra_jobs``) are rejected.
    """
    started = time.perf_counter()
    if jobs <= 0:
        jobs = default_jobs()
    if intra_jobs < 1:
        raise ValueError("intra_jobs must be at least 1")
    shard_settings: Optional[Dict[str, object]] = None
    if plan is not None:
        if plan.options is not None:
            raise ValueError(
                "run_sweep does not accept plan.options; sweep kernel/dtype "
                "selection rides as explicit grid axes (see repro.cli)"
            )
        if plan.rounds_per_block is not None:
            raise ValueError(
                "run_sweep does not accept plan.rounds_per_block; "
                "use plan.intra_jobs to split shards into round-blocks"
            )
        if intra_jobs > 1 and plan.intra_jobs > 1 and intra_jobs != plan.intra_jobs:
            raise ValueError(
                f"conflicting intra_jobs: argument says {intra_jobs}, "
                f"plan says {plan.intra_jobs}"
            )
        intra_jobs = max(intra_jobs, plan.intra_jobs)
        shard_settings = plan.shard_override_kwargs() or None
    tasks = spec.tasks()
    say = progress or (lambda message: None)
    say(spec.describe())
    emitter = get_emitter()
    emitter.mark(
        "runner.sweep.start",
        experiment_id=spec.experiment_id,
        shards=len(tasks),
        jobs=jobs,
        intra_jobs=intra_jobs,
        spatial_shards=int(shard_settings.get("shards", 1)) if shard_settings else 1,
    )

    ordered: List[Optional[ShardResult]] = [None] * len(tasks)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    if cache is not None:
        code_version = code_fingerprint()
        for index, task in enumerate(tasks):
            key = task_key(task, code_version)
            keys[index] = key
            payload = cache.load(key)
            if payload is not None:
                ordered[index] = ShardResult(task=task, payload=payload, from_cache=True)
            else:
                pending.append(index)
        if len(pending) < len(tasks):
            say(f"cache: restored {len(tasks) - len(pending)}/{len(tasks)} shards")
            emitter.counter("runner.shard.cached", len(tasks) - len(pending))
    else:
        pending = list(range(len(tasks)))

    def commit(index: int, payload: Dict[str, object], count: int) -> None:
        # Committing each shard as it lands (not at sweep end) is what makes
        # an interrupted sweep resumable from its last completed shard.
        ordered[index] = ShardResult(task=tasks[index], payload=payload)
        if cache is not None:
            cache.store(keys[index], payload)
            # The result artifact supersedes any round-block checkpoints of
            # this shard — including ones left by an interrupted partitioned
            # run that this (possibly monolithic) execution just completed.
            checkpoint_root = cache.root / "checkpoints"
            if checkpoint_root.is_dir():
                CheckpointStore(checkpoint_root).prune_scope(keys[index])
        say(f"executed shard {count}/{len(pending)}")
        emitter.counter("runner.shard.executed")
        emitter.mark(
            "runner.shard.committed",
            config_index=tasks[index].config_index,
            replication=tasks[index].replication,
        )

    if pending:
        if intra_jobs > 1:
            # Round-block chains: checkpoints live next to the result
            # artifacts when a cache is given (making interrupted runs
            # resumable across processes), in a throwaway directory
            # otherwise (workers still need a shared medium for state).
            if cache is not None:
                # Week-old scopes are unreachable leftovers (interrupted
                # runs whose code fingerprint has since changed) — collect
                # them before adding new ones.
                CheckpointStore(cache.root / "checkpoints").prune_stale()
                _run_chains(
                    tasks, pending, jobs, intra_jobs,
                    str(cache.root / "checkpoints"), commit, shard_settings,
                )
            else:
                with tempfile.TemporaryDirectory(prefix="repro-intra-") as tmp:
                    _run_chains(
                        tasks, pending, jobs, intra_jobs, tmp, commit, shard_settings
                    )
        elif jobs == 1 or len(pending) == 1:
            for count, index in enumerate(pending, start=1):
                commit(
                    index,
                    _execute_task(tasks[index].to_payload(), shard_settings),
                    count,
                )
        else:
            # Commit in completion order (not submission order): a slow early
            # shard must not delay persisting the shards finishing behind it.
            # A failing shard must not abort the loop either — every shard
            # that completes is committed before the first error is re-raised,
            # so a partially failing sweep still resumes from its successes.
            first_error: Optional[BaseException] = None
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(
                        _execute_task, tasks[index].to_payload(), shard_settings
                    ): index
                    for index in pending
                }
                count = 0
                for future in as_completed(futures):
                    try:
                        payload = future.result()
                    except BaseException as error:  # noqa: BLE001 - re-raised below
                        if first_error is None:
                            first_error = error
                        continue
                    count += 1
                    commit(futures[future], payload, count)
            if first_error is not None:
                raise first_error

    shards = [shard for shard in ordered if shard is not None]
    duration = time.perf_counter() - started
    emitter.gauge("runner.sweep.duration", duration)
    emitter.mark(
        "runner.sweep.done",
        experiment_id=spec.experiment_id,
        executed=len(pending),
        cached=len(tasks) - len(pending),
    )
    return SweepReport(
        spec=spec,
        shards=shards,
        executed=len(pending),
        cached=len(tasks) - len(pending),
        jobs=jobs,
        intra_jobs=intra_jobs,
        plan=plan,
        duration=duration,
        cache_stats=cache.stats() if cache is not None else None,
    )
