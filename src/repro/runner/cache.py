"""Content-addressed on-disk artifact cache for sweep shards.

Each executed shard is serialised to JSON and stored under a key that
hashes **everything the result depends on**::

    key = sha256(experiment_id, canonical_config, scale, seed, code_version)

``code_version`` is a fingerprint of every ``*.py`` source file in the
``repro`` package, so editing any library code invalidates the cache
automatically, while re-running an identical sweep on identical code
skips every shard ("warm cache executes zero simulation shards").

Results pass through the same JSON round-trip whether they come from a
worker process or from the cache, so a warm re-run is byte-identical to
the cold run that populated it.

Writes are atomic (temp file + ``os.replace``), which makes interrupted
sweeps safely resumable: a killed run leaves only complete artifacts
behind, and the next run re-executes exactly the missing shards.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Dict, Mapping, Optional

import repro
from repro.experiments.common import ExperimentResult
from repro.obs import get_emitter
from repro.runner.grid import SweepTask, _jsonable
from repro.utils.records import ResultRecord, ResultTable, SeriesRecord

__all__ = [
    "ArtifactCache",
    "code_fingerprint",
    "payload_to_result",
    "result_to_payload",
    "task_key",
]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Fingerprint of the installed ``repro`` package sources.

    Hashes the relative path and contents of every ``*.py`` file under the
    package directory, in sorted order.  Any source edit therefore changes
    the fingerprint and invalidates previously cached artifacts.
    """
    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def task_key(task: SweepTask, code_version: Optional[str] = None) -> str:
    """Content-addressed cache key for one sweep shard."""
    if code_version is None:
        code_version = code_fingerprint()
    payload = json.dumps(
        {
            "experiment_id": task.experiment_id,
            "config": json.loads(task.config_key()),
            "scale": str(task.scale),
            "seed": int(task.seed),
            "code_version": code_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_to_payload(result: ExperimentResult) -> Dict[str, object]:
    """Serialise an :class:`ExperimentResult` to a JSON-safe dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {
                "title": table.title,
                "rows": [_jsonable(row.as_dict()) for row in table.rows],
                "metadata": _jsonable(table.metadata),
            }
            for table in result.tables
        ],
        "series": [
            {
                "label": series.label,
                "x": [float(value) for value in series.x],
                "y": [float(value) for value in series.y],
                "metadata": _jsonable(series.metadata),
            }
            for series in result.series
        ],
        "metadata": _jsonable(result.metadata),
    }


def payload_to_result(payload: Mapping[str, object]) -> ExperimentResult:
    """Inverse of :func:`result_to_payload`."""
    tables = [
        ResultTable(
            title=str(spec["title"]),
            rows=[ResultRecord(dict(row)) for row in spec["rows"]],  # type: ignore[union-attr]
            metadata=dict(spec.get("metadata") or {}),  # type: ignore[arg-type]
        )
        for spec in payload.get("tables", [])  # type: ignore[union-attr]
    ]
    series = [
        SeriesRecord(
            label=str(spec["label"]),
            x=list(spec.get("x") or []),  # type: ignore[arg-type]
            y=list(spec.get("y") or []),  # type: ignore[arg-type]
            metadata=dict(spec.get("metadata") or {}),  # type: ignore[arg-type]
        )
        for spec in payload.get("series", [])  # type: ignore[union-attr]
    ]
    return ExperimentResult(
        experiment_id=str(payload["experiment_id"]),
        title=str(payload["title"]),
        tables=tables,
        series=series,
        metadata=dict(payload.get("metadata") or {}),  # type: ignore[arg-type]
    )


class ArtifactCache:
    """Content-addressed JSON artifact store rooted at a directory.

    Artifacts live at ``root/<key[:2]>/<key>.json`` (two-level sharding
    keeps directories small for large sweeps).  ``hits``/``misses``/
    ``stores`` counters let callers report cache effectiveness.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def root(self) -> Path:
        """The cache's root directory."""
        return self._root

    def _path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Return whether an artifact is stored under ``key`` (no counter update)."""
        return self._path(key).is_file()

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """Return the payload stored under ``key``, or ``None`` on a miss.

        A corrupt artifact (truncated write from a hard kill predating the
        atomic-rename scheme, manual tampering) counts as a miss and is
        removed so the shard re-executes.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            get_emitter().counter("cache.miss")
            return None
        except (json.JSONDecodeError, OSError):
            self.misses += 1
            path.unlink(missing_ok=True)
            get_emitter().counter("cache.miss")
            get_emitter().counter("cache.evict")
            return None
        self.hits += 1
        get_emitter().counter("cache.hit")
        return payload

    def store(self, key: str, payload: Mapping[str, object]) -> Path:
        """Atomically persist ``payload`` under ``key`` and return its path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Key order is preserved (no sort_keys): result-table column order is
        # insertion order, and a cache round-trip must not reorder columns.
        text = json.dumps(payload, separators=(",", ":"))
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        self.stores += 1
        get_emitter().counter("cache.store")
        return path

    def discard(self, key: str) -> bool:
        """Remove the artifact stored under ``key``; returns whether one existed."""
        path = self._path(key)
        if path.is_file():
            path.unlink()
            get_emitter().counter("cache.evict")
            return True
        return False

    def __len__(self) -> int:
        return sum(1 for _ in self._root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        """Return the ``hits``/``misses``/``stores`` counters as a dict."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
