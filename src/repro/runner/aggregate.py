"""Cross-replication aggregation of sweep results.

:func:`aggregate_sweep` reduces the per-shard
:class:`~repro.experiments.common.ExperimentResult` tables of a
:class:`~repro.runner.executor.SweepReport` into one long-format
:class:`~repro.utils.records.ResultTable`: one row per (configuration,
table row, numeric metric) with the mean, standard deviation, a
normal-approximation confidence interval and a bootstrap percentile
confidence interval across replications.

Determinism contract
--------------------
Shards are reduced in ``(config_index, replication)`` order and the
bootstrap resampling RNG is seeded via ``derive_seed(base_seed,
"bootstrap", config_key, row_index, metric)`` — a pure function of the
sweep's content.  The aggregate table is therefore byte-identical
regardless of worker count, shard completion order, or whether shards
came from the cache.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.runner.executor import SweepReport
from repro.utils.records import ResultTable
from repro.utils.rng import derive_seed
from repro.utils.stats import confidence_interval

__all__ = ["aggregate_report", "aggregate_sweep", "bootstrap_ci"]


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``samples``.

    Resampling is driven by ``numpy.random.default_rng(seed)``, so the
    interval is a deterministic function of ``(samples, confidence,
    num_resamples, seed)``.  With fewer than two samples the interval
    degenerates to ``(mean, mean)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 1:
        raise ValueError("num_resamples must be at least 1")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    if arr.size < 2 or np.all(arr == arr[0]):
        # Constant samples: every resample mean equals the constant, so the
        # interval is degenerate — skip the resampling work.
        mean = float(arr.mean())
        return (mean, mean)
    rng = np.random.default_rng(int(seed))
    draws = rng.integers(0, arr.size, size=(int(num_resamples), arr.size))
    means = arr[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def _numeric(value: object) -> Optional[float]:
    """Return ``value`` as float when it is a (non-bool) number, else None."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def aggregate_sweep(
    report: SweepReport,
    confidence: float = 0.95,
    num_resamples: int = 1000,
) -> ResultTable:
    """Reduce a sweep report to one long-format cross-replication table.

    For every configuration, the first table of each replication's result
    is read row by row; every numeric column becomes a metric row with
    ``mean``/``std``/``ci_low``/``ci_high`` (normal approximation) and
    ``boot_low``/``boot_high`` (percentile bootstrap).  Non-numeric cells
    of the underlying row (e.g. a ``setting`` label) are carried through
    from the first replication as identifying columns.

    Replications of one configuration must agree on their table row count;
    ragged replications raise ``ValueError`` instead of being silently
    truncated to the shortest table.  Configurations whose replications all
    produced no tables are recorded under the aggregate's
    ``configs_without_tables`` metadata key.
    """
    spec = report.spec
    configs = spec.configs()
    table = ResultTable(
        title=f"Sweep aggregate — {spec.name or spec.experiment_id} "
        f"({spec.replications} replications, {confidence:.0%} CI)",
        metadata={
            "experiment_id": spec.experiment_id,
            "replications": spec.replications,
            "base_seed": spec.base_seed,
            "scale": str(spec.scale),
            "confidence": confidence,
        },
    )
    grouped = report.by_config()
    for config_index, config in enumerate(configs):
        shards = grouped.get(config_index, [])
        if not shards:
            continue
        shards = sorted(shards, key=lambda shard: shard.task.replication)
        results = [shard.result() for shard in shards]
        config_key = shards[0].task.config_key()
        first_tables = [result.tables[0] if result.tables else None for result in results]
        # Ragged replications are a bug upstream (a point runner whose row
        # count depends on the seed); truncating to the first replication's
        # rows would silently bias the aggregate, so refuse instead.
        row_counts = [None if t is None else len(t.rows) for t in first_tables]
        distinct = set(row_counts)
        if len(distinct) > 1:
            detail = ", ".join(
                f"replication {shard.task.replication}: "
                + ("no tables" if count is None else f"{count} rows")
                for shard, count in zip(shards, row_counts)
            )
            raise ValueError(
                f"ragged replications for config {config_key} of "
                f"{spec.experiment_id!r}: table row counts differ across "
                f"replications ({detail})"
            )
        reference = first_tables[0]
        if reference is None:
            # Every replication of this config produced no tables; note it in
            # the aggregate's metadata instead of dropping the config silently.
            table.metadata.setdefault("configs_without_tables", []).append(config_key)
            continue
        for row_index, reference_row in enumerate(reference.rows):
            labels = {
                name: value
                for name, value in reference_row.as_dict().items()
                if _numeric(value) is None and name not in config
            }
            for column in reference.columns():
                if column in config:
                    # The column just echoes a swept parameter; a mean/CI of
                    # a constant is noise (and a wasted bootstrap).
                    continue
                values: List[float] = []
                for shard_table in first_tables:
                    # Row counts were validated equal above, so every
                    # replication has this row.
                    value = _numeric(shard_table.rows[row_index].get(column))
                    if value is not None:
                        values.append(value)
                if not values:
                    continue
                arr = np.asarray(values, dtype=float)
                ci_low, ci_high = confidence_interval(values, confidence)
                boot_low, boot_high = bootstrap_ci(
                    values,
                    confidence=confidence,
                    num_resamples=num_resamples,
                    seed=derive_seed(
                        spec.base_seed, "bootstrap", config_key, row_index, column
                    ),
                )
                table.add_row(
                    **config,
                    **labels,
                    metric=column,
                    mean=float(arr.mean()),
                    std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                    ci_low=ci_low,
                    ci_high=ci_high,
                    boot_low=boot_low,
                    boot_high=boot_high,
                    replications=len(values),
                )
    return table


def aggregate_report(
    report: SweepReport,
    confidence: float = 0.95,
    num_resamples: int = 1000,
) -> ExperimentResult:
    """Wrap :func:`aggregate_sweep` in an :class:`ExperimentResult`.

    Execution statistics (worker count, duration, cache reuse) go into
    the result's *metadata* only — never into the table — so the table
    bytes stay identical across execution modes.
    """
    table = aggregate_sweep(report, confidence=confidence, num_resamples=num_resamples)
    spec = report.spec
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        title=table.title,
        tables=[table],
        series=[],
        metadata={
            "sweep": spec.describe(),
            "executed": report.executed,
            "cached": report.cached,
            "jobs": report.jobs,
            "duration": report.duration,
        },
    )
