"""Parallel sweep & replication orchestration for the paper's experiments.

The ``repro.runner`` subsystem turns single-configuration experiment runners
into declarative, cache-aware, parallel parameter sweeps:

* :mod:`repro.runner.grid` — :class:`ParamGrid` / :class:`SweepSpec`
  expand cartesian products and named scenario bundles into experiment
  configurations and ``(config, replication)`` shard tasks;
* :mod:`repro.runner.executor` — :func:`run_sweep` shards the tasks across
  a process pool, with per-shard seeds derived through the same
  ``derive_seed`` chain as the in-library :class:`SeedSequenceFactory`, so
  results are bit-identical regardless of worker count or ordering;
* :mod:`repro.runner.cache` — :class:`ArtifactCache`, a content-addressed
  on-disk artifact store keyed by experiment id, configuration, seed and
  code version, making interrupted sweeps resumable;
* :mod:`repro.runner.aggregate` — cross-replication aggregation (mean,
  std, normal and bootstrap confidence intervals) feeding the existing
  :class:`~repro.utils.records.ResultTable` containers;
* :mod:`repro.runner.partition` — intra-run parallelism: a single
  paper-scale market simulation executes as checkpointed round-blocks
  (``--intra-jobs``) that pipeline across the worker pool and resume
  interrupted runs at block granularity, bit-identical to the monolithic
  run;
* :mod:`repro.runner.shard` — spatial peer-space sharding:
  :func:`plan_shards` partitions the overlay into balanced,
  edge-cut-minimising shards and the simulators execute each shard's
  kernel section concurrently, byte-identical to the monolithic round;
* :mod:`repro.runner.plan` — the unified :class:`ExecutionPlan` /
  :func:`execute` entry point behind which temporal blocks, spatial
  shards and kernel options compose.

Determinism contract
--------------------
Every shard's seed is ``derive_seed(base_seed, "sweep", experiment_id,
canonical_config_json, replication)``.  The derivation depends only on the
*content* of the configuration and the replication index — never on the
position of the configuration inside the grid, the number of worker
processes, or the order in which shards happen to finish.  Aggregation
sorts shards by ``(config_index, replication)`` before reducing, and the
bootstrap resampling RNG is itself seeded through the same chain, so a
sweep's aggregate table is byte-identical at ``--jobs 1`` and ``--jobs N``
and across cold/warm cache runs.
"""

from repro.runner.aggregate import aggregate_report, aggregate_sweep, bootstrap_ci
from repro.runner.cache import (
    ArtifactCache,
    code_fingerprint,
    payload_to_result,
    result_to_payload,
    task_key,
)
from repro.runner.executor import ShardResult, SweepReport, default_jobs, run_sweep
from repro.runner.grid import (
    SCENARIOS,
    ParamGrid,
    SweepSpec,
    SweepTask,
    build_spec,
    canonical_config,
    scenario,
)
from repro.runner.partition import (
    BlockContext,
    CheckpointStore,
    OutOfBlockBudget,
    round_blocks,
    run_market_partitioned,
    run_streaming_partitioned,
)
from repro.runner.plan import ExecutionPlan, execute
from repro.runner.shard import (
    ShardPlan,
    plan_shards,
    run_shard_tasks,
    shard_overrides,
)

__all__ = [
    "ArtifactCache",
    "BlockContext",
    "CheckpointStore",
    "ExecutionPlan",
    "OutOfBlockBudget",
    "ParamGrid",
    "SCENARIOS",
    "ShardPlan",
    "ShardResult",
    "SweepReport",
    "SweepSpec",
    "SweepTask",
    "aggregate_report",
    "aggregate_sweep",
    "bootstrap_ci",
    "build_spec",
    "canonical_config",
    "code_fingerprint",
    "default_jobs",
    "execute",
    "payload_to_result",
    "plan_shards",
    "result_to_payload",
    "round_blocks",
    "run_market_partitioned",
    "run_shard_tasks",
    "run_streaming_partitioned",
    "run_sweep",
    "scenario",
    "shard_overrides",
    "task_key",
]
