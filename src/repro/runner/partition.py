"""Intra-run parallelism: checkpointed round-blocks for long simulations.

``repro.runner`` shards sweeps at ``(config × replication)`` granularity,
which leaves a paper-scale *single* configuration running on one core for
its whole horizon.  This module splits one such run into contiguous
**round-blocks**: the simulator advances a block of rounds, pickles its
complete state (arrays, RNG, recorder, membership, churn-event counters —
everything the monolithic loop would carry into the next round) into a
:class:`CheckpointStore`, and the next block resumes from that state —
possibly in a different worker process, possibly in a later process after
an interruption.

Because a block boundary is nothing but a pickle round-trip of the exact
in-memory state, a partitioned run is **bit-identical** to the monolithic
run of the same configuration: same draws, same floats, same artifacts.
The executor therefore stores partitioned shard results under the *same*
artifact-cache keys as monolithic ones — ``--intra-jobs`` changes how a
shard executes, never what it produces.

Scheduling model
----------------
Blocks of one run are inherently sequential (block ``b`` needs block
``b-1``'s state), so intra-run partitioning does not speed up a single
replication by itself.  Its wins are:

* **pipelining** — with several replications/configurations in flight the
  executor interleaves different shards' blocks across the worker pool,
  so a few long shards no longer serialise the tail of a sweep;
* **resumability** — with a persistent cache, an interrupted paper-scale
  run resumes from its last completed *block* instead of restarting the
  whole horizon.

The context intercepts both :class:`~repro.p2psim.market_sim.\
CreditMarketSimulator` and :class:`~repro.p2psim.streaming_sim.\
StreamingMarketSimulator` runs — any simulator exposing the
``total_rounds()`` / ``advance_rounds(n)`` / ``finalize()`` round-block
protocol partitions the same way; other computations inside an experiment
execute monolithically within their invocation.

Checkpoint artifacts are raw pickles keyed — like the result artifacts —
by a content hash that includes the repo's code fingerprint, so stale
states can never leak across code versions.  They are trusted local
files: only point a checkpoint store at directories you write yourself.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import pickle
import shutil
import tempfile
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, cast

from repro.obs import get_emitter

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.p2psim import Simulator

__all__ = [
    "BlockContext",
    "CheckpointStore",
    "OutOfBlockBudget",
    "active_context",
    "round_blocks",
    "run_market_partitioned",
    "run_streaming_partitioned",
]

_ACTIVE: Optional["BlockContext"] = None


def active_context() -> Optional["BlockContext"]:
    """The installed :class:`BlockContext`, or ``None`` outside one."""
    return _ACTIVE


def round_blocks(total_rounds: int, blocks: int) -> List[int]:
    """Split ``total_rounds`` into ``blocks`` contiguous block lengths.

    Earlier blocks take the remainder, so lengths differ by at most one
    and always sum to ``total_rounds``.

    >>> round_blocks(10, 3)
    [4, 3, 3]
    >>> round_blocks(2, 4)
    [1, 1, 0, 0]
    """
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    if total_rounds < 0:
        raise ValueError("total_rounds must be non-negative")
    base, extra = divmod(total_rounds, blocks)
    return [base + (1 if index < extra else 0) for index in range(blocks)]


class OutOfBlockBudget(Exception):
    """Raised when an invocation's block budget is exhausted mid-experiment.

    The executor catches it: the experiment has checkpointed everything it
    advanced so far, and the next invocation of the same shard resumes
    from those checkpoints.
    """


class CheckpointStore:
    """Pickle store for block-boundary simulator states, sharded by scope.

    Files live at ``root/<scope-digest>/<key>.pkl``: every checkpoint of
    one shard sits in one directory, so a finished (or superseded) shard's
    states are pruned with a single directory removal — by any execution
    mode, without knowing how many simulations or blocks the shard ran.
    Writes are atomic (temp file + ``os.replace``) so interrupted runs
    leave only complete checkpoints behind.  Keys hash the scope, the
    simulation's ordinal position inside the experiment, the block index,
    the partition width and the code fingerprint — any code edit orphans
    old states instead of resuming from them.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @staticmethod
    def key(scope: str, ordinal: int, block: int, blocks: int) -> str:
        """Checkpoint key for ``block`` completed blocks of one simulation."""
        from repro.runner.cache import code_fingerprint

        payload = repr(
            (
                "intra-checkpoint",
                str(scope),
                int(ordinal),
                int(block),
                int(blocks),
                code_fingerprint(),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _scope_dir(self, scope: str) -> Path:
        digest = hashlib.sha256(f"scope:{scope}".encode("utf-8")).hexdigest()
        return self._root / digest[:16]

    def _path(self, scope: str, ordinal: int, block: int, blocks: int) -> Path:
        return self._scope_dir(scope) / f"{self.key(scope, ordinal, block, blocks)}.pkl"

    def contains(self, scope: str, ordinal: int, block: int, blocks: int) -> bool:
        """Return whether the addressed checkpoint is stored."""
        return self._path(scope, ordinal, block, blocks).is_file()

    def load(self, scope: str, ordinal: int, block: int, blocks: int) -> Optional[object]:
        """Unpickle the addressed state (``None`` on a miss).

        A corrupt checkpoint counts as a miss and is removed, so the block
        that produced it simply re-executes.
        """
        path = self._path(scope, ordinal, block, blocks)
        emitter = get_emitter()
        started = time.perf_counter() if emitter.enabled else 0.0
        try:
            with open(path, "rb") as handle:
                state = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            path.unlink(missing_ok=True)
            return None
        # Only successful restores are timed: the restore scan probes
        # blocks newest-first and the misses are pure stat calls.
        emitter.timing("checkpoint.restore", time.perf_counter() - started)
        return state

    def store(
        self, scope: str, ordinal: int, block: int, blocks: int, state: object
    ) -> Path:
        """Atomically pickle ``state`` under its address and return the path."""
        path = self._path(scope, ordinal, block, blocks)
        path.parent.mkdir(parents=True, exist_ok=True)
        emitter = get_emitter()
        started = time.perf_counter() if emitter.enabled else 0.0
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        emitter.timing("checkpoint.save", time.perf_counter() - started)
        return path

    def discard(self, scope: str, ordinal: int, block: int, blocks: int) -> bool:
        """Remove the addressed checkpoint; returns whether one existed."""
        path = self._path(scope, ordinal, block, blocks)
        if path.is_file():
            path.unlink()
            return True
        return False

    def prune_scope(self, scope: str) -> int:
        """Drop every checkpoint of a scope; returns how many existed.

        Called once a shard's result artifact is committed — regardless of
        which mode committed it — because the states can never be needed
        again.
        """
        directory = self._scope_dir(scope)
        if not directory.is_dir():
            return 0
        removed = sum(1 for _ in directory.glob("*.pkl"))
        shutil.rmtree(directory, ignore_errors=True)
        return removed

    #: Age after which an untouched checkpoint scope is garbage-collected.
    STALE_AFTER_SECONDS = 7 * 24 * 3600.0

    def prune_stale(self, max_age_seconds: Optional[float] = None) -> int:
        """Drop scope directories untouched for ``max_age_seconds``.

        Scope names embed the code fingerprint, so checkpoints orphaned by
        an interrupted run followed by a source edit are unreachable by
        any future `prune_scope` call — without this GC a long-lived cache
        would accumulate full simulator-state pickles across code
        revisions.  The executor calls it once per partitioned sweep
        against a persistent cache; the week-long default keeps any
        plausibly resumable run alive.
        """
        if max_age_seconds is None:
            max_age_seconds = self.STALE_AFTER_SECONDS
        cutoff = time.time() - max_age_seconds
        removed = 0
        for directory in self._root.iterdir():
            if not directory.is_dir():
                continue
            try:
                newest = max(
                    (entry.stat().st_mtime for entry in directory.iterdir()),
                    default=directory.stat().st_mtime,
                )
            except OSError:
                continue
            if newest < cutoff:
                shutil.rmtree(directory, ignore_errors=True)
                removed += 1
        return removed


class BlockContext:
    """Execution context that turns market runs into checkpointed blocks.

    Parameters
    ----------
    store:
        Where block-boundary states are persisted (shared between the
        invocations of one shard, across processes).
    blocks:
        How many round-blocks each market simulation is split into.
    scope:
        Identity of the owning shard (the executor passes the shard's
        artifact-cache key); checkpoints of different shards never
        collide.  Resumption across processes requires a stable scope.
    budget:
        How many *new* blocks this invocation may advance before raising
        :class:`OutOfBlockBudget`.  Restoring existing checkpoints is
        free.  The executor uses ``budget=1`` so every pool task does one
        block of work; :func:`run_market_partitioned` uses an unlimited
        budget to run a whole simulation in-process.

    Installed via ``with context:`` — both simulators'
    ``run_config`` classmethods consult :func:`active_context` and route
    through :meth:`run_simulation` while one is installed.  Contexts do
    not nest.
    """

    def __init__(
        self, store: CheckpointStore, blocks: int, scope: str, budget: Optional[int] = None
    ) -> None:
        if blocks < 1:
            raise ValueError("blocks must be at least 1")
        self.store = store
        self.blocks = int(blocks)
        self.scope = str(scope)
        self.budget = None if budget is None else int(budget)
        self.ordinals = 0

    def __enter__(self) -> "BlockContext":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a BlockContext is already active; contexts do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = None

    def _spend_budget(self) -> None:
        if self.budget is not None:
            if self.budget <= 0:
                raise OutOfBlockBudget(
                    f"block budget exhausted in scope {self.scope[:12]}…"
                )
            self.budget -= 1

    def run_simulation(
        self,
        sim_cls: "Callable[..., Simulator]",
        config: object,
        topology: object = None,
        snapshot_times: Optional[Sequence[float]] = None,
    ) -> object:
        """Run one round-block-capable simulation as checkpointed blocks.

        ``sim_cls`` is a :class:`~repro.p2psim.Simulator` factory —
        typically one of the simulator classes themselves; anything
        satisfying the protocol (including its picklable-state
        requirement) partitions identically.

        Restores the newest checkpoint of this simulation (identified by
        its ordinal position within the experiment), advances as many new
        blocks as the budget allows — checkpointing after each — and
        returns the finalised result once the last block is done.  The
        finalised result is itself stored (under block ``blocks + 1``), so
        re-entrant invocations of a multi-simulation experiment restore a
        completed simulation's lightweight result instead of unpickling
        and re-finalising its full state.
        """
        ordinal = self.ordinals
        self.ordinals += 1
        blocks = self.blocks

        finalised = self._load(ordinal, blocks + 1)
        if finalised is not None:
            self._sync_config_state(config, getattr(finalised, "config", None))
            return finalised

        completed = 0
        simulator: Optional["Simulator"] = None
        for block in range(blocks, 0, -1):
            state = self._load(ordinal, block)
            if state is not None:
                completed, simulator = block, cast("Simulator", state)
                break
        if simulator is None:
            if self.budget is not None and self.budget <= 0:
                # Don't pay for construction (topology generation, traffic
                # equations) in an invocation that could not advance anyway.
                raise OutOfBlockBudget(
                    f"block budget exhausted in scope {self.scope[:12]}…"
                )
            simulator = sim_cls(config, topology=topology, snapshot_times=snapshot_times)

        sizes = round_blocks(simulator.total_rounds(), blocks)
        while completed < blocks:
            if sizes[completed] == 0:
                # round_blocks only pads the tail with zero-length blocks
                # (more blocks than rounds); they cannot change state, so
                # they cost neither budget nor a checkpoint write.
                completed += 1
                continue
            self._spend_budget()
            simulator.advance_rounds(sizes[completed])
            completed += 1
            self.store.store(self.scope, ordinal, completed, blocks, simulator)
        result = simulator.finalize()
        self.store.store(self.scope, ordinal, blocks + 1, blocks, result)
        self._sync_config_state(config, simulator.config)
        return result

    #: Backwards-compatible alias from when only market runs partitioned.
    run_market = run_simulation

    def _load(self, ordinal: int, block: int) -> Optional[object]:
        return self.store.load(self.scope, ordinal, block, self.blocks)

    @staticmethod
    def _sync_config_state(config: object, restored_config: object) -> None:
        """Copy run-accumulated state from a restored config onto the caller's.

        A monolithic run mutates the very objects the experiment
        constructed — e.g. :class:`ThresholdIncomeTax` accumulates
        ``total_collected``/``total_rebated`` counters the fig9 runner
        reads back after the run.  A restored checkpoint carries *pickle
        copies* of those objects, so without this sync the caller's
        instances would stay at their initial state and partitioned runs
        would report different (zeroed) policy totals than monolithic
        ones — under the same artifact-cache key.  The sync walks every
        dataclass field generically, so a future stateful config object
        is covered without editing an allowlist; pickle-canonical
        singletons (enum members) restore to the identical object and are
        skipped by the identity check.
        """
        if restored_config is None or restored_config is config:
            return
        if not dataclasses.is_dataclass(config) or type(config) is not type(
            restored_config
        ):
            return
        for field in dataclasses.fields(config):
            caller = getattr(config, field.name, None)
            restored = getattr(restored_config, field.name, None)
            if caller is None or restored is None or caller is restored:
                continue
            if type(caller) is type(restored) and hasattr(caller, "__dict__"):
                caller.__dict__.clear()
                caller.__dict__.update(copy.deepcopy(restored.__dict__))


def run_market_partitioned(
    config: object,
    blocks: int,
    store: Optional[CheckpointStore] = None,
    topology: object = None,
    snapshot_times: Optional[Sequence[float]] = None,
    scope: str = "run-market-partitioned",
) -> object:
    """Deprecated: run one :class:`MarketSimConfig` as checkpointed blocks.

    Thin wrapper over :func:`repro.runner.plan.execute` with
    ``ExecutionPlan(intra_jobs=blocks)`` — same semantics, same checkpoint
    scope (existing stores stay resumable), bit-identical results.  New
    code should call ``execute`` directly, where temporal blocks compose
    with spatial sharding and kernel options behind one plan object.
    """
    warnings.warn(
        "run_market_partitioned is deprecated; use "
        "repro.runner.plan.execute(config, ExecutionPlan(intra_jobs=blocks))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runner.plan import ExecutionPlan, execute

    return execute(
        config,
        ExecutionPlan(intra_jobs=blocks),
        topology=topology,
        snapshot_times=snapshot_times,
        store=store,
        scope=scope,
    )


def run_streaming_partitioned(
    config: object,
    blocks: int,
    store: Optional[CheckpointStore] = None,
    topology: object = None,
    snapshot_times: Optional[Sequence[float]] = None,
    scope: str = "run-streaming-partitioned",
) -> object:
    """Deprecated: run one :class:`StreamingSimConfig` as checkpointed blocks.

    The streaming counterpart of :func:`run_market_partitioned`; equally a
    thin deprecated wrapper over :func:`repro.runner.plan.execute`.
    """
    warnings.warn(
        "run_streaming_partitioned is deprecated; use "
        "repro.runner.plan.execute(config, ExecutionPlan(intra_jobs=blocks))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runner.plan import ExecutionPlan, execute

    return execute(
        config,
        ExecutionPlan(intra_jobs=blocks),
        topology=topology,
        snapshot_times=snapshot_times,
        store=store,
        scope=scope,
    )
