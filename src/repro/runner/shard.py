"""Spatial peer-space sharding: partition planning and shard execution.

:mod:`repro.runner.partition` splits a run *temporally* into checkpointed
round-blocks; this module splits each round *spatially* into peer shards.
A :class:`ShardPlan` assigns every peer id to a shard — either by a
``hash`` baseline (``peer_id % shards``) or by an ``overlay``-aware
greedy BFS over :meth:`~repro.overlay.topology.OverlayTopology.csr_adjacency`
that grows balanced, connected regions to minimise the edge cut — and the
simulators execute each shard's intra-round kernel work concurrently via
:func:`run_shard_tasks`, merging per-shard buffers in shard order at the
round barrier (the boundary-exchange phase).

Determinism contract
--------------------
Sharding is an *execution* concern, never a *modelling* one:

* every RNG draw happens centrally, in the same order as the monolithic
  kernel — shard tasks only consume slices of pre-drawn arrays;
* shard tasks are pure functions of read-only inputs; they return
  per-shard buffers and never mutate shared state (statically enforced by
  the ``SHARD001`` analysis rule);
* merges walk shards in index order, and per-shard contributions are
  exact (integer counts carried in float64, or writes to disjoint index
  sets), so the merged arrays are byte-identical to the monolithic
  kernel's at every dtype the kernels support;
* shard settings never enter sweep configurations, so sharded and
  monolithic runs share artifact-cache keys (see :func:`shard_overrides`).

Consequently ``shards=N`` composes freely with ``--intra-jobs`` temporal
partitioning: checkpoints taken under any shard count restore under any
other.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.p2psim.options import PARTITIONERS, SHARD_BACKENDS

__all__ = [
    "ShardPlan",
    "plan_shards",
    "run_shard_tasks",
    "shard_overrides",
    "active_shard_overrides",
    "resolve_shard_settings",
]

#: Ceiling on shard counts — far above any core count, and keeps shard
#: ids comfortably inside the int16 assignment tables.
MAX_SHARDS = 4096


# --------------------------------------------------------------------- plan


@dataclass(frozen=True)
class ShardPlan:
    """Immutable peer-id → shard assignment plus partition-quality metrics.

    ``table[peer_id]`` holds the shard of every peer known when the plan
    was built; ids beyond the table (peers that join mid-run) fall back to
    ``peer_id % shards``, so the assignment is total over the unbounded id
    space and churned populations stay fully, disjointly covered.
    """

    shards: int
    partitioner: str
    table: np.ndarray  # int16, indexed by peer id
    sizes: Tuple[int, ...]  # peers per shard at planning time
    edge_cut: Optional[int]  # boundary edges (None when not computed)
    total_edges: Optional[int]

    def shard_of(self, peer_ids: np.ndarray) -> np.ndarray:
        """Vectorized shard lookup for an array of peer ids."""
        ids = np.asarray(peer_ids, dtype=np.int64)
        out = (ids % self.shards).astype(np.int16)
        if self.table.size:
            known = ids < self.table.size
            out[known] = self.table[ids[known]]
        return out

    def shard_of_peer(self, peer_id: int) -> int:
        """Scalar shard lookup (joiners beyond the table hash by id)."""
        peer_id = int(peer_id)
        if 0 <= peer_id < self.table.size:
            return int(self.table[peer_id])
        return peer_id % self.shards

    @property
    def cut_fraction(self) -> Optional[float]:
        """Fraction of overlay edges crossing shard boundaries."""
        if self.edge_cut is None or not self.total_edges:
            return None
        return self.edge_cut / self.total_edges

    @property
    def imbalance(self) -> float:
        """Largest shard size over the balanced ideal (1.0 = perfect)."""
        total = sum(self.sizes)
        if not total or not self.shards:
            return 1.0
        return max(self.sizes) / (total / self.shards)


def _segmented_gather(row_start: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Positions of every CSR entry belonging to ``rows``, in row order."""
    counts = row_start[rows + 1] - row_start[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return (
        np.repeat(row_start[rows], counts)
        + np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], counts)
    )


def _balanced_quotas(count: int, shards: int) -> List[int]:
    """Split ``count`` peers into ``shards`` quotas, earlier shards larger."""
    base, remainder = divmod(count, shards)
    return [base + (1 if shard < remainder else 0) for shard in range(shards)]


def _overlay_assignment(row_start: np.ndarray, cols: np.ndarray, count: int, shards: int) -> np.ndarray:
    """Greedy BFS partition over a CSR adjacency into balanced regions.

    Each shard grows breadth-first from the lowest-indexed unvisited node
    until its quota fills; surplus frontier nodes seed the next shard, so
    consecutive shards stay spatially adjacent and the edge cut stays low
    on clustered overlays.  Fully deterministic: frontiers are deduplicated
    with :func:`numpy.unique` (sorted) and quotas follow peer order.
    """
    assign = np.full(count, -1, dtype=np.int16)
    visited = np.zeros(count, dtype=bool)
    carry = np.empty(0, dtype=np.int64)
    next_seed = 0
    for shard, quota in enumerate(_balanced_quotas(count, shards)):
        need = quota
        current = carry
        carry = np.empty(0, dtype=np.int64)
        while need > 0:
            if current.size == 0:
                while next_seed < count and visited[next_seed]:
                    next_seed += 1
                if next_seed >= count:
                    break
                current = np.array([next_seed], dtype=np.int64)
                visited[next_seed] = True
            if current.size > need:
                carry = current[need:]
                current = current[:need]
            assign[current] = shard
            need -= current.size
            if need == 0:
                break
            frontier = cols[_segmented_gather(row_start, current)]
            frontier = np.unique(frontier[~visited[frontier]])
            visited[frontier] = True
            current = frontier
    # The quota accounting above assigns every node; the fallback guards
    # against leaving a stray -1 in the cover if it ever regresses.
    stray = np.flatnonzero(assign < 0)
    if stray.size:
        assign[stray] = (stray % shards).astype(np.int16)
    return assign


def plan_shards(topology, shards: int, partitioner: str = "overlay") -> ShardPlan:
    """Partition ``topology``'s peers into ``shards`` shards.

    ``partitioner="hash"`` assigns ``peer_id % shards`` — O(1), overlay
    oblivious, the edge-cut baseline.  ``partitioner="overlay"`` runs the
    balanced greedy BFS of :func:`_overlay_assignment` over the CSR
    adjacency so neighbouring peers land in the same shard and the
    boundary-exchange phase carries less traffic.  Edge-cut metrics are
    recorded whenever the CSR adjacency is materialised (always for
    ``overlay``; for ``hash`` only on overlays small enough to walk
    cheaply).
    """
    if not isinstance(shards, int) or shards < 1 or shards > MAX_SHARDS:
        raise ValueError(f"shards must be an int in [1, {MAX_SHARDS}], got {shards!r}")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; known: {', '.join(PARTITIONERS)}"
        )
    peers = topology.peers()
    count = len(peers)
    max_id = peers[-1] if count else -1
    table = (np.arange(max_id + 1, dtype=np.int64) % shards).astype(np.int16)
    edge_cut: Optional[int] = None
    total_edges: Optional[int] = None
    peer_ids = np.asarray(peers, dtype=np.int64)
    if partitioner == "overlay" and shards > 1 and count:
        row_start, cols = topology.csr_adjacency(order=peers)
        assign = _overlay_assignment(row_start, cols, count, shards)
        table[peer_ids] = assign
        src = np.repeat(np.arange(count, dtype=np.int64), np.diff(row_start))
        edge_cut = int(np.count_nonzero(assign[src] != assign[cols])) // 2
        total_edges = int(cols.size) // 2
    elif shards > 1 and count and topology.num_edges <= 1_000_000:
        row_start, cols = topology.csr_adjacency(order=peers)
        assign = table[peer_ids]
        src = np.repeat(np.arange(count, dtype=np.int64), np.diff(row_start))
        edge_cut = int(np.count_nonzero(assign[src] != assign[cols])) // 2
        total_edges = int(cols.size) // 2
    if count:
        sizes = tuple(
            int(n) for n in np.bincount(table[peer_ids], minlength=shards)[:shards]
        )
    else:
        sizes = tuple(0 for _ in range(shards))
    return ShardPlan(
        shards=shards,
        partitioner=partitioner,
        table=table,
        sizes=sizes,
        edge_cut=edge_cut,
        total_edges=total_edges,
    )


# ----------------------------------------------------------------- executors


def _run_forked(tasks: Sequence[Callable[[], object]]) -> List[object]:
    """Process-pool fallback: one forked child per task, results via pipes.

    ``fork`` children inherit the task callables (and the numpy arrays
    they close over) by address-space copy, so nothing on the input side
    needs to pickle; only the per-shard result buffers travel back.
    """
    context = multiprocessing.get_context("fork")
    channels = []
    for task in tasks:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(target=_forked_child, args=(task, sender))
        process.start()
        sender.close()
        channels.append((receiver, process))
    results: List[object] = []
    failure: Optional[BaseException] = None
    for receiver, process in channels:
        try:
            ok, payload = receiver.recv()
        except EOFError:
            ok, payload = False, RuntimeError("shard worker exited before returning")
        receiver.close()
        process.join()
        if ok:
            results.append(payload)
        elif failure is None:
            failure = payload  # type: ignore[assignment]
    if failure is not None:
        raise failure
    return results


def _forked_child(task: Callable[[], object], sender) -> None:  # pragma: no cover - child
    try:
        sender.send((True, task()))
    except BaseException as error:  # noqa: BLE001 - relayed to the parent
        try:
            sender.send((False, error))
        except Exception:
            pass
    finally:
        sender.close()


def run_shard_tasks(
    tasks: Sequence[Callable[[], object]], backend: str = "thread"
) -> List[object]:
    """Run shard tasks and return their results in task order.

    ``thread`` (default) fans the tasks over a thread pool — the shard
    kernels are numpy sections that release the GIL, so threads scale on
    multi-core boxes with zero serialization cost.  ``process`` forks one
    child per task (for workloads that stay Python-bound), falling back to
    threads where ``fork`` is unavailable.  ``serial`` runs inline — the
    reference executor the other two must match byte-for-byte.
    """
    if backend not in SHARD_BACKENDS:
        raise ValueError(
            f"unknown shard backend {backend!r}; known: {', '.join(SHARD_BACKENDS)}"
        )
    if len(tasks) <= 1 or backend == "serial":
        return [task() for task in tasks]
    if backend == "process":
        if "fork" in multiprocessing.get_all_start_methods():
            return _run_forked(tasks)
        backend = "thread"
    with ThreadPoolExecutor(
        max_workers=len(tasks), thread_name_prefix="repro-shard"
    ) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]


# ------------------------------------------------------------- ambient knobs


@dataclass(frozen=True)
class ShardOverrides:
    """Ambient shard settings installed by an execution path.

    ``None`` fields inherit from the simulator configuration's
    :class:`~repro.p2psim.options.KernelOptions`.
    """

    shards: Optional[int] = None
    partitioner: Optional[str] = None
    shard_backend: Optional[str] = None


_ACTIVE_OVERRIDES: ContextVar[Optional[ShardOverrides]] = ContextVar(
    "repro-shard-overrides", default=None
)


def active_shard_overrides() -> Optional[ShardOverrides]:
    """The ambient shard overrides installed by the current execution path."""
    return _ACTIVE_OVERRIDES.get()


@contextmanager
def shard_overrides(
    shards: Optional[int] = None,
    partitioner: Optional[str] = None,
    shard_backend: Optional[str] = None,
) -> Iterator[None]:
    """Install ambient shard settings for simulators built in this scope.

    Sharding changes how a round executes, never what it computes, so
    these knobs ride *beside* the configuration rather than inside it:
    sweep tasks keep byte-identical payloads and artifact-cache keys
    whether or not the run was sharded.  Overrides take precedence over
    the corresponding :class:`~repro.p2psim.options.KernelOptions` fields;
    ``None`` leaves a field inherited.
    """
    token = _ACTIVE_OVERRIDES.set(
        ShardOverrides(shards=shards, partitioner=partitioner, shard_backend=shard_backend)
    )
    try:
        yield
    finally:
        _ACTIVE_OVERRIDES.reset(token)


def resolve_shard_settings(options) -> Tuple[int, str, str]:
    """Effective ``(shards, partitioner, shard_backend)`` for a simulator.

    Merges any ambient :func:`shard_overrides` over the configuration's
    :class:`~repro.p2psim.options.KernelOptions` fields and validates the
    combination (the per-spender ``loop`` kernel has no sharded form).
    """
    overrides = _ACTIVE_OVERRIDES.get()
    shards = int(getattr(options, "shards", 1))
    partitioner = str(getattr(options, "partitioner", "overlay"))
    backend = str(getattr(options, "shard_backend", "thread"))
    if overrides is not None:
        if overrides.shards is not None:
            shards = int(overrides.shards)
        if overrides.partitioner is not None:
            partitioner = overrides.partitioner
        if overrides.shard_backend is not None:
            backend = overrides.shard_backend
    if shards < 1 or shards > MAX_SHARDS:
        raise ValueError(f"shards must be in [1, {MAX_SHARDS}], got {shards}")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; known: {', '.join(PARTITIONERS)}"
        )
    if backend not in SHARD_BACKENDS:
        raise ValueError(
            f"unknown shard backend {backend!r}; known: {', '.join(SHARD_BACKENDS)}"
        )
    if shards > 1 and getattr(options, "kernel", "vectorized") == "loop":
        raise ValueError(
            "shards > 1 requires the vectorized kernel; the per-spender loop "
            "kernel has no sharded form"
        )
    return shards, partitioner, backend
