"""The unified execution plan: one object for *how* a simulation runs.

Earlier revisions scattered execution knobs across call sites —
``run_market_partitioned(config, blocks)`` / ``run_streaming_partitioned``
for temporal partitioning, ``--intra-jobs`` on the CLI, kernel and dtype
switches inside :class:`~repro.p2psim.options.KernelOptions`, and (with
spatial sharding) ``--shards``/``--partitioner`` on top.  The frozen
:class:`ExecutionPlan` collapses them behind one :func:`execute` entry
point:

>>> from repro.runner.plan import ExecutionPlan, execute
>>> plan = ExecutionPlan(rounds_per_block=500, shards=4)
>>> result = execute(config, plan)                        # doctest: +SKIP

Every plan field describes *execution*, never the simulated system:
``execute(config, plan)`` is byte-identical to ``execute(config)`` for
all plans, which is why sweeps can apply a plan ambiently without
touching task configurations or artifact-cache keys.  The legacy
``run_*_partitioned`` helpers remain as thin deprecated wrappers.
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.p2psim.options import PARTITIONERS, SHARD_BACKENDS, KernelOptions
from repro.runner.partition import BlockContext, CheckpointStore
from repro.runner.shard import MAX_SHARDS

__all__ = ["ExecutionPlan", "execute"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Immutable description of how (not what) a simulation executes.

    Attributes
    ----------
    rounds_per_block:
        Temporal partitioning: checkpoint every that-many rounds (the
        block count follows from the config's horizon).  ``None`` leaves
        the block count to ``intra_jobs``.
    intra_jobs:
        Number of checkpointed round-blocks (and, in sweeps, the pipeline
        width for block execution) — the historical ``--intra-jobs`` /
        ``blocks`` knob.  Ignored for block counting when
        ``rounds_per_block`` is set.
    shards:
        Spatial shard count (``None`` inherits the config options').
    partitioner:
        ``"overlay"`` or ``"hash"`` (``None`` inherits).
    shard_backend:
        ``"thread"``, ``"process"`` or ``"serial"`` (``None`` inherits).
    options:
        Full :class:`~repro.p2psim.options.KernelOptions` override; when
        set it replaces the config's options wholesale (the shard fields
        above still win over it when also set).
    """

    rounds_per_block: Optional[int] = None
    intra_jobs: int = 1
    shards: Optional[int] = None
    partitioner: Optional[str] = None
    shard_backend: Optional[str] = None
    options: Optional[KernelOptions] = None

    def __post_init__(self) -> None:
        if self.rounds_per_block is not None and self.rounds_per_block < 1:
            raise ValueError(
                f"rounds_per_block must be >= 1, got {self.rounds_per_block}"
            )
        if self.intra_jobs < 1:
            raise ValueError(f"intra_jobs must be >= 1, got {self.intra_jobs}")
        if self.shards is not None and not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(
                f"shards must be in [1, {MAX_SHARDS}], got {self.shards}"
            )
        if self.partitioner is not None and self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {PARTITIONERS}, got {self.partitioner!r}"
            )
        if self.shard_backend is not None and self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if self.options is not None and not isinstance(self.options, KernelOptions):
            raise TypeError("options must be a KernelOptions instance or None")

    def resolved_options(self, config: object) -> KernelOptions:
        """Effective kernel options for ``config`` under this plan."""
        base = self.options if self.options is not None else config.options
        updates: Dict[str, object] = {}
        if self.shards is not None:
            updates["shards"] = self.shards
        if self.partitioner is not None:
            updates["partitioner"] = self.partitioner
        if self.shard_backend is not None:
            updates["shard_backend"] = self.shard_backend
        return dataclasses.replace(base, **updates) if updates else base

    def shard_override_kwargs(self) -> Dict[str, object]:
        """The plan's explicit shard settings, as :func:`~repro.runner.shard.\
shard_overrides` keyword arguments (empty when everything is inherited)."""
        out: Dict[str, object] = {}
        if self.shards is not None:
            out["shards"] = self.shards
        if self.partitioner is not None:
            out["partitioner"] = self.partitioner
        if self.shard_backend is not None:
            out["shard_backend"] = self.shard_backend
        return out

    def blocks_for(self, total_rounds: int) -> int:
        """Round-block count for a run of ``total_rounds`` rounds."""
        if self.rounds_per_block is not None:
            return max(1, math.ceil(total_rounds / self.rounds_per_block))
        return max(1, self.intra_jobs)


def _round_length(sim_config: object) -> float:
    """Seconds of simulated time per round for either simulator config."""
    if hasattr(sim_config, "step"):
        return float(sim_config.step)
    return float(sim_config.scheduling_interval)


def execute(
    sim_config: object,
    plan: Optional[ExecutionPlan] = None,
    *,
    topology: object = None,
    snapshot_times: Optional[Sequence[float]] = None,
    store: Optional[CheckpointStore] = None,
    scope: str = "execute",
) -> object:
    """Run ``sim_config`` to completion under ``plan``.

    The single entry point behind which temporal partitioning
    (``rounds_per_block`` / ``intra_jobs`` checkpointed blocks, persisted
    in ``store`` when given), spatial sharding (``shards`` /
    ``partitioner`` / ``shard_backend``) and kernel selection compose.
    Dispatches on the config type; any plan produces byte-identical
    results to the monolithic default plan.
    """
    from repro.p2psim.config import MarketSimConfig, StreamingSimConfig
    from repro.p2psim.market_sim import CreditMarketSimulator
    from repro.p2psim.streaming_sim import StreamingMarketSimulator

    if plan is None:
        plan = ExecutionPlan()
    if isinstance(sim_config, MarketSimConfig):
        runner = CreditMarketSimulator.run_config
    elif isinstance(sim_config, StreamingSimConfig):
        runner = StreamingMarketSimulator.run_config
    else:
        raise TypeError(
            "execute() needs a MarketSimConfig or StreamingSimConfig, "
            f"got {type(sim_config).__name__}"
        )
    options = plan.resolved_options(sim_config)
    if options == sim_config.options:
        config = sim_config
    else:
        # kernel=None keeps the legacy field from re-firing its
        # deprecation warning on the rebuilt config; the effective kernel
        # already lives in the resolved options.
        config = dataclasses.replace(sim_config, options=options, kernel=None)

    total = max(1, math.ceil(float(sim_config.horizon) / _round_length(sim_config)))
    blocks = plan.blocks_for(total)
    if blocks <= 1 and store is None:
        return runner(config, topology=topology, snapshot_times=snapshot_times)

    def run_blocks(checkpoints: CheckpointStore) -> object:
        context = BlockContext(checkpoints, blocks=blocks, scope=scope, budget=None)
        with context:
            return runner(config, topology=topology, snapshot_times=snapshot_times)

    if store is not None:
        return run_blocks(store)
    with tempfile.TemporaryDirectory(prefix="repro-intra-") as tmp:
        return run_blocks(CheckpointStore(tmp))
