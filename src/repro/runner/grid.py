"""Declarative parameter grids and sweep specifications.

A sweep is described by a :class:`SweepSpec`: an experiment id, a
:class:`ParamGrid` (or explicit list of configurations), a replication
count and a base seed.  ``SweepSpec.tasks()`` expands the spec into the
flat list of :class:`SweepTask` shards the executor distributes over
workers.

Determinism contract
--------------------
Each shard's seed is derived as::

    derive_seed(base_seed, "sweep", experiment_id, canonical_config(config), replication)

``canonical_config`` is a sorted-key JSON rendering of the configuration,
so the seed depends only on the *content* of the configuration — not on
its position in the grid, the worker that executes it, or the order in
which shards complete.  Reordering grid axes, appending new
configurations, or changing ``--jobs`` therefore never perturbs the
random draws of existing shards (the same stream-stability property that
:class:`repro.utils.rng.SeedSequenceFactory` gives in-process components).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.common import Scale
from repro.utils.rng import derive_seed

__all__ = [
    "ParamGrid",
    "SweepSpec",
    "SweepTask",
    "SCENARIOS",
    "build_spec",
    "canonical_config",
    "scenario",
]


def _jsonable(value: object) -> object:
    """Coerce ``value`` to a JSON-serialisable equivalent (tuples, numpy scalars...)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    if isinstance(value, Scale):
        return value.value
    return str(value)


def _canonical_value(value: object) -> object:
    """Like :func:`_jsonable`, but with numeric identity normalised.

    Non-bool ints become floats so ``{"threshold": 50}`` (CLI-parsed) and
    ``{"threshold": 50.0}`` (scenario bundle) are the *same* configuration
    — identical seeds, identical cache artifacts.
    """
    value = _jsonable(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return float(value)
    if isinstance(value, list):
        return [_canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _canonical_value(item) for key, item in value.items()}
    return value


def canonical_config(config: Mapping[str, object]) -> str:
    """Render ``config`` as canonical JSON (sorted keys, compact separators).

    This string is the identity of a configuration: it feeds both the
    per-shard seed derivation and the artifact-cache key, so two configs
    with equal content always share seeds and cached results.  Numeric
    values are normalised to float first, so ``50`` and ``50.0`` denote
    the same configuration.
    """
    return json.dumps(
        _canonical_value(dict(config)), sort_keys=True, separators=(",", ":")
    )


@dataclass(frozen=True)
class SweepTask:
    """One executable shard of a sweep: a configuration × replication pair.

    Attributes
    ----------
    experiment_id:
        Registry id of the (sweepable) experiment, e.g. ``"fig11"``.
    config:
        Parameter overrides for this grid point (may be empty for plain
        multi-replication runs of a registered experiment).
    config_index:
        Position of the configuration in the expanded grid — used only to
        order results deterministically, never for seed derivation.
    replication:
        Replication index in ``range(replications)``.
    seed:
        The shard's derived base seed (see the module docstring).
    scale:
        Reproduction scale preset passed to the runner.
    """

    experiment_id: str
    config: Mapping[str, object]
    config_index: int
    replication: int
    seed: int
    scale: str = Scale.DEFAULT.value

    def config_key(self) -> str:
        """Canonical JSON identity of this shard's configuration."""
        return canonical_config(self.config)

    def to_payload(self) -> Dict[str, object]:
        """Render the task as a plain JSON-safe dict (picklable for workers)."""
        return {
            "experiment_id": self.experiment_id,
            "config": dict(self.config),
            "config_index": self.config_index,
            "replication": self.replication,
            "seed": self.seed,
            "scale": str(self.scale),
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "SweepTask":
        """Inverse of :meth:`to_payload`."""
        return SweepTask(
            experiment_id=str(payload["experiment_id"]),
            config=dict(payload["config"]),  # type: ignore[arg-type]
            config_index=int(payload["config_index"]),  # type: ignore[arg-type]
            replication=int(payload["replication"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            scale=str(payload["scale"]),
        )


class ParamGrid:
    """A cartesian product of named parameter axes.

    Axes expand in *insertion order* with the last axis varying fastest,
    so the expansion order is deterministic and documentation-friendly.

    Examples
    --------
    >>> grid = ParamGrid({"a": [1, 2], "b": ["x"]})
    >>> grid.points()
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    >>> len(grid)
    2
    """

    def __init__(self, axes: Optional[Mapping[str, Sequence[object]]] = None) -> None:
        self._axes: Dict[str, List[object]] = {}
        for name, values in (axes or {}).items():
            self.add_axis(name, values)

    def add_axis(self, name: str, values: Iterable[object]) -> "ParamGrid":
        """Add (or replace) an axis; returns ``self`` for chaining."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} must have at least one value")
        self._axes[str(name)] = values
        return self

    @property
    def axes(self) -> Dict[str, List[object]]:
        """A copy of the axis mapping."""
        return {name: list(values) for name, values in self._axes.items()}

    def points(self) -> List[Dict[str, object]]:
        """Expand the cartesian product into a list of configuration dicts."""
        if not self._axes:
            return [{}]
        names = list(self._axes)
        combos = itertools.product(*(self._axes[name] for name in names))
        return [dict(zip(names, combo)) for combo in combos]

    def __len__(self) -> int:
        total = 1
        for values in self._axes.values():
            total *= len(values)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{name}={values!r}" for name, values in self._axes.items())
        return f"ParamGrid({inner})"

    @staticmethod
    def _coerce(text: str) -> object:
        """Parse a CLI axis value: int, then float, then bare string."""
        for parser in (int, float):
            try:
                return parser(text)
            except ValueError:
                continue
        return text

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "ParamGrid":
        """Build a grid from CLI-style ``name=v1,v2,...`` axis specs.

        >>> ParamGrid.parse(["rate=0.1,0.2", "threshold=50"]).points()
        [{'rate': 0.1, 'threshold': 50}, {'rate': 0.2, 'threshold': 50}]
        """
        grid = cls()
        for spec in specs:
            if "=" not in spec:
                raise ValueError(f"parameter spec {spec!r} must look like name=v1,v2")
            name, _, values = spec.partition("=")
            name = name.strip()
            parsed = [cls._coerce(part.strip()) for part in values.split(",") if part.strip()]
            if not name or not parsed:
                raise ValueError(f"parameter spec {spec!r} must look like name=v1,v2")
            grid.add_axis(name, parsed)
        return grid


@dataclass
class SweepSpec:
    """A declarative sweep: experiment × configurations × replications.

    Attributes
    ----------
    experiment_id:
        Registry id of the experiment to sweep.
    grid:
        A :class:`ParamGrid` or an explicit list of configuration dicts.
        An empty grid yields the single empty configuration ``{}`` (a
        plain multi-replication run of the registered experiment).
    replications:
        Number of independent replications per configuration.
    base_seed:
        Seed at the root of the per-shard derivation chain.
    scale:
        Reproduction scale preset forwarded to every shard.
    name:
        Optional human-readable sweep name (scenario bundles set it).
    """

    experiment_id: str
    grid: object = field(default_factory=ParamGrid)
    replications: int = 1
    base_seed: int = 0
    scale: str = Scale.DEFAULT.value
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be at least 1")
        self.scale = Scale(self.scale).value

    def configs(self) -> List[Dict[str, object]]:
        """The expanded list of configuration dicts, in deterministic order.

        Each configuration is normalized through the experiment registry
        (knobs the point runner ignores for that configuration are dropped,
        e.g. fig10's ``wealth_threshold`` under the fixed policy), and
        configurations whose normalized content coincides are deduplicated
        keeping the first occurrence — two grid points that would simulate
        identically never run (or cache, or report) twice.
        """
        from repro.experiments.registry import normalize_sweep_config

        if isinstance(self.grid, ParamGrid):
            raw = self.grid.points()
        else:
            raw = [dict(config) for config in self.grid]  # type: ignore[union-attr]
        configs: List[Dict[str, object]] = []
        seen = set()
        for config in raw:
            config = normalize_sweep_config(self.experiment_id, config)
            key = canonical_config(config)
            if key in seen:
                continue
            seen.add(key)
            configs.append(config)
        return configs

    def tasks(self) -> List[SweepTask]:
        """Expand into the flat ``(config × replication)`` shard list.

        Shards are ordered by ``(config_index, replication)``; their seeds
        follow the determinism contract in the module docstring.
        """
        tasks: List[SweepTask] = []
        for config_index, config in enumerate(self.configs()):
            key = canonical_config(config)
            for replication in range(self.replications):
                tasks.append(
                    SweepTask(
                        experiment_id=self.experiment_id,
                        config=config,
                        config_index=config_index,
                        replication=replication,
                        seed=derive_seed(
                            self.base_seed, "sweep", self.experiment_id, key, replication
                        ),
                        scale=self.scale,
                    )
                )
        return tasks

    def describe(self) -> str:
        """One-line human summary, e.g. ``fig11: 4 configs x 4 reps = 16 shards``."""
        configs = len(self.configs())
        shards = configs * self.replications
        label = self.name or self.experiment_id
        return (
            f"{label}: {configs} config{'s' if configs != 1 else ''} x "
            f"{self.replications} rep{'s' if self.replications != 1 else ''} "
            f"= {shards} shard{'s' if shards != 1 else ''} "
            f"(scale={self.scale}, base_seed={self.base_seed})"
        )


def _fig3_wealth_grid() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig3",
        grid=ParamGrid({"num_peers": [50, 100], "average_wealth": [5.0, 20.0, 60.0, 100.0]}),
        name="fig3-wealth-grid",
    )


def _fig9_taxation_configs() -> List[Dict[str, object]]:
    # One explicit no-tax baseline ahead of the rate x threshold product:
    # crossing tax_rate=0 with the thresholds would duplicate the same
    # NoTax simulation under configs that differ only in an ignored knob.
    configs: List[Dict[str, object]] = [{"tax_rate": 0.0}]
    configs += ParamGrid({"tax_rate": [0.1, 0.2], "tax_threshold": [50.0, 80.0]}).points()
    return configs


def _fig9_taxation_grid() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig9", grid=_fig9_taxation_configs(), name="fig9-taxation-grid"
    )


def _fig11_churn_grid() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig11",
        grid=ParamGrid({"mean_lifespan": [500.0, 1000.0], "rate_factor": [1.0, 2.0]}),
        name="fig11-churn-grid",
    )


# -- streaming-kernel smoke bundles ---------------------------------------------
#
# Tiny streaming-simulator grids crossing the two scheduling kernels; CI's
# determinism job sweeps them to pin the cross-kernel / cross-partition
# byte-identity and cache-key contracts of the streaming path.


def _fig5_6_streaming_smoke() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig5_6",
        grid=ParamGrid(
            {
                "simulator": ["streaming"],
                "kernel": ["loop", "vectorized"],
                "num_peers": [36],
                "horizon": [150.0],
            }
        ),
        scale=Scale.SMOKE.value,
        name="fig5_6-streaming-smoke",
    )


def _fig11_streaming_smoke() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig11",
        grid=ParamGrid(
            {
                "simulator": ["streaming"],
                "kernel": ["loop", "vectorized"],
                "mean_lifespan": [80.0],
                "num_peers": [36],
                "horizon": [150.0],
            }
        ),
        scale=Scale.SMOKE.value,
        name="fig11-streaming-smoke",
    )


# -- paper-scale bundles --------------------------------------------------------
#
# One named bundle per figure at the paper's Sec. III/VI populations and
# horizons (500-1000 peers, tens of thousands of simulated seconds).  These
# are deliberately heavyweight: drive them through ``run_sweep`` with a
# cache directory and ``--jobs`` so shards parallelise and interrupted runs
# resume.  Every bundle pins ``scale="paper"``; replications/seed stay
# overridable through :func:`scenario`.


def _fig1_paper() -> SweepSpec:
    # The paper's two cases — (c=200, Poisson-seller prices) condensed and
    # (c=12, uniform prices) healthy — crossed into the full 2x2 ablation so
    # the sweep separates the wealth lever from the pricing lever.
    return SweepSpec(
        experiment_id="fig1",
        grid=ParamGrid(
            {"initial_credits": [12.0, 200.0], "pricing_model": ["uniform", "poisson-seller"]}
        ),
        scale=Scale.PAPER.value,
        name="fig1-paper",
    )


def _fig2_paper() -> SweepSpec:
    # The paper's three (M, N) combinations, one shard each.
    configs = [
        {"total_credits": 2000, "num_peers": 100},
        {"total_credits": 25000, "num_peers": 50},
        {"total_credits": 50000, "num_peers": 50},
    ]
    return SweepSpec(
        experiment_id="fig2", grid=configs, scale=Scale.PAPER.value, name="fig2-paper"
    )


def _fig3_paper() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig3",
        grid=ParamGrid(
            {
                "num_peers": [50, 100, 200, 400],
                "average_wealth": [1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0],
            }
        ),
        scale=Scale.PAPER.value,
        name="fig3-paper",
    )


def _fig4_paper() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig4",
        grid=ParamGrid(
            {"average_wealth": [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0]}
        ),
        scale=Scale.PAPER.value,
        name="fig4-paper",
    )


def _fig5_6_paper() -> SweepSpec:
    # Convergence-horizon x population sweep around the paper's 1000-peer,
    # 40000 s run: shorter horizons expose the early-stage transient.
    return SweepSpec(
        experiment_id="fig5_6",
        grid=ParamGrid({"num_peers": [500, 1000], "horizon": [10000.0, 20000.0, 40000.0]}),
        scale=Scale.PAPER.value,
        name="fig5_6-paper",
    )


def _fig7_paper() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig7",
        grid=ParamGrid({"average_wealth": [50.0, 100.0, 200.0]}),
        scale=Scale.PAPER.value,
        name="fig7-paper",
    )


def _fig8_paper() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig8",
        grid=ParamGrid({"average_wealth": [50.0, 100.0, 200.0]}),
        scale=Scale.PAPER.value,
        name="fig8-paper",
    )


def _fig9_paper() -> SweepSpec:
    return SweepSpec(
        experiment_id="fig9",
        grid=_fig9_taxation_configs(),
        scale=Scale.PAPER.value,
        name="fig9-paper",
    )


def _fig10_paper() -> SweepSpec:
    # Spending-policy grid: the static baseline plus the dynamic adjustment
    # at thresholds below/at the paper's average wealth (c = 100).
    configs: List[Dict[str, object]] = [{"spending_policy": "fixed"}]
    configs += ParamGrid(
        {"spending_policy": ["dynamic"], "wealth_threshold": [50.0, 100.0]}
    ).points()
    return SweepSpec(
        experiment_id="fig10", grid=configs, scale=Scale.PAPER.value, name="fig10-paper"
    )


def _fig11_paper() -> SweepSpec:
    # `mean_lifespan=None` is the static-overlay baseline point (an empty
    # config would instead replicate the whole three-sub-figure experiment).
    configs: List[Dict[str, object]] = [{"mean_lifespan": None}]
    configs += ParamGrid(
        {"mean_lifespan": [500.0, 1000.0, 2000.0], "rate_factor": [1.0, 2.0, 4.0]}
    ).points()
    return SweepSpec(
        experiment_id="fig11", grid=configs, scale=Scale.PAPER.value, name="fig11-paper"
    )


#: Named scenario bundles — curated grids for the paper's sensitivity studies
#: (default scale) and one paper-scale bundle per figure.
SCENARIOS: Dict[str, Callable[[], SweepSpec]] = {
    "fig3-wealth-grid": _fig3_wealth_grid,
    "fig9-taxation-grid": _fig9_taxation_grid,
    "fig11-churn-grid": _fig11_churn_grid,
    "fig5_6-streaming-smoke": _fig5_6_streaming_smoke,
    "fig11-streaming-smoke": _fig11_streaming_smoke,
    "fig1-paper": _fig1_paper,
    "fig2-paper": _fig2_paper,
    "fig3-paper": _fig3_paper,
    "fig4-paper": _fig4_paper,
    "fig5_6-paper": _fig5_6_paper,
    "fig7-paper": _fig7_paper,
    "fig8-paper": _fig8_paper,
    "fig9-paper": _fig9_paper,
    "fig10-paper": _fig10_paper,
    "fig11-paper": _fig11_paper,
}


def scenario(
    name: str,
    replications: Optional[int] = None,
    base_seed: Optional[int] = None,
    scale: Optional[str] = None,
) -> SweepSpec:
    """Instantiate a named scenario bundle, optionally overriding run knobs."""
    try:
        spec = SCENARIOS[name]()
    except KeyError as error:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from error
    if replications is not None:
        spec.replications = replications
    if base_seed is not None:
        spec.base_seed = base_seed
    if scale is not None:
        spec.scale = Scale(scale).value
    return spec


def build_spec(
    target: str,
    grid: Optional[object] = None,
    replications: int = 1,
    base_seed: int = 0,
    scale: Optional[str] = None,
) -> SweepSpec:
    """Resolve ``target`` into a validated :class:`SweepSpec`.

    ``target`` is either a named scenario bundle (which keeps its pinned
    scale unless ``scale`` is given, and whose grid ``grid`` overrides
    when provided) or a sweepable experiment id (swept over ``grid``, at
    ``scale`` or the default scale).  Every axis name in the expanded
    configurations is validated against the experiment's declared sweep
    parameters before anything executes, so a typo'd axis raises one
    clean ``KeyError``/``ValueError`` here instead of a per-shard failure
    inside a worker.  Shared by the CLI (string-parsed grids) and the
    ``repro serve`` daemon (JSON-provided grids).
    """
    from repro.experiments import get_sweep_runner, validate_sweep_config

    if target in SCENARIOS:
        spec = scenario(target, replications=replications, base_seed=base_seed, scale=scale)
        if grid is not None:
            spec.grid = grid
    else:
        spec = SweepSpec(
            target,
            grid=grid if grid is not None else ParamGrid(),
            replications=replications,
            base_seed=base_seed,
            scale=scale or Scale.DEFAULT.value,
        )
    # (An empty grid's single {} config is a whole-experiment replication
    # and carries no axes to validate — but the experiment itself must
    # still exist, so an unknown target fails here, not inside a worker.)
    axis_names = {name for config in spec.configs() for name in config}
    if axis_names:
        validate_sweep_config(spec.experiment_id, axis_names)
    else:
        get_sweep_runner(spec.experiment_id)
    return spec
