"""Tests for the membership tracker and churn process."""

import pytest

from repro.overlay import ChurnConfig, ChurnProcess, MembershipTracker, scale_free_topology
from repro.overlay.churn import ChurnEventType
from repro.overlay.topology import OverlayTopology
from repro.simulation import SimulationEngine


class TestMembershipTracker:
    def test_join_wires_new_peer(self):
        topology = scale_free_topology(50, seed=1)
        tracker = MembershipTracker(topology, target_degree=5, seed=2)
        new_peer = tracker.join()
        assert topology.has_peer(new_peer)
        assert 1 <= topology.degree(new_peer) <= 5
        assert tracker.joins == 1

    def test_peer_ids_never_reused(self):
        topology = scale_free_topology(20, mean_degree=6, seed=1)
        tracker = MembershipTracker(topology, seed=2)
        first = tracker.join()
        tracker.leave(first)
        second = tracker.join()
        assert second != first

    def test_explicit_peer_id(self):
        topology = OverlayTopology([0, 1])
        topology.add_edge(0, 1)
        tracker = MembershipTracker(topology, target_degree=1, seed=3)
        assert tracker.join(peer_id=10) == 10
        with pytest.raises(ValueError):
            tracker.join(peer_id=10)

    def test_leave_repairs_orphans(self):
        # Star topology: removing the hub would isolate every leaf.
        topology = OverlayTopology.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        tracker = MembershipTracker(topology, target_degree=2, seed=4)
        tracker.leave(0)
        assert not topology.has_peer(0)
        assert topology.isolated_peers() == []
        assert tracker.leaves == 1

    def test_select_neighbors_excludes_self_and_is_bounded(self):
        topology = scale_free_topology(30, seed=5)
        tracker = MembershipTracker(topology, target_degree=10, seed=6)
        chosen = tracker.select_neighbors(exclude=0, count=10)
        assert 0 not in chosen
        assert len(chosen) == len(set(chosen)) == 10

    def test_invalid_target_degree(self):
        with pytest.raises(ValueError):
            MembershipTracker(OverlayTopology([0]), target_degree=0)

    def test_population(self):
        topology = OverlayTopology([0, 1, 2])
        tracker = MembershipTracker(topology, target_degree=1)
        assert tracker.population() == 3


class TestChurnConfig:
    def test_expected_population(self):
        config = ChurnConfig(arrival_rate=2.0, mean_lifespan=500.0)
        assert config.expected_population == 1000.0

    def test_for_population(self):
        config = ChurnConfig.for_population(200, mean_lifespan=400.0)
        assert config.arrival_rate == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChurnConfig(arrival_rate=0.0, mean_lifespan=10.0)
        with pytest.raises(ValueError):
            ChurnConfig(arrival_rate=1.0, mean_lifespan=-5.0)


class TestChurnProcess:
    def _run(self, config, horizon=200.0, initial=30, seed=1):
        topology = scale_free_topology(initial, mean_degree=6, seed=seed)
        tracker = MembershipTracker(topology, target_degree=6, seed=seed + 1)
        joined, left = [], []
        churn = ChurnProcess(
            config,
            tracker,
            on_join=lambda peer, time: joined.append(peer),
            on_leave=lambda peer, time: left.append(peer),
        )
        engine = SimulationEngine(seed=seed)
        churn.start(engine)
        engine.run(until=horizon)
        return topology, tracker, churn, joined, left

    def test_generates_joins_and_leaves(self):
        config = ChurnConfig(arrival_rate=0.5, mean_lifespan=60.0)
        topology, tracker, churn, joined, left = self._run(config)
        assert churn.join_count() == len(joined) > 0
        assert churn.leave_count() == len(left) > 0
        assert topology.num_peers == 30 + len(joined) - len(left)

    def test_population_tracks_littles_law(self):
        config = ChurnConfig.for_population(40, mean_lifespan=50.0)
        topology, *_ = self._run(config, horizon=600.0, initial=40, seed=3)
        # Steady-state population should stay within a factor ~2 of the target.
        assert 15 <= topology.num_peers <= 90

    def test_initial_peers_not_churned_when_disabled(self):
        config = ChurnConfig(arrival_rate=0.01, mean_lifespan=5.0, churn_initial_peers=False)
        topology, tracker, churn, joined, left = self._run(config, horizon=100.0)
        initial_still_present = [peer for peer in range(30) if topology.has_peer(peer)]
        assert len(initial_still_present) == 30

    def test_events_recorded_in_order(self):
        config = ChurnConfig(arrival_rate=0.5, mean_lifespan=40.0)
        _, _, churn, _, _ = self._run(config)
        times = [event.time for event in churn.events]
        assert times == sorted(times)
        assert all(isinstance(event.event_type, ChurnEventType) for event in churn.events)

    def test_stop_cancels_departures(self):
        config = ChurnConfig(arrival_rate=0.5, mean_lifespan=40.0)
        topology = scale_free_topology(20, mean_degree=5, seed=9)
        tracker = MembershipTracker(topology, target_degree=5, seed=10)
        churn = ChurnProcess(config, tracker)
        engine = SimulationEngine(seed=11)
        churn.start(engine)
        engine.run(until=10.0)
        churn.stop()
        population = topology.num_peers
        engine.run(until=500.0)
        assert topology.num_peers == population


class TestChurnEdgeCases:
    """Edge cases of event-driven churn: simultaneity and cancellation."""

    def _process(self, initial=12, seed=21):
        topology = scale_free_topology(initial, mean_degree=4, seed=seed)
        tracker = MembershipTracker(topology, target_degree=4, seed=seed + 1)
        config = ChurnConfig(
            arrival_rate=0.001, mean_lifespan=1e6, churn_initial_peers=False
        )
        churn = ChurnProcess(config, tracker)
        engine = SimulationEngine(seed=seed + 2)
        churn.start(engine)
        return topology, tracker, churn, engine

    def test_arrival_at_same_event_time_as_departure(self):
        # An arrival and a departure land on the identical simulation time;
        # the engine breaks the tie by schedule order, and both events must
        # apply cleanly — same population, both notifications recorded at
        # the shared timestamp.
        topology, tracker, churn, engine = self._process()
        departing = sorted(topology.peers())[0]
        when = 5.0
        churn._schedule_departure(departing, when - engine.now)
        engine.schedule_at(when, lambda _engine: churn._handle_arrival())
        before = topology.num_peers
        engine.run(until=when)
        same_time = [event for event in churn.events if event.time == when]
        kinds = sorted(event.event_type.value for event in same_time)
        assert kinds == ["join", "leave"]
        assert not topology.has_peer(departing)
        assert topology.num_peers == before  # one in, one out
        assert topology.isolated_peers() == []

    def test_departure_after_peer_already_left_is_a_noop(self):
        # Two departures can race onto the same peer (e.g. a rescheduled
        # lifetime); the second must find the peer gone and do nothing.
        topology, tracker, churn, engine = self._process()
        departing = sorted(topology.peers())[0]
        churn._schedule_departure(departing, 2.0)
        engine.schedule_at(3.0, lambda _engine: churn._handle_departure(departing))
        engine.run(until=4.0)
        leaves = [
            event
            for event in churn.events
            if event.peer_id == departing and event.event_type is ChurnEventType.LEAVE
        ]
        assert len(leaves) == 1

    def test_on_stop_cancels_pending_departure_handles(self):
        # Every scheduled departure holds an engine handle; stopping the
        # process must cancel them all so no surgery fires afterwards.
        topology = scale_free_topology(15, mean_degree=4, seed=31)
        tracker = MembershipTracker(topology, target_degree=4, seed=32)
        config = ChurnConfig(arrival_rate=0.2, mean_lifespan=50.0)
        churn = ChurnProcess(config, tracker)
        engine = SimulationEngine(seed=33)
        churn.start(engine)
        engine.run(until=5.0)
        handles = list(churn._departure_handles.values())
        assert handles, "expected pending departures"
        assert all(not handle.cancelled for handle in handles)
        churn.stop()
        assert churn._departure_handles == {}
        assert all(handle.cancelled for handle in handles)
        population = topology.num_peers
        events_before = len(churn.events)
        engine.run(until=1000.0)
        assert topology.num_peers == population
        assert len(churn.events) == events_before
