"""Tests for inequality metrics (Gini, Lorenz and friends)."""

import numpy as np
import pytest

from repro.core.metrics import (
    atkinson_index,
    bankruptcy_fraction,
    gini_from_lorenz,
    gini_from_pmf,
    gini_index,
    hoover_index,
    lorenz_curve,
    lorenz_curve_from_pmf,
    theil_index,
    top_share,
    wealth_summary,
)


class TestGiniIndex:
    def test_perfect_equality_is_zero(self):
        assert gini_index([5.0] * 10) == pytest.approx(0.0)

    def test_extreme_inequality_approaches_one(self):
        wealths = [0.0] * 99 + [100.0]
        assert gini_index(wealths) == pytest.approx(0.99, abs=1e-9)

    def test_known_small_example(self):
        # For [0, 1]: G = 1/2 exactly.
        assert gini_index([0.0, 1.0]) == pytest.approx(0.5)

    def test_scale_invariance(self):
        wealths = np.random.default_rng(0).random(50)
        assert gini_index(wealths) == pytest.approx(gini_index(wealths * 42.0))

    def test_all_zero_wealth_is_zero(self):
        assert gini_index([0.0, 0.0, 0.0]) == 0.0

    def test_exponential_sample_near_half(self):
        samples = np.random.default_rng(1).exponential(10.0, size=20000)
        assert gini_index(samples) == pytest.approx(0.5, abs=0.02)

    def test_rejects_negative_and_empty(self):
        with pytest.raises(ValueError):
            gini_index([-1.0, 2.0])
        with pytest.raises(ValueError):
            gini_index([])
        with pytest.raises(ValueError):
            gini_index([np.nan, 1.0])

    def test_matches_lorenz_integral(self):
        wealths = np.random.default_rng(2).pareto(2.0, size=500) + 0.1
        population, cumulative = lorenz_curve(wealths)
        assert gini_index(wealths) == pytest.approx(
            gini_from_lorenz(population, cumulative), abs=0.01
        )


class TestLorenzCurve:
    def test_endpoints(self):
        population, cumulative = lorenz_curve([1.0, 2.0, 3.0])
        assert population[0] == 0.0 and population[-1] == 1.0
        assert cumulative[0] == 0.0 and cumulative[-1] == pytest.approx(1.0)

    def test_curve_below_equality_line(self):
        population, cumulative = lorenz_curve([1.0, 5.0, 10.0])
        assert np.all(cumulative <= population + 1e-12)

    def test_monotone_nondecreasing(self):
        population, cumulative = lorenz_curve(np.random.default_rng(3).random(30))
        assert np.all(np.diff(cumulative) >= -1e-12)

    def test_zero_total_returns_diagonal(self):
        population, cumulative = lorenz_curve([0.0, 0.0])
        np.testing.assert_allclose(population, cumulative)


class TestDistributionMetrics:
    def test_gini_from_pmf_degenerate_is_zero(self):
        pmf = np.zeros(11)
        pmf[5] = 1.0
        assert gini_from_pmf(pmf) == pytest.approx(0.0)

    def test_gini_from_pmf_geometric_near_half(self):
        rho = 0.99
        support = np.arange(2000)
        pmf = (1 - rho) * rho**support
        assert gini_from_pmf(pmf) == pytest.approx(0.5, abs=0.02)

    def test_gini_from_pmf_matches_sample_gini(self):
        rng = np.random.default_rng(4)
        pmf = np.array([0.5, 0.2, 0.2, 0.05, 0.05])
        samples = rng.choice(5, size=200_000, p=pmf).astype(float)
        assert gini_from_pmf(pmf) == pytest.approx(gini_index(samples), abs=0.01)

    def test_gini_from_pmf_custom_support(self):
        assert gini_from_pmf([0.5, 0.5], support=[0.0, 2.0]) == pytest.approx(0.5)

    def test_lorenz_from_pmf_endpoints(self):
        population, wealth = lorenz_curve_from_pmf([0.25, 0.25, 0.25, 0.25])
        assert population[0] == 0.0 and population[-1] == pytest.approx(1.0)
        assert wealth[-1] == pytest.approx(1.0)

    def test_pmf_validation(self):
        with pytest.raises(ValueError):
            gini_from_pmf([0.0, 0.0])
        with pytest.raises(ValueError):
            gini_from_pmf([0.5, 0.5], support=[1.0])
        with pytest.raises(ValueError):
            gini_from_pmf([0.5, 0.5], support=[-1.0, 1.0])


class TestOtherIndices:
    def test_theil_zero_for_equality(self):
        assert theil_index([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_theil_positive_for_inequality(self):
        assert theil_index([1.0, 10.0]) > 0.0

    def test_hoover_known_value(self):
        # [0, 2]: half the wealth must move to equalise.
        assert hoover_index([0.0, 2.0]) == pytest.approx(0.5)

    def test_atkinson_bounds(self):
        wealths = [1.0, 2.0, 3.0, 10.0]
        value = atkinson_index(wealths, epsilon=0.5)
        assert 0.0 < value < 1.0
        assert atkinson_index([2.0, 2.0], epsilon=0.5) == pytest.approx(0.0)

    def test_atkinson_epsilon_one_with_zero_wealth(self):
        assert atkinson_index([0.0, 1.0], epsilon=1.0) == 1.0

    def test_atkinson_invalid_epsilon(self):
        with pytest.raises(ValueError):
            atkinson_index([1.0], epsilon=0.0)

    def test_bankruptcy_fraction(self):
        assert bankruptcy_fraction([0.0, 0.0, 1.0, 2.0]) == pytest.approx(0.5)
        assert bankruptcy_fraction([1.0, 2.0], threshold=1.5) == pytest.approx(0.5)

    def test_top_share(self):
        wealths = [1.0] * 9 + [91.0]
        assert top_share(wealths, 0.1) == pytest.approx(0.91)
        with pytest.raises(ValueError):
            top_share(wealths, 0.0)

    def test_wealth_summary_keys_and_consistency(self):
        summary = wealth_summary([0.0, 1.0, 2.0, 3.0])
        assert summary["num_peers"] == 4
        assert summary["total"] == pytest.approx(6.0)
        assert summary["gini"] == pytest.approx(gini_index([0.0, 1.0, 2.0, 3.0]))
        assert summary["bankrupt_fraction"] == pytest.approx(0.25)
