"""Tests for the mutable overlay topology."""

import networkx as nx
import numpy as np
import pytest

from repro.overlay import OverlayTopology


def triangle():
    return OverlayTopology.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges(self):
        topo = OverlayTopology.from_edges(4, [(0, 1), (2, 3)])
        assert topo.num_peers == 4
        assert topo.num_edges == 2

    def test_from_networkx_round_trip(self):
        graph = nx.path_graph(5)
        topo = OverlayTopology.from_networkx(graph)
        back = topo.to_networkx()
        assert set(back.edges) == set(graph.edges)

    def test_copy_is_independent(self):
        topo = triangle()
        clone = topo.copy()
        clone.remove_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestPeers:
    def test_add_peer_idempotent(self):
        topo = OverlayTopology()
        topo.add_peer(1)
        topo.add_peer(1)
        assert topo.num_peers == 1

    def test_remove_peer_returns_neighbors_and_cleans_edges(self):
        topo = triangle()
        former = topo.remove_peer(1)
        assert former == [0, 2]
        assert topo.num_peers == 2
        assert topo.num_edges == 1
        assert not topo.has_peer(1)

    def test_remove_missing_peer_raises(self):
        with pytest.raises(KeyError):
            OverlayTopology().remove_peer(5)

    def test_contains_and_len(self):
        topo = triangle()
        assert 0 in topo
        assert 9 not in topo
        assert len(topo) == 3


class TestEdges:
    def test_add_edge_rejects_self_loop(self):
        topo = OverlayTopology([0])
        with pytest.raises(ValueError):
            topo.add_edge(0, 0)

    def test_add_edge_requires_both_endpoints(self):
        topo = OverlayTopology([0])
        with pytest.raises(KeyError):
            topo.add_edge(0, 1)

    def test_duplicate_edge_returns_false(self):
        topo = OverlayTopology([0, 1])
        assert topo.add_edge(0, 1) is True
        assert topo.add_edge(1, 0) is False
        assert topo.num_edges == 1

    def test_remove_edge(self):
        topo = triangle()
        topo.remove_edge(0, 1)
        assert not topo.has_edge(0, 1)
        assert topo.num_edges == 2

    def test_remove_missing_edge_raises(self):
        topo = OverlayTopology([0, 1])
        with pytest.raises(KeyError):
            topo.remove_edge(0, 1)

    def test_edges_sorted_canonical(self):
        topo = OverlayTopology.from_edges(4, [(3, 2), (1, 0)])
        assert list(topo.edges()) == [(0, 1), (2, 3)]


class TestQueries:
    def test_neighbors_and_degree(self):
        topo = triangle()
        assert topo.neighbors(0) == frozenset({1, 2})
        assert topo.degree(0) == 2
        assert topo.degrees() == {0: 2, 1: 2, 2: 2}

    def test_neighbors_missing_peer_raises(self):
        with pytest.raises(KeyError):
            triangle().neighbors(99)

    def test_mean_degree(self):
        assert triangle().mean_degree() == pytest.approx(2.0)
        assert OverlayTopology().mean_degree() == 0.0

    def test_isolated_peers(self):
        topo = OverlayTopology([0, 1, 2])
        topo.add_edge(0, 1)
        assert topo.isolated_peers() == [2]

    def test_degree_histogram(self):
        topo = OverlayTopology.from_edges(3, [(0, 1)])
        assert topo.degree_histogram() == {1: 2, 0: 1}


class TestStructure:
    def test_is_connected(self):
        assert triangle().is_connected()
        disconnected = OverlayTopology.from_edges(4, [(0, 1)])
        assert not disconnected.is_connected()
        assert not OverlayTopology().is_connected()

    def test_connected_components_sorted_by_size(self):
        topo = OverlayTopology.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        components = topo.connected_components()
        assert len(components) == 2
        assert components[0] == {0, 1, 2}
        assert components[1] == {3, 4}

    def test_adjacency_matrix_symmetric(self):
        topo = triangle()
        matrix = topo.adjacency_matrix()
        np.testing.assert_array_equal(matrix, matrix.T)
        assert matrix.sum() == 6  # 3 undirected edges

    def test_adjacency_matrix_custom_order(self):
        topo = OverlayTopology.from_edges(3, [(0, 2)])
        matrix = topo.adjacency_matrix(order=[2, 0, 1])
        assert matrix[0, 1] == 1.0
        assert matrix[1, 0] == 1.0
        assert matrix[2].sum() == 0.0


class TestBulkConstruction:
    def test_from_edge_arrays_matches_from_edges(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 50, size=300)
        dst = rng.integers(0, 50, size=300)
        bulk = OverlayTopology.from_edge_arrays(50, src, dst)
        undirected = {
            (min(int(u), int(v)), max(int(u), int(v)))
            for u, v in zip(src, dst)
            if u != v
        }
        reference = OverlayTopology.from_edges(50, sorted(undirected))
        assert bulk.num_peers == reference.num_peers
        assert bulk.num_edges == reference.num_edges
        for peer in range(50):
            assert bulk.neighbors(peer) == reference.neighbors(peer)

    def test_from_edge_arrays_drops_self_loops_and_duplicates(self):
        topo = OverlayTopology.from_edge_arrays(
            4, np.array([0, 0, 1, 2, 3]), np.array([1, 1, 0, 2, 0])
        )
        assert topo.num_edges == 2  # {0,1} once, {2,2} dropped, {3,0} kept
        assert topo.neighbors(0) == frozenset({1, 3})
        assert topo.neighbors(2) == frozenset()

    def test_from_edge_arrays_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="endpoints"):
            OverlayTopology.from_edge_arrays(3, np.array([0]), np.array([3]))
        with pytest.raises(ValueError, match="length"):
            OverlayTopology.from_edge_arrays(3, np.array([0, 1]), np.array([2]))

    def test_from_edge_arrays_empty(self):
        topo = OverlayTopology.from_edge_arrays(5, np.array([]), np.array([]))
        assert topo.num_peers == 5
        assert topo.num_edges == 0


class TestCsrAdjacency:
    def test_matches_dense_adjacency(self):
        topo = OverlayTopology.from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)])
        row_start, col_indices = topo.csr_adjacency()
        dense = topo.adjacency_matrix()
        assert row_start.dtype == np.int64 and col_indices.dtype == np.int64
        assert row_start[0] == 0 and row_start[-1] == col_indices.size == 2 * topo.num_edges
        for row in range(6):
            cols = col_indices[row_start[row] : row_start[row + 1]]
            assert list(cols) == sorted(cols)  # ascending within each row
            np.testing.assert_array_equal(np.flatnonzero(dense[row]), cols)

    def test_respects_custom_order_and_ignores_outsiders(self):
        topo = OverlayTopology.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        order = [3, 1, 2]  # peer 2's neighbours 1 and 3 -> positions 1 and 0
        row_start, col_indices = topo.csr_adjacency(order)
        dense = topo.adjacency_matrix(order)
        for row in range(len(order)):
            cols = col_indices[row_start[row] : row_start[row + 1]]
            np.testing.assert_array_equal(np.flatnonzero(dense[row]), cols)

    def test_isolated_peers_have_empty_rows(self):
        topo = OverlayTopology.from_edges(3, [(0, 1)])
        row_start, col_indices = topo.csr_adjacency()
        assert row_start[2] == row_start[3]  # peer 2 has no neighbours
        assert col_indices.size == 2
