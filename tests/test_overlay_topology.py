"""Tests for the mutable overlay topology."""

import networkx as nx
import numpy as np
import pytest

from repro.overlay import OverlayTopology


def triangle():
    return OverlayTopology.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges(self):
        topo = OverlayTopology.from_edges(4, [(0, 1), (2, 3)])
        assert topo.num_peers == 4
        assert topo.num_edges == 2

    def test_from_networkx_round_trip(self):
        graph = nx.path_graph(5)
        topo = OverlayTopology.from_networkx(graph)
        back = topo.to_networkx()
        assert set(back.edges) == set(graph.edges)

    def test_copy_is_independent(self):
        topo = triangle()
        clone = topo.copy()
        clone.remove_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestPeers:
    def test_add_peer_idempotent(self):
        topo = OverlayTopology()
        topo.add_peer(1)
        topo.add_peer(1)
        assert topo.num_peers == 1

    def test_remove_peer_returns_neighbors_and_cleans_edges(self):
        topo = triangle()
        former = topo.remove_peer(1)
        assert former == [0, 2]
        assert topo.num_peers == 2
        assert topo.num_edges == 1
        assert not topo.has_peer(1)

    def test_remove_missing_peer_raises(self):
        with pytest.raises(KeyError):
            OverlayTopology().remove_peer(5)

    def test_contains_and_len(self):
        topo = triangle()
        assert 0 in topo
        assert 9 not in topo
        assert len(topo) == 3


class TestEdges:
    def test_add_edge_rejects_self_loop(self):
        topo = OverlayTopology([0])
        with pytest.raises(ValueError):
            topo.add_edge(0, 0)

    def test_add_edge_requires_both_endpoints(self):
        topo = OverlayTopology([0])
        with pytest.raises(KeyError):
            topo.add_edge(0, 1)

    def test_duplicate_edge_returns_false(self):
        topo = OverlayTopology([0, 1])
        assert topo.add_edge(0, 1) is True
        assert topo.add_edge(1, 0) is False
        assert topo.num_edges == 1

    def test_remove_edge(self):
        topo = triangle()
        topo.remove_edge(0, 1)
        assert not topo.has_edge(0, 1)
        assert topo.num_edges == 2

    def test_remove_missing_edge_raises(self):
        topo = OverlayTopology([0, 1])
        with pytest.raises(KeyError):
            topo.remove_edge(0, 1)

    def test_edges_sorted_canonical(self):
        topo = OverlayTopology.from_edges(4, [(3, 2), (1, 0)])
        assert list(topo.edges()) == [(0, 1), (2, 3)]


class TestQueries:
    def test_neighbors_and_degree(self):
        topo = triangle()
        assert topo.neighbors(0) == frozenset({1, 2})
        assert topo.degree(0) == 2
        assert topo.degrees() == {0: 2, 1: 2, 2: 2}

    def test_neighbors_missing_peer_raises(self):
        with pytest.raises(KeyError):
            triangle().neighbors(99)

    def test_mean_degree(self):
        assert triangle().mean_degree() == pytest.approx(2.0)
        assert OverlayTopology().mean_degree() == 0.0

    def test_isolated_peers(self):
        topo = OverlayTopology([0, 1, 2])
        topo.add_edge(0, 1)
        assert topo.isolated_peers() == [2]

    def test_degree_histogram(self):
        topo = OverlayTopology.from_edges(3, [(0, 1)])
        assert topo.degree_histogram() == {1: 2, 0: 1}


class TestStructure:
    def test_is_connected(self):
        assert triangle().is_connected()
        disconnected = OverlayTopology.from_edges(4, [(0, 1)])
        assert not disconnected.is_connected()
        assert not OverlayTopology().is_connected()

    def test_connected_components_sorted_by_size(self):
        topo = OverlayTopology.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        components = topo.connected_components()
        assert len(components) == 2
        assert components[0] == {0, 1, 2}
        assert components[1] == {3, 4}

    def test_adjacency_matrix_symmetric(self):
        topo = triangle()
        matrix = topo.adjacency_matrix()
        np.testing.assert_array_equal(matrix, matrix.T)
        assert matrix.sum() == 6  # 3 undirected edges

    def test_adjacency_matrix_custom_order(self):
        topo = OverlayTopology.from_edges(3, [(0, 2)])
        matrix = topo.adjacency_matrix(order=[2, 0, 1])
        assert matrix[0, 1] == 1.0
        assert matrix[1, 0] == 1.0
        assert matrix[2].sum() == 0.0
