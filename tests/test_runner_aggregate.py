"""Tests for cross-replication aggregation and the bootstrap CI helper."""

import math

import numpy as np
import pytest

from repro.experiments.common import ExperimentResult
from repro.runner import SweepSpec, aggregate_report, aggregate_sweep, bootstrap_ci
from repro.runner.cache import result_to_payload
from repro.runner.executor import ShardResult, SweepReport
from repro.utils.records import ResultTable


class TestBootstrapCI:
    def test_deterministic_given_seed(self):
        samples = [0.1, 0.4, 0.3, 0.2, 0.5]
        assert bootstrap_ci(samples, seed=3) == bootstrap_ci(samples, seed=3)

    def test_interval_brackets_mean_for_tight_samples(self):
        samples = list(np.linspace(0.4, 0.6, 20))
        low, high = bootstrap_ci(samples, seed=1)
        assert low <= float(np.mean(samples)) <= high
        assert 0.4 <= low <= high <= 0.6

    def test_degenerate_cases(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)
        with pytest.raises(ValueError, match="non-empty"):
            bootstrap_ci([])
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError, match="num_resamples"):
            bootstrap_ci([1.0, 2.0], num_resamples=0)


def _report(values_by_config):
    """Build a synthetic SweepReport: one scalar metric per replication."""
    configs = [{"level": level} for level in sorted(values_by_config)]
    spec = SweepSpec("fig3", grid=configs, replications=3, base_seed=2, scale="smoke")
    shards = []
    for task in spec.tasks():
        value = values_by_config[task.config["level"]][task.replication]
        table = ResultTable(title="point")
        table.add_row(setting=f"level={task.config['level']}", level=task.config["level"], gini=value)
        result = ExperimentResult(experiment_id="fig3", title="point", tables=[table])
        shards.append(ShardResult(task=task, payload=result_to_payload(result)))
    return SweepReport(spec=spec, shards=shards, executed=len(shards), jobs=1)


class TestAggregateSweep:
    def test_mean_std_and_ci(self):
        report = _report({1: [0.2, 0.3, 0.4], 2: [0.5, 0.6, 0.7]})
        table = aggregate_sweep(report)
        rows = {(row["level"], row["metric"]): row for row in table}
        row = rows[(1, "gini")]
        assert math.isclose(row["mean"], 0.3)
        assert math.isclose(row["std"], 0.1)
        assert row["ci_low"] < 0.3 < row["ci_high"]
        assert row["boot_low"] <= row["mean"] <= row["boot_high"]
        assert row["replications"] == 3
        assert row["setting"] == "level=1"
        assert math.isclose(rows[(2, "gini")]["mean"], 0.6)

    def test_config_echo_columns_are_not_aggregated(self):
        # A table column that just repeats a swept parameter must not become
        # a metric row (mean/CI of a constant).
        report = _report({1: [0.2, 0.3, 0.4], 2: [0.5, 0.6, 0.7]})
        metrics = {row["metric"] for row in aggregate_sweep(report)}
        assert metrics == {"gini"}

    def test_deterministic_bootstrap_columns(self):
        report = _report({1: [0.2, 0.3, 0.4]})
        assert aggregate_sweep(report).to_csv() == aggregate_sweep(report).to_csv()

    def test_aggregate_report_wraps_table_and_keeps_stats_out_of_it(self):
        report = _report({1: [0.2, 0.3, 0.4]})
        report.cached = 2
        report.jobs = 4
        result = aggregate_report(report)
        assert result.metadata["cached"] == 2
        assert result.metadata["jobs"] == 4
        assert "jobs" not in result.table().columns()
        assert "Sweep aggregate" in result.format()


def _shard(spec, task, rows):
    """Build one ShardResult whose first table has ``rows`` (None = no tables)."""
    tables = []
    if rows is not None:
        table = ResultTable(title="point")
        for row in rows:
            table.add_row(**row)
        tables = [table]
    result = ExperimentResult(experiment_id=spec.experiment_id, title="point", tables=tables)
    return ShardResult(task=task, payload=result_to_payload(result))


class TestRaggedReplications:
    def _report_with_rows(self, rows_by_replication):
        spec = SweepSpec(
            "fig3", grid=[{"level": 1}], replications=len(rows_by_replication), base_seed=2
        )
        shards = [
            _shard(spec, task, rows_by_replication[task.replication])
            for task in spec.tasks()
        ]
        return SweepReport(spec=spec, shards=shards, executed=len(shards), jobs=1)

    def test_mismatched_row_counts_raise(self):
        report = self._report_with_rows(
            [
                [{"gini": 0.2}, {"gini": 0.3}],
                [{"gini": 0.4}],  # one row short — must not be truncated away
            ]
        )
        with pytest.raises(ValueError, match="ragged replications"):
            aggregate_sweep(report)

    def test_replication_without_tables_raises_when_others_have_them(self):
        report = self._report_with_rows([[{"gini": 0.2}], None])
        with pytest.raises(ValueError, match="no tables"):
            aggregate_sweep(report)
        # ... and symmetrically when the *first* replication is the empty one
        # (previously this skipped the config silently).
        report = self._report_with_rows([None, [{"gini": 0.2}]])
        with pytest.raises(ValueError, match="ragged replications"):
            aggregate_sweep(report)

    def test_config_whose_replications_all_lack_tables_is_recorded(self):
        report = self._report_with_rows([None, None])
        table = aggregate_sweep(report)
        assert len(table) == 0
        assert table.metadata["configs_without_tables"] == ['{"level":1.0}']

    def test_uniform_replications_unaffected(self):
        report = self._report_with_rows([[{"gini": 0.2}], [{"gini": 0.4}]])
        table = aggregate_sweep(report)
        assert len(table) == 1
        assert math.isclose(table.rows[0]["mean"], 0.3)
        assert "configs_without_tables" not in table.metadata
