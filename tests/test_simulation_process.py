"""Tests for processes, periodic processes and monitors."""

import pytest

from repro.simulation import (
    IntervalSampler,
    PeriodicProcess,
    Process,
    ProcessState,
    SimulationEngine,
    TimeSeriesMonitor,
)


class CountingProcess(PeriodicProcess):
    def __init__(self, interval):
        super().__init__(interval=interval, name="counter")
        self.times = []

    def tick(self):
        self.times.append(self.now)


class TestProcessLifecycle:
    def test_engine_access_before_start_raises(self):
        process = Process(name="p")
        with pytest.raises(RuntimeError):
            _ = process.engine

    def test_start_and_stop_states(self):
        engine = SimulationEngine(seed=0)
        process = Process(name="p")
        assert process.state is ProcessState.CREATED
        process.start(engine)
        assert process.is_running
        process.stop()
        assert process.state is ProcessState.STOPPED

    def test_double_start_raises(self):
        engine = SimulationEngine(seed=0)
        process = Process()
        process.start(engine)
        with pytest.raises(RuntimeError):
            process.start(engine)

    def test_stop_is_idempotent(self):
        engine = SimulationEngine(seed=0)
        process = Process()
        process.start(engine)
        process.stop()
        process.stop()
        assert process.state is ProcessState.STOPPED

    def test_call_in_skipped_after_stop(self):
        engine = SimulationEngine(seed=0)
        process = Process()
        process.start(engine)
        calls = []
        process.call_in(1.0, lambda: calls.append("x"))
        process.stop()
        engine.run()
        assert calls == []

    def test_call_at_runs_while_running(self):
        engine = SimulationEngine(seed=0)
        process = Process()
        process.start(engine)
        calls = []
        process.call_at(2.0, lambda: calls.append(process.now))
        engine.run()
        assert calls == [2.0]


class TestPeriodicProcess:
    def test_tick_interval(self):
        engine = SimulationEngine(seed=0)
        proc = CountingProcess(interval=2.0)
        proc.start(engine)
        engine.run(until=7.0)
        assert proc.times == [2.0, 4.0, 6.0]
        assert proc.ticks == 3

    def test_stop_cancels_future_ticks(self):
        engine = SimulationEngine(seed=0)
        proc = CountingProcess(interval=1.0)
        proc.start(engine)
        engine.run(until=2.5)
        proc.stop()
        engine.run(until=10.0)
        assert proc.times == [1.0, 2.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            CountingProcess(interval=0.0)

    def test_jitter_applied(self):
        engine = SimulationEngine(seed=0)

        class Jittered(PeriodicProcess):
            def __init__(self):
                super().__init__(interval=1.0, jitter=lambda: 0.5)
                self.times = []

            def tick(self):
                self.times.append(self.now)

        proc = Jittered()
        proc.start(engine)
        engine.run(until=4.0)
        assert proc.times == [1.5, 3.0]


class TestMonitors:
    def test_interval_sampler_records_series(self):
        engine = SimulationEngine(seed=0)
        values = iter(range(100))
        sampler = IntervalSampler(interval=1.0, probe=lambda: float(next(values)), label="v")
        sampler.start(engine)
        engine.run(until=3.5)
        assert sampler.series.x == [1.0, 2.0, 3.0]
        assert sampler.series.y == [0.0, 1.0, 2.0]

    def test_interval_sampler_warmup(self):
        engine = SimulationEngine(seed=0)
        sampler = IntervalSampler(interval=1.0, probe=lambda: 1.0, warmup=2.5)
        sampler.start(engine)
        engine.run(until=5.0)
        assert sampler.series.x == [3.0, 4.0, 5.0]

    def test_time_series_monitor_multiple_probes(self):
        engine = SimulationEngine(seed=0)
        monitor = TimeSeriesMonitor(interval=1.0)
        monitor.add_probe("one", lambda: 1.0)
        monitor.add_probe("two", lambda: 2.0)
        monitor.start(engine)
        engine.run(until=2.0)
        assert monitor.series("one").y == [1.0, 1.0]
        assert monitor.series("two").y == [2.0, 2.0]
        assert monitor.labels() == ["one", "two"]

    def test_duplicate_probe_label_rejected(self):
        monitor = TimeSeriesMonitor(interval=1.0)
        monitor.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            monitor.add_probe("x", lambda: 0.0)

    def test_snapshot_and_last_values(self):
        engine = SimulationEngine(seed=0)
        monitor = TimeSeriesMonitor(interval=1.0)
        monitor.add_probe("x", lambda: 5.0)
        monitor.start(engine)
        assert monitor.snapshot() == {"x": 5.0}
        assert monitor.last_values() == {"x": None}
        engine.run(until=1.0)
        assert monitor.last_values() == {"x": 5.0}
