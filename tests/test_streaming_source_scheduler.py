"""Tests for the stream source and chunk schedulers."""

import numpy as np
import pytest

from repro.simulation import SimulationEngine
from repro.streaming import (
    BufferMap,
    PlaybackDrivenScheduler,
    RarestFirstScheduler,
    StreamSource,
)


class TestStreamSource:
    def test_emits_at_chunk_rate(self):
        engine = SimulationEngine(seed=0)
        source = StreamSource(chunk_rate=2.0)
        source.start(engine)
        engine.run(until=5.0)
        assert source.chunks_emitted == 10
        assert source.latest_index == 9

    def test_subscribers_notified(self):
        engine = SimulationEngine(seed=0)
        source = StreamSource(chunk_rate=1.0)
        received = []
        source.subscribe(lambda chunk: received.append(chunk.index))
        source.start(engine)
        engine.run(until=3.0)
        assert received == [0, 1, 2]

    def test_emit_backlog(self):
        source = StreamSource(chunk_rate=1.0)
        chunks = source.emit_backlog(5)
        assert [chunk.index for chunk in chunks] == [0, 1, 2, 3, 4]
        assert source.has_chunk(3)
        with pytest.raises(ValueError):
            source.emit_backlog(-1)

    def test_playback_point_lags_live_edge(self):
        source = StreamSource(chunk_rate=1.0)
        source.emit_backlog(20)
        assert source.playback_point(startup_delay_chunks=5) == 14
        assert source.playback_point(startup_delay_chunks=100) == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            StreamSource(chunk_rate=0.0)


def _maps(holdings):
    result = {}
    for peer, indices in holdings.items():
        buffer_map = BufferMap()
        for index in indices:
            buffer_map.add(index)
        result[peer] = buffer_map
    return result


class TestSchedulers:
    def test_playback_driven_prefers_earliest(self):
        scheduler = PlaybackDrivenScheduler(
            max_requests_per_round=2, rng=np.random.default_rng(0)
        )
        own = BufferMap()
        neighbors = _maps({1: [0, 1, 2, 3]})
        requests = scheduler.schedule(own, neighbors, want_range=range(0, 4))
        assert [request.chunk_index for request in requests] == [0, 1]

    def test_rarest_first_prefers_rare_chunks(self):
        scheduler = RarestFirstScheduler(max_requests_per_round=1, rng=np.random.default_rng(0))
        own = BufferMap()
        neighbors = _maps({1: [0, 1], 2: [0], 3: [0]})
        requests = scheduler.schedule(own, neighbors, want_range=range(0, 2))
        assert requests[0].chunk_index == 1  # held by one neighbour only

    def test_skips_chunks_already_held(self):
        scheduler = PlaybackDrivenScheduler(rng=np.random.default_rng(0))
        own = BufferMap()
        own.add(0)
        neighbors = _maps({1: [0, 1]})
        requests = scheduler.schedule(own, neighbors, want_range=range(0, 2))
        assert [request.chunk_index for request in requests] == [1]

    def test_skips_chunks_nobody_has(self):
        scheduler = PlaybackDrivenScheduler(rng=np.random.default_rng(0))
        requests = scheduler.schedule(BufferMap(), _maps({1: []}), want_range=range(0, 3))
        assert requests == []

    def test_budget_limits_requests(self):
        scheduler = PlaybackDrivenScheduler(
            max_requests_per_round=5, rng=np.random.default_rng(0)
        )
        neighbors = _maps({1: [0, 1, 2, 3, 4]})
        requests = scheduler.schedule(
            BufferMap(),
            neighbors,
            want_range=range(0, 5),
            price_lookup=lambda seller, chunk: 1.0,
            budget=2.0,
        )
        assert len(requests) == 2

    def test_cheapest_supplier_chosen_in_cheapest_mode(self):
        scheduler = PlaybackDrivenScheduler(
            rng=np.random.default_rng(0), supplier_choice="cheapest"
        )
        neighbors = _maps({1: [0], 2: [0]})
        prices = {1: 5.0, 2: 1.0}
        requests = scheduler.schedule(
            BufferMap(),
            neighbors,
            want_range=range(0, 1),
            price_lookup=lambda seller, chunk: prices[seller],
        )
        assert requests[0].supplier_id == 2
        assert requests[0].price == 1.0

    def test_availability_mode_uses_posted_price(self):
        scheduler = PlaybackDrivenScheduler(
            rng=np.random.default_rng(0), supplier_choice="availability"
        )
        neighbors = _maps({7: [0]})
        requests = scheduler.schedule(
            BufferMap(),
            neighbors,
            want_range=range(0, 1),
            price_lookup=lambda seller, chunk: 3.0,
        )
        assert requests[0].supplier_id == 7
        assert requests[0].price == 3.0

    def test_max_requests_cap(self):
        scheduler = PlaybackDrivenScheduler(
            max_requests_per_round=3, rng=np.random.default_rng(0)
        )
        neighbors = _maps({1: list(range(10))})
        requests = scheduler.schedule(BufferMap(), neighbors, want_range=range(0, 10))
        assert len(requests) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PlaybackDrivenScheduler(max_requests_per_round=0)
        with pytest.raises(ValueError):
            PlaybackDrivenScheduler(supplier_choice="bogus")
