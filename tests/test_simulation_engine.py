"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import SimulationEngine, SimulationError, StopSimulation


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(3.0, lambda eng: fired.append("c"))
        engine.schedule_at(1.0, lambda eng: fired.append("a"))
        engine.schedule_at(2.0, lambda eng: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(1.0, lambda eng: fired.append("first"))
        engine.schedule_at(1.0, lambda eng: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_priority_orders_simultaneous_events(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(1.0, lambda eng: fired.append("low"), priority=5)
        engine.schedule_at(1.0, lambda eng: fired.append("high"), priority=-5)
        engine.run()
        assert fired == ["high", "low"]

    def test_schedule_in_relative_delay(self):
        engine = SimulationEngine(seed=0, start_time=10.0)
        times = []
        engine.schedule_in(2.5, lambda eng: times.append(eng.now))
        engine.run()
        assert times == [12.5]

    def test_scheduling_in_past_raises(self):
        engine = SimulationEngine(seed=0, start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda eng: None)

    def test_negative_delay_raises(self):
        engine = SimulationEngine(seed=0)
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda eng: None)

    def test_nan_time_raises(self):
        engine = SimulationEngine(seed=0)
        with pytest.raises(SimulationError):
            engine.schedule_at(float("nan"), lambda eng: None)

    def test_events_scheduled_from_callbacks(self):
        engine = SimulationEngine(seed=0)
        fired = []

        def chain(eng):
            fired.append(eng.now)
            if len(fired) < 3:
                eng.schedule_in(1.0, chain)

        engine.schedule_at(0.0, chain)
        engine.run()
        assert fired == [0.0, 1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine(seed=0)
        fired = []
        handle = engine.schedule_at(1.0, lambda eng: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine(seed=0)
        handle = engine.schedule_at(1.0, lambda eng: None)
        engine.schedule_at(2.0, lambda eng: None)
        handle.cancel()
        assert engine.pending_events == 1


class TestRunControl:
    def test_run_until_advances_clock_exactly(self):
        engine = SimulationEngine(seed=0)
        engine.schedule_at(1.0, lambda eng: None)
        final = engine.run(until=5.0)
        assert final == 5.0
        assert engine.now == 5.0

    def test_events_beyond_until_are_not_executed(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(10.0, lambda eng: fired.append("late"))
        engine.run(until=5.0)
        assert fired == []
        engine.run(until=15.0)
        assert fired == ["late"]

    def test_run_until_before_now_raises(self):
        engine = SimulationEngine(seed=0, start_time=10.0)
        with pytest.raises(SimulationError):
            engine.run(until=5.0)

    def test_max_events_limits_execution(self):
        engine = SimulationEngine(seed=0)
        fired = []
        for i in range(5):
            engine.schedule_at(float(i), lambda eng, i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_stop_condition(self):
        engine = SimulationEngine(seed=0)
        fired = []
        for i in range(5):
            engine.schedule_at(float(i), lambda eng, i=i: fired.append(i))
        engine.add_stop_condition(lambda eng: len(fired) >= 3)
        engine.run()
        assert fired == [0, 1, 2]

    def test_stop_simulation_exception(self):
        engine = SimulationEngine(seed=0)
        fired = []

        def bomb(eng):
            fired.append(eng.now)
            raise StopSimulation

        engine.schedule_at(1.0, bomb)
        engine.schedule_at(2.0, lambda eng: fired.append(eng.now))
        engine.run()
        assert fired == [1.0]

    def test_request_stop(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(1.0, lambda eng: (fired.append(1), eng.request_stop()))
        engine.schedule_at(2.0, lambda eng: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine(seed=0).step() is False

    def test_counters(self):
        engine = SimulationEngine(seed=0)
        engine.schedule_at(1.0, lambda eng: None)
        engine.schedule_at(2.0, lambda eng: None)
        engine.run()
        assert engine.events_scheduled == 2
        assert engine.events_executed == 2

    def test_peek_next_time(self):
        engine = SimulationEngine(seed=0)
        assert engine.peek_next_time() is None
        engine.schedule_at(4.0, lambda eng: None)
        assert engine.peek_next_time() == 4.0


class TestEngineRng:
    def test_named_streams_are_stable_objects(self):
        engine = SimulationEngine(seed=3)
        assert engine.rng("a") is engine.rng("a")

    def test_named_streams_reproducible_across_engines(self):
        a = SimulationEngine(seed=3).rng("x").random(5)
        b = SimulationEngine(seed=3).rng("x").random(5)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = SimulationEngine(seed=3).rng("x").random(5)
        b = SimulationEngine(seed=4).rng("x").random(5)
        assert list(a) != list(b)

    def test_seed_property(self):
        assert SimulationEngine(seed=42).seed == 42
