"""Tests for the condensation analysis (threshold T, Theorems 2-3, Eq. 9)."""

import math

import numpy as np
import pytest

from repro.core.condensation import (
    condensation_threshold,
    condensation_threshold_from_density,
    diagnose_condensation,
    exact_exchange_efficiency,
    exchange_efficiency,
    grand_canonical_wealth,
    is_symmetric_utilization,
    solve_fugacity,
)


class TestSymmetryAndThreshold:
    def test_symmetric_detection(self):
        assert is_symmetric_utilization([1.0, 1.0, 1.0])
        assert is_symmetric_utilization([2.0, 2.0])  # scale invariant
        assert not is_symmetric_utilization([1.0, 0.5])

    def test_corollary_symmetric_threshold_infinite(self):
        assert condensation_threshold([1.0] * 10) == math.inf

    def test_threshold_finite_for_heterogeneous(self):
        threshold = condensation_threshold([1.0, 0.5, 0.5, 0.5])
        # Background peers contribute u/(1-u) = 1 each; averaged over 4 peers.
        assert threshold == pytest.approx(3.0 / 4.0)

    def test_threshold_grows_as_background_approaches_max(self):
        low = condensation_threshold([1.0] + [0.5] * 9)
        high = condensation_threshold([1.0] + [0.95] * 9)
        assert high > low

    def test_threshold_scale_invariance(self):
        a = condensation_threshold([2.0, 1.0, 1.0])
        b = condensation_threshold([4.0, 2.0, 2.0])
        assert a == pytest.approx(b)

    def test_threshold_rejects_invalid(self):
        with pytest.raises(ValueError):
            condensation_threshold([])
        with pytest.raises(ValueError):
            condensation_threshold([1.0, 0.0])


class TestThresholdFromDensity:
    def test_uniform_density_diverges(self):
        # f(w) = 1 on [0, 1] has f(1) > 0, so the Eq. (4) integral diverges.
        assert condensation_threshold_from_density(lambda w: 1.0) == math.inf

    def test_vanishing_density_converges(self):
        # f(w) = 2 (1 - w): integral of 2 w dw = 1.
        value = condensation_threshold_from_density(lambda w: 2.0 * (1.0 - w))
        assert value == pytest.approx(1.0, rel=1e-3)

    def test_steeper_vanishing_density(self):
        # f(w) = 3 (1 - w)^2: integral of 3 w (1 - w) dw = 1/2.
        value = condensation_threshold_from_density(lambda w: 3.0 * (1.0 - w) ** 2)
        assert value == pytest.approx(0.5, rel=1e-3)


class TestFugacityAndGrandCanonical:
    def test_fugacity_zero_for_empty_market(self):
        assert solve_fugacity([1.0, 0.5], 0.0) == 0.0

    def test_fugacity_increases_with_wealth(self):
        utilizations = [1.0, 0.6, 0.4]
        z_small = solve_fugacity(utilizations, 1.0)
        z_large = solve_fugacity(utilizations, 100.0)
        assert 0.0 < z_small < z_large <= 1.0

    def test_grand_canonical_wealth_sums_to_total(self):
        utilizations = [1.0, 0.8, 0.5, 0.3]
        for total in (2.0, 20.0, 200.0):
            wealth = grand_canonical_wealth(utilizations, total)
            assert wealth.sum() == pytest.approx(total, rel=1e-6)

    def test_condensate_absorbs_surplus(self):
        utilizations = [1.0] + [0.5] * 9
        wealth = grand_canonical_wealth(utilizations, 1000.0)
        # Background capacity is ~1 credit each; the max-u peer takes the rest.
        assert wealth[0] > 900.0
        assert np.all(wealth[1:] < 5.0)

    def test_grand_canonical_ordering_follows_utilization(self):
        utilizations = [1.0, 0.9, 0.5, 0.1]
        wealth = grand_canonical_wealth(utilizations, 50.0)
        assert wealth[0] > wealth[1] > wealth[2] > wealth[3]


class TestExchangeEfficiency:
    def test_eq9_formula(self):
        assert exchange_efficiency(0.0) == 0.0
        assert exchange_efficiency(1.0) == pytest.approx(1.0 - math.exp(-1.0))
        assert exchange_efficiency(10.0) > 0.9999

    def test_exact_matches_eq9_for_large_n(self):
        c = 3.0
        exact = exact_exchange_efficiency(10_000, int(c * 10_000))
        assert exact == pytest.approx(exchange_efficiency(c), abs=1e-3)

    def test_monotone_in_wealth(self):
        values = [exchange_efficiency(c) for c in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            exchange_efficiency(-1.0)
        with pytest.raises(ValueError):
            exact_exchange_efficiency(0, 10)


class TestDiagnosis:
    def test_symmetric_never_condenses(self):
        report = diagnose_condensation([1.0] * 20, average_wealth=1e6)
        assert report.symmetric
        assert not report.condenses
        assert report.threshold == math.inf

    def test_theorem3_condensation_above_threshold(self):
        utilizations = [1.0] + [0.5] * 9
        threshold = condensation_threshold(utilizations)
        report = diagnose_condensation(utilizations, average_wealth=threshold * 10)
        assert report.condenses
        assert report.condensate_peers == (0,)
        # In the condensation regime the fugacity saturates toward 1.
        assert report.fugacity > 0.95

    def test_theorem2_no_condensation_below_threshold(self):
        utilizations = [1.0] + [0.5] * 9
        threshold = condensation_threshold(utilizations)
        report = diagnose_condensation(utilizations, average_wealth=threshold * 0.5)
        assert not report.condenses
        assert report.fugacity < 1.0
        assert np.all(np.isfinite(report.expected_wealth))

    def test_expected_wealth_accounts_for_total(self):
        report = diagnose_condensation([1.0, 0.7, 0.2], average_wealth=10.0)
        assert report.expected_wealth.sum() == pytest.approx(30.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            diagnose_condensation([1.0, 0.5], average_wealth=-1.0)
