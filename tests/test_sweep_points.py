"""Tests for the sweepable point runners covering every figure.

Pins the PR's core contract: every experiment id in ``EXPERIMENTS`` has a
point runner in ``SWEEPS`` with declared axes, each point runner produces a
well-formed single-configuration result, and sweeps over the newly ported
experiments are byte-identical across execution modes (serial, parallel,
warm cache).
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    SWEEPS,
    run_sweep_point,
    sweep_params,
    validate_sweep_config,
)
from repro.experiments import fig01_spending_rates
from repro.runner import ArtifactCache, SweepSpec, aggregate_sweep, run_sweep

# Tiny per-experiment grid points: small populations and short horizons keep
# every smoke-scale shard well under a second.
POINT_CONFIGS = {
    "fig1": {"initial_credits": 6.0, "num_peers": 24, "horizon": 60.0},
    "fig2": {"total_credits": 150, "num_peers": 15},
    "fig3": {"num_peers": 30, "num_samples": 2},
    "fig4": {"average_wealth": 2.0, "num_peers": 50, "buzen_peers": 8},
    "fig5_6": {"num_peers": 24, "horizon": 120.0},
    "fig7": {"average_wealth": 8.0, "num_peers": 24, "horizon": 80.0},
    "fig8": {"average_wealth": 8.0, "num_peers": 24, "horizon": 80.0},
    "fig9": {"tax_rate": 0.2, "tax_threshold": 10.0, "num_peers": 24, "horizon": 80.0},
    "fig10": {"spending_policy": "dynamic", "num_peers": 24, "horizon": 80.0},
    "fig11": {"mean_lifespan": 100.0, "num_peers": 24, "horizon": 80.0},
}

#: The experiments this PR ported to point runners (fig3/fig9/fig11 were
#: sweepable before).
NEWLY_SWEEPABLE = ("fig1", "fig2", "fig4", "fig5_6", "fig7", "fig8", "fig10")


class TestRegistryCompleteness:
    def test_every_experiment_is_sweepable(self):
        assert set(SWEEPS) == set(EXPERIMENTS)

    def test_every_sweep_entry_declares_runner_and_params(self):
        for experiment_id, entry in SWEEPS.items():
            assert callable(entry["runner"]), experiment_id
            params = sweep_params(experiment_id)
            assert isinstance(params, tuple) and params, experiment_id
            assert all(isinstance(name, str) for name in params), experiment_id

    def test_point_configs_cover_every_experiment(self):
        assert set(POINT_CONFIGS) == set(EXPERIMENTS)

    def test_validate_sweep_config(self):
        validate_sweep_config("fig1", {"initial_credits", "pricing_model"})
        with pytest.raises(KeyError, match="unknown sweep parameter"):
            validate_sweep_config("fig1", {"bogus_axis"})
        with pytest.raises(KeyError, match="not sweepable"):
            validate_sweep_config("fig99", {"anything"})


class TestPointRunners:
    @pytest.mark.parametrize("experiment_id", sorted(POINT_CONFIGS))
    def test_point_runner_produces_result(self, experiment_id):
        result = run_sweep_point(
            experiment_id, POINT_CONFIGS[experiment_id], scale="smoke", seed=3
        )
        assert result.tables, experiment_id
        assert len(result.tables[0]) >= 1
        assert result.metadata["seed"] == 3

    @pytest.mark.parametrize("experiment_id", sorted(POINT_CONFIGS))
    def test_unknown_axis_rejected(self, experiment_id):
        config = dict(POINT_CONFIGS[experiment_id], bogus_axis=1)
        with pytest.raises(KeyError, match="unknown sweep parameter"):
            run_sweep_point(experiment_id, config, scale="smoke", seed=0)

    def test_fig1_pricing_model_axis(self):
        uniform = run_sweep_point(
            "fig1",
            dict(POINT_CONFIGS["fig1"], pricing_model="uniform"),
            scale="smoke",
            seed=3,
        )
        poisson = run_sweep_point(
            "fig1",
            dict(POINT_CONFIGS["fig1"], pricing_model="poisson-seller"),
            scale="smoke",
            seed=3,
        )
        assert uniform.tables[0].rows[0]["realized_mean_price"] == 1.0
        assert poisson.tables[0].rows[0]["realized_mean_price"] != 1.0

    def test_fig1_unknown_pricing_model_rejected(self):
        with pytest.raises(ValueError, match="pricing_model"):
            run_sweep_point(
                "fig1",
                dict(POINT_CONFIGS["fig1"], pricing_model="bogus"),
                scale="smoke",
                seed=0,
            )

    def test_fig10_unknown_spending_policy_rejected(self):
        with pytest.raises(ValueError, match="spending_policy"):
            run_sweep_point(
                "fig10",
                dict(POINT_CONFIGS["fig10"], spending_policy="bogus"),
                scale="smoke",
                seed=0,
            )

    def test_fig10_fixed_policy_ignores_threshold_in_identity(self):
        # The threshold knob only exists for the dynamic policy; a fixed-policy
        # row must not be labelled with (or keyed on) an ignored m.
        fixed = run_sweep_point(
            "fig10",
            dict(POINT_CONFIGS["fig10"], spending_policy="fixed", wealth_threshold=50.0),
            scale="smoke",
            seed=3,
        )
        assert fixed.tables[0].rows[0]["spending_policy"] == "fixed"
        assert fixed.metadata["spending_threshold_m"] is None
        dynamic = run_sweep_point(
            "fig10",
            dict(POINT_CONFIGS["fig10"], spending_policy="dynamic", wealth_threshold=50.0),
            scale="smoke",
            seed=3,
        )
        assert dynamic.tables[0].rows[0]["spending_policy"] == "dynamic (m=50)"
        assert dynamic.metadata["spending_threshold_m"] == 50.0

    def test_fig7_fig8_differ_only_by_utilization(self):
        config = POINT_CONFIGS["fig7"]
        fig7 = run_sweep_point("fig7", config, scale="smoke", seed=3)
        fig8 = run_sweep_point("fig8", config, scale="smoke", seed=3)
        assert fig7.metadata["utilization"] == "symmetric"
        assert fig8.metadata["utilization"] == "asymmetric"

    def test_fig5_6_reports_early_and_late_stage(self):
        result = run_sweep_point("fig5_6", POINT_CONFIGS["fig5_6"], scale="smoke", seed=3)
        stages = [row["stage"] for row in result.tables[0]]
        assert len(stages) == 2
        assert any("early" in stage for stage in stages)
        assert any("late" in stage for stage in stages)


class TestFig1PricingFidelity:
    """Regression tests for the paper's documented mean chunk price."""

    def test_documented_mean_is_one_credit(self):
        assert fig01_spending_rates.MEAN_CHUNK_PRICE == 1.0

    def test_poisson_seller_prices_realize_documented_mean(self):
        pricing = fig01_spending_rates._poisson_seller_prices(4000, 1.0, seed=5)
        prices = np.array([pricing.price(peer, 0) for peer in range(4000)])
        # Poisson(1) over 4000 sellers: the sample mean is within a few
        # standard errors (sigma/sqrt(n) ~ 0.016) of the documented mean.
        assert abs(float(prices.mean()) - 1.0) < 0.08
        # The draw is the *plain* Poisson of the paper: zero-price sellers
        # exist (~e^{-1} of them) and prices are heterogeneous.
        assert float((prices == 0.0).mean()) > 0.2
        assert len(np.unique(prices)) >= 3

    def test_full_figure_uses_documented_mean(self):
        result = fig01_spending_rates.run(scale="smoke", seed=2)
        rows = {row["case"]: row for row in result.table()}
        condensed = rows["condensed (non-uniform prices)"]
        healthy = rows["healthy (uniform prices)"]
        # The qualitative Fig. 1 contrast survives the mean-1 prices — the
        # condensed case is strictly more skewed (measured margin ~0.2 at
        # smoke scale; no slack so a vanishing contrast fails loudly).
        assert condensed["wealth_gini"] > healthy["wealth_gini"]
        assert condensed["spending_rate_gini"] > healthy["spending_rate_gini"]

    def test_run_point_reports_realized_mean_price(self):
        result = run_sweep_point(
            "fig1",
            dict(POINT_CONFIGS["fig1"], num_peers=400, pricing_model="poisson-seller"),
            scale="smoke",
            seed=5,
        )
        realized = result.tables[0].rows[0]["realized_mean_price"]
        assert abs(realized - 1.0) < 0.2


class TestCrossModeDeterminism:
    @pytest.mark.parametrize("experiment_id", NEWLY_SWEEPABLE)
    def test_serial_parallel_and_cached_aggregates_identical(self, experiment_id, tmp_path):
        spec = SweepSpec(
            experiment_id,
            grid=[POINT_CONFIGS[experiment_id]],
            replications=2,
            base_seed=13,
            scale="smoke",
        )
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        assert [s.payload for s in serial.shards] == [s.payload for s in parallel.shards]

        cache = ArtifactCache(tmp_path / experiment_id)
        cold = run_sweep(spec, jobs=1, cache=cache)
        warm = run_sweep(spec, jobs=4, cache=cache)
        assert (cold.executed, cold.cached) == (2, 0)
        assert (warm.executed, warm.cached) == (0, 2)

        reference = aggregate_sweep(serial).to_csv()
        assert aggregate_sweep(parallel).to_csv() == reference
        assert aggregate_sweep(cold).to_csv() == reference
        assert aggregate_sweep(warm).to_csv() == reference
